//! The EndBox server: the sole entry point into the managed network.
//!
//! Only traffic sealed by a correctly attested client decrypts here, so
//! bypassing the client-side middlebox yields traffic the firewall drops
//! (§III-A, R2). The server also sanitises the client-to-client QoS flag
//! on packets entering from outside ("the ENDBOX server removes the QoS
//! byte if it is set to 0xeb", §IV-A) and optionally runs a *server-side*
//! Click instance (the OpenVPN+Click baseline of §V).
//!
//! # Two flavours, one behaviour
//!
//! * [`EndBoxServer`] — the single-threaded reference: one reassembler
//!   map, one inline VPN shard, strict input-order processing. It is the
//!   *oracle* every concurrent deployment is compared against.
//! * [`ShardedEndBoxServer`] — the scaled deployment: a staged pipeline
//!   of `K` RX framing threads ([`RxShardPool`], `peer_id mod K`), a
//!   re-merging dispatch stage, and `N` session-crypto worker shards
//!   (`endbox_vpn::shard`), optionally fed by an event-driven socket
//!   front-end ([`AsyncFrontEnd`], one poll group per RX shard).
//!
//! # Ordering / parity invariants
//!
//! The sharded server is **byte-identical** to [`EndBoxServer`] for any
//! `(rx_shards, workers, dispatch policy)` and any thread schedule.
//! The invariants that carry the proof, each pinned by tests:
//!
//! 1. *Input-order re-merge* — `receive_datagrams` returns exactly one
//!    result per datagram in input order; RX shard events are re-merged
//!    by input index before dispatch (`tests/shard_parity.rs`,
//!    `tests/rx_interleaving.rs`).
//! 2. *Per-peer pinning* — a peer's reassembly state lives on exactly
//!    one RX shard and never migrates; per-peer framing order equals the
//!    single-thread order.
//! 3. *Disconnect sequencing* — a Disconnect pauses only the owning RX
//!    shard until its session-layer verdict, so reassembler teardown
//!    sequences exactly like the single server.
//! 4. *Single-owner sessions* — each session is owned by one worker
//!    shard at every instant; migration drains earlier records first
//!    (`endbox_vpn::shard`).
//! 5. *Wire-order drain* — the event-driven front-end re-merges drained
//!    datagrams by wire arrival stamp; per-peer order is exact under any
//!    backpressure setting (`tests/async_ingress.rs`).
//!
//! The full walk-through lives in `docs/architecture.md` at the
//! repository root.

use crate::error::EndBoxError;
use endbox_click::element::ElementEnv;
use endbox_click::Router;
use endbox_netsim::cost::{CostModel, CycleMeter};
use endbox_netsim::packet::QOS_ENDBOX_PROCESSED;
use endbox_netsim::time::SharedClock;
use endbox_netsim::{Packet, PacketBatch};
use endbox_vpn::channel::CipherSuite;
use endbox_vpn::frag::{Fragmenter, Reassembler};
use endbox_vpn::handshake::HandshakeConfig;
use endbox_vpn::ping::PingMessage;
use endbox_vpn::proto::{Opcode, Record};
use endbox_vpn::server::{ServerEvent, VpnServer};
use endbox_vpn::shard::{materialize_frames, DispatchPolicy, ShardEvent, ShardedVpnServer};
use endbox_vpn::VpnError;
use std::collections::HashMap;
use std::thread::JoinHandle;

/// Server configuration.
#[derive(Debug)]
pub struct EndBoxServerConfig {
    /// Handshake identity/policy (certificate issued by the CA).
    pub handshake: HandshakeConfig,
    /// Data-channel suite.
    pub suite: CipherSuite,
    /// Optional server-side Click configuration (OpenVPN+Click baseline).
    pub server_click: Option<String>,
    /// Cost model.
    pub cost: CostModel,
    /// Server machine cycle meter.
    pub meter: CycleMeter,
    /// Simulation clock.
    pub clock: SharedClock,
    /// Deterministic seed.
    pub rng_seed: u64,
}

/// What the server did with a received datagram.
#[derive(Debug)]
pub enum Delivery {
    /// Incomplete record (more fragments pending).
    Pending,
    /// Handshake finished; send these datagrams back to the client.
    Established {
        /// New session id.
        session_id: u64,
        /// Response datagrams for the client.
        response: Vec<Vec<u8>>,
    },
    /// A tunnel packet was delivered into the managed network.
    Packet {
        /// Originating session.
        session_id: u64,
        /// The decapsulated IP packet.
        packet: Packet,
    },
    /// A batched record delivered several tunnel packets at once (§IV
    /// batching). Packets the server-side Click dropped are already
    /// filtered out (see `counters`).
    PacketBatch {
        /// Originating session.
        session_id: u64,
        /// The decapsulated IP packets, in batch order.
        packets: Vec<Packet>,
    },
    /// A client ping arrived (config-version proof).
    Ping {
        /// Originating session.
        session_id: u64,
        /// Contents.
        message: PingMessage,
    },
    /// The session disconnected.
    Disconnected {
        /// Session that ended.
        session_id: u64,
    },
}

/// Front-end plumbing shared by both server flavours: record
/// fragmentation and the metered cycle-cost formulas for receiving,
/// delivering and sealing traffic. Keeping the formulas in one place
/// guarantees the single-threaded and sharded deployments charge
/// identically — the Fig. 10 single-vs-sharded comparison relies on it.
struct ServerIo {
    fragmenter: Fragmenter,
    cost: CostModel,
    meter: CycleMeter,
    clock: SharedClock,
}

impl ServerIo {
    fn new(cost: CostModel, meter: CycleMeter, clock: SharedClock) -> Self {
        ServerIo {
            fragmenter: Fragmenter::new(),
            cost,
            meter,
            clock,
        }
    }

    fn now_secs(&self) -> u64 {
        self.clock.now().as_secs_f64() as u64
    }

    /// Charges the receipt of one wire datagram.
    fn charge_rx_fragment(&self) {
        self.meter.add(self.cost.vpn_server_per_fragment);
    }

    /// Charges delivery into the managed network: one tun write per
    /// packet.
    fn charge_delivery(&self, n_packets: usize) {
        self.meter.add(self.cost.vpn_per_write * n_packets as u64);
    }

    /// Charges sealing `n_packets` totalling `total_bytes` towards a
    /// client (write + copy into the record).
    fn charge_egress(&self, n_packets: usize, total_bytes: usize) {
        self.meter.add(
            self.cost.vpn_per_write * n_packets as u64
                + (self.cost.memcpy_per_byte * total_bytes as f64) as u64,
        );
    }

    fn fragment(&mut self, record: &Record) -> Vec<Vec<u8>> {
        let bytes = record.to_bytes();
        let frags = self.fragmenter.fragment(&bytes, self.cost.mtu_payload);
        self.meter
            .add(self.cost.vpn_server_per_fragment * frags.len() as u64);
        frags
    }
}

/// Clears a spoofed `0xeb` QoS flag on a packet arriving from outside
/// the managed network, so external traffic cannot skip client-side
/// Click processing (§IV-A). Shared by both server flavours.
fn sanitize_external_packet(packet: &mut Packet) {
    if packet.tos() == QOS_ENDBOX_PROCESSED {
        packet.set_tos(0);
    }
}

/// The EndBox VPN server.
pub struct EndBoxServer {
    vpn: VpnServer,
    reassemblers: HashMap<u64, Reassembler>,
    server_click: Option<Router>,
    io: ServerIo,
    delivered: u64,
    click_dropped: u64,
    rejected: u64,
}

impl std::fmt::Debug for EndBoxServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EndBoxServer")
            .field("sessions", &self.vpn.session_count())
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl EndBoxServer {
    /// Builds the server.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Click`] if the server-side Click config is invalid.
    pub fn new(cfg: EndBoxServerConfig) -> Result<EndBoxServer, EndBoxError> {
        let server_click = match &cfg.server_click {
            None => None,
            Some(text) => {
                let env = ElementEnv {
                    cost: cfg.cost.clone(),
                    meter: cfg.meter.clone(),
                    clock: cfg.clock.clone(),
                    in_enclave: false,
                    hardware_mode: false,
                    // The attached Click receives packets over a socket
                    // from OpenVPN; it does not own devices (fetch/IPC
                    // costs are charged on delivery instead).
                    device_io: false,
                    tls_keys: Default::default(),
                };
                Some(Router::from_config(text, env)?)
            }
        };
        let vpn = VpnServer::new(
            cfg.handshake,
            cfg.suite,
            cfg.meter.clone(),
            cfg.cost.clone(),
            cfg.rng_seed,
        );
        Ok(EndBoxServer {
            vpn,
            reassemblers: HashMap::new(),
            server_click,
            io: ServerIo::new(cfg.cost, cfg.meter, cfg.clock),
            delivered: 0,
            click_dropped: 0,
            rejected: 0,
        })
    }

    /// Receives one wire datagram from peer `peer_id` (a socket-address
    /// analogue used to separate fragment streams).
    ///
    /// # Errors
    ///
    /// Every authentication/policy failure; callers drop the traffic.
    pub fn receive_datagram(
        &mut self,
        peer_id: u64,
        datagram: &[u8],
    ) -> Result<Delivery, EndBoxError> {
        self.io.charge_rx_fragment();
        let reasm = self.reassemblers.entry(peer_id).or_default();
        let Some(bytes) = reasm.push(datagram).map_err(|e| {
            self.rejected += 1;
            EndBoxError::Vpn(e)
        })?
        else {
            return Ok(Delivery::Pending);
        };
        let record = Record::from_bytes(&bytes)?;
        let now_secs = self.io.now_secs();
        let event = self.vpn.handle_record(&record, now_secs).map_err(|e| {
            self.rejected += 1;
            EndBoxError::Vpn(e)
        })?;
        match event {
            ServerEvent::Established {
                session_id,
                response,
                ..
            } => {
                let datagrams = self.io.fragment(&response);
                Ok(Delivery::Established {
                    session_id,
                    response: datagrams,
                })
            }
            ServerEvent::Data {
                session_id,
                payload,
            } => {
                // Zero-copy adoption: the decrypt allocation becomes the
                // pool-managed backing store of the delivered packet.
                let pool = self.vpn.shard().pool().clone();
                let mut packet = Packet::from_vec_in(&pool, payload).map_err(|_| {
                    EndBoxError::Vpn(endbox_vpn::VpnError::Malformed("bad tunnelled packet"))
                })?;
                // Server-side Click (OpenVPN+Click baseline): fetch cost +
                // element processing.
                if let Some(click) = self.server_click.as_mut() {
                    // Handing the packet to the Click process and back:
                    // fetch copies plus inter-process crossings.
                    self.io.meter.add(
                        self.io.cost.click_fetch_per_packet
                            + self.io.cost.click_ipc_per_packet
                            + (self.io.cost.click_fetch_per_byte * packet.len() as f64) as u64,
                    );
                    let out = click.process(packet);
                    if !out.accepted {
                        self.click_dropped += 1;
                        return Err(EndBoxError::PacketDropped);
                    }
                    packet = out.emitted.into_iter().next().expect("accepted");
                }
                // Deliver into the managed network.
                self.io.charge_delivery(1);
                self.delivered += 1;
                Ok(Delivery::Packet { session_id, packet })
            }
            ServerEvent::DataBatch { session_id, frames } => {
                // One pass, one copy: frames go straight from the
                // decrypted blob into pool-recycled packet buffers.
                let pool = self.vpn.shard().pool().clone();
                let mut packets = materialize_frames(&pool, frames)
                    .map_err(EndBoxError::Vpn)?
                    .into_vec();
                if let Some(click) = self.server_click.as_mut() {
                    // Handing the whole batch to the Click process at
                    // once: the IPC crossing is paid once per batch, the
                    // fetch copies per packet/byte as before.
                    let total: usize = packets.iter().map(Packet::len).sum();
                    self.io.meter.add(
                        self.io.cost.click_fetch_per_packet * packets.len() as u64
                            + self.io.cost.click_ipc_per_packet
                            + (self.io.cost.click_fetch_per_byte * total as f64) as u64,
                    );
                    let n = packets.len();
                    let out = click.process_batch(PacketBatch::from(packets));
                    self.click_dropped += (n - out.accepted) as u64;
                    packets = out.into_first_emissions();
                }
                // Deliver into the managed network: one write per packet.
                self.io.charge_delivery(packets.len());
                self.delivered += packets.len() as u64;
                Ok(Delivery::PacketBatch {
                    session_id,
                    packets,
                })
            }
            ServerEvent::Ping {
                session_id,
                message,
            } => Ok(Delivery::Ping {
                session_id,
                message,
            }),
            ServerEvent::Disconnected { session_id } => {
                self.reassemblers.remove(&peer_id);
                Ok(Delivery::Disconnected { session_id })
            }
        }
    }

    /// Seals and fragments a packet towards a client (ingress direction).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Vpn`] for unknown sessions.
    pub fn send_to_client(
        &mut self,
        session_id: u64,
        packet: &Packet,
    ) -> Result<Vec<Vec<u8>>, EndBoxError> {
        self.io.charge_egress(1, packet.len());
        let record = self
            .vpn
            .seal_to_client(session_id, Opcode::Data, packet.bytes())?;
        Ok(self.io.fragment(&record))
    }

    /// Seals several packets towards a client as **one** `DataBatch`
    /// record (ingress direction, §IV batching), then fragments it.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Vpn`] for unknown sessions.
    pub fn send_batch_to_client(
        &mut self,
        session_id: u64,
        packets: &[Packet],
    ) -> Result<Vec<Vec<u8>>, EndBoxError> {
        let total: usize = packets.iter().map(Packet::len).sum();
        self.io.charge_egress(packets.len(), total);
        let payloads: Vec<&[u8]> = packets.iter().map(Packet::bytes).collect();
        let record = self.vpn.seal_batch_to_client(session_id, &payloads)?;
        Ok(self.io.fragment(&record))
    }

    /// Sanitises a packet arriving from *outside* the managed network:
    /// clears a spoofed `0xeb` QoS flag so external traffic cannot skip
    /// client-side Click processing (§IV-A).
    pub fn sanitize_external(&self, packet: &mut Packet) {
        sanitize_external_packet(packet);
    }

    /// Announces a configuration update (Fig. 5 steps 2–3).
    pub fn announce_config(&mut self, version: u64, grace_period_secs: u32) {
        let now_secs = self.io.now_secs();
        self.vpn
            .announce_config(version, grace_period_secs, now_secs);
    }

    /// Builds the periodic server ping for a session (Fig. 5 step 4).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Vpn`] for unknown sessions.
    pub fn make_ping(&mut self, session_id: u64) -> Result<Vec<Vec<u8>>, EndBoxError> {
        let record = self
            .vpn
            .make_ping(session_id, self.io.clock.now().as_nanos())?;
        Ok(self.io.fragment(&record))
    }

    /// Connected session ids.
    pub fn session_ids(&self) -> Vec<u64> {
        self.vpn.session_ids()
    }

    /// Connected client count.
    pub fn session_count(&self) -> usize {
        self.vpn.session_count()
    }

    /// The config version a session has proved via ping.
    pub fn client_config_version(&self, session_id: u64) -> Option<u64> {
        self.vpn
            .session(session_id)
            .map(|s| s.reported_config_version)
    }

    /// (delivered, click-dropped, rejected) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.delivered, self.click_dropped, self.rejected)
    }

    /// Reads a handler on the server-side Click instance, if any.
    pub fn server_click_handler(&self, element: &str, handler: &str) -> Option<String> {
        self.server_click.as_ref()?.read_handler(element, handler)
    }

    /// Hot-swaps the server-side Click configuration (used by the vanilla
    /// Click reconfiguration baseline of Table II).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Click`] on invalid configs or if no server-side
    /// Click exists.
    pub fn hot_swap_server_click(&mut self, config: &str) -> Result<(), EndBoxError> {
        match self.server_click.as_mut() {
            Some(router) => {
                router.hot_swap(config)?;
                Ok(())
            }
            None => Err(EndBoxError::NotReady("no server-side Click instance")),
        }
    }
}

/// What the RX stage concluded about one wire datagram.
enum RxOutcome {
    /// More fragments pending.
    Pending,
    /// Reassembly failed (counted against `rejected`, like the
    /// single-threaded server).
    Reassembly(VpnError),
    /// The reassembled bytes are not a valid record.
    Malformed(VpnError),
    /// A complete parsed record, ready for the sharded dispatch.
    Record(Record),
}

struct RxEvent {
    idx: u32,
    peer: u64,
    outcome: RxOutcome,
}

enum RxRequest {
    /// Reassemble and parse these `(input index, peer, datagram)`
    /// entries, in order. Indices are global over the receive batch; the
    /// sub-batch a shard sees contains only its own peers' entries.
    Batch(Vec<(u32, u64, Vec<u8>)>),
    /// Verdict for the Disconnect record the RX shard paused on:
    /// `confirmed` tears the peer's reassembler down before any later
    /// datagram of that peer is pushed into it.
    Teardown { peer: u64, confirmed: bool },
    /// Detach `peer`'s reassembler (with any in-flight partial records)
    /// so the peer can be re-homed to another RX shard. Only sent
    /// between receive batches — the extract round-trip is the remap's
    /// quiesce point: when the reply arrives, this shard has processed
    /// every datagram of the peer it was ever given.
    ExtractPeer { peer: u64 },
    /// Adopt a re-homed peer's reassembly state.
    InstallPeer {
        peer: u64,
        reassembler: Box<Reassembler>,
    },
    /// Surrender **every** peer's reassembly state (with any in-flight
    /// partial records) for a structural resize. Like
    /// [`RxRequest::ExtractPeer`] this is only sent between receive
    /// batches; the round-trip is the resize's quiesce point — when the
    /// reply arrives this shard has framed every datagram it was ever
    /// given and holds no peer state at all.
    ExtractAllPeers,
    /// Report this shard's [`RxShardStats`].
    Stats,
    /// Exit the RX loop.
    Shutdown,
}

enum RxReply {
    Event(RxEvent),
    /// A peer's detached reassembly state (`None` if the peer never sent
    /// this shard a datagram); `pending` counts the partial records that
    /// were drained along (in flight at the quiesce point).
    PeerState {
        pending: usize,
        reassembler: Option<Box<Reassembler>>,
    },
    /// Every peer this shard owned, in ascending peer order:
    /// `(peer, in-flight partial records, reassembler)`. The shard that
    /// sent this holds no peer state afterwards.
    AllPeers {
        shard: usize,
        peers: Vec<(u64, usize, Box<Reassembler>)>,
    },
    Stats {
        shard: usize,
        stats: RxShardStats,
    },
    /// The shard's thread panicked. Sibling shards keep the shared reply
    /// channel open, so without this marker a dead shard would make the
    /// front-end block forever instead of failing loudly.
    ShardDead {
        shard: usize,
    },
}

/// Observability counters for one RX shard (the RX-side analogue of the
/// buffer pools' `PoolStats` and the dispatcher's `migrations`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RxShardStats {
    /// Wire datagrams this shard pushed into its reassemblers.
    pub datagrams: u64,
    /// Complete records this shard framed (including records the session
    /// layer later rejected — framing happened either way).
    pub records_framed: u64,
    /// Bytes currently buffered in this shard's incomplete reassemblies.
    pub reassembly_bytes_held: usize,
    /// Records currently awaiting more fragments on this shard.
    pub pending_records: usize,
    /// Live per-peer reassemblers pinned to this shard.
    pub peers: usize,
    /// Times this shard paused on a Disconnect awaiting its verdict.
    pub disconnect_pauses: u64,
}

/// One RX shard: per-peer datagram reassembly and record framing on a
/// dedicated thread, streaming parsed records to the front-end so framing
/// overlaps with shard crypto. Reassembly state is **pinned** here — it
/// is per-peer, not per-session, and never migrates with a session.
fn rx_shard_loop(
    shard: usize,
    rx: crossbeam::channel::Receiver<RxRequest>,
    tx: &crossbeam::channel::UnboundedSender<RxReply>,
    meter: CycleMeter,
    cost: CostModel,
    stall_micros: std::sync::Arc<std::sync::atomic::AtomicU64>,
) {
    let mut reassemblers: HashMap<u64, Reassembler> = HashMap::new();
    let mut datagrams = 0u64;
    let mut framed = 0u64;
    let mut pauses = 0u64;
    while let Ok(request) = rx.recv() {
        match request {
            RxRequest::Batch(entries) => {
                for (idx, peer, datagram) in entries {
                    // Deterministic-schedule hook: a stalled shard frames
                    // slowly, forcing adversarial cross-shard arrival
                    // orders at the front-end re-merge (tests/support).
                    let stall = stall_micros.load(std::sync::atomic::Ordering::Relaxed);
                    if stall > 0 {
                        std::thread::sleep(std::time::Duration::from_micros(stall));
                    }
                    meter.add(cost.vpn_server_per_fragment);
                    datagrams += 1;
                    let reasm = reassemblers.entry(peer).or_default();
                    let outcome = match reasm.push(&datagram) {
                        Err(e) => RxOutcome::Reassembly(e),
                        Ok(None) => RxOutcome::Pending,
                        Ok(Some(bytes)) => match Record::from_bytes(&bytes) {
                            Err(e) => RxOutcome::Malformed(e),
                            Ok(record) => RxOutcome::Record(record),
                        },
                    };
                    if matches!(&outcome, RxOutcome::Record(_)) {
                        framed += 1;
                    }
                    let disconnect = matches!(&outcome, RxOutcome::Record(r)
                        if r.opcode == Opcode::Disconnect);
                    if tx
                        .send(RxReply::Event(RxEvent { idx, peer, outcome }))
                        .is_err()
                    {
                        return;
                    }
                    if disconnect {
                        // A *successful* disconnect tears down the peer's
                        // reassembler, and that must happen before any
                        // later datagram of the same peer is pushed into
                        // it — exactly the single-threaded sequencing.
                        // Pause **this shard only** until the front-end
                        // reports the verdict; sibling shards keep
                        // framing their own peers.
                        pauses += 1;
                        match rx.recv() {
                            Ok(RxRequest::Teardown { peer, confirmed }) => {
                                if confirmed {
                                    reassemblers.remove(&peer);
                                }
                            }
                            _ => return,
                        }
                    }
                }
            }
            // A stray teardown outside a pause cannot occur in the
            // request protocol; ignore it defensively.
            RxRequest::Teardown { .. } => {}
            RxRequest::ExtractPeer { peer } => {
                let reassembler = reassemblers.remove(&peer);
                let pending = reassembler.as_ref().map_or(0, Reassembler::pending);
                if tx
                    .send(RxReply::PeerState {
                        pending,
                        reassembler: reassembler.map(Box::new),
                    })
                    .is_err()
                {
                    return;
                }
            }
            RxRequest::InstallPeer { peer, reassembler } => {
                let prior = reassemblers.insert(peer, *reassembler);
                debug_assert!(
                    prior.is_none(),
                    "remap must extract before it installs; peer {peer} already lives here"
                );
            }
            RxRequest::ExtractAllPeers => {
                let mut peers: Vec<(u64, usize, Box<Reassembler>)> = reassemblers
                    .drain()
                    .map(|(peer, reasm)| {
                        let pending = reasm.pending();
                        (peer, pending, Box::new(reasm))
                    })
                    .collect();
                peers.sort_unstable_by_key(|&(peer, _, _)| peer);
                if tx.send(RxReply::AllPeers { shard, peers }).is_err() {
                    return;
                }
            }
            RxRequest::Stats => {
                let stats = RxShardStats {
                    datagrams,
                    records_framed: framed,
                    reassembly_bytes_held: reassemblers
                        .values()
                        .map(Reassembler::pending_bytes)
                        .sum(),
                    pending_records: reassemblers.values().map(Reassembler::pending).sum(),
                    peers: reassemblers.len(),
                    disconnect_pauses: pauses,
                };
                if tx.send(RxReply::Stats { shard, stats }).is_err() {
                    return;
                }
            }
            RxRequest::Shutdown => return,
        }
    }
}

/// The sharded RX front-end: `K` RX threads, each owning the per-peer
/// reassembly state of the peers with `peer_id mod K == shard`.
///
/// # Per-peer order contract
///
/// * A peer's datagrams are framed **in input order**: the front-end
///   appends each datagram to its owning shard's sub-batch in input
///   order, and the shard processes its sub-batch sequentially. Records
///   of one peer therefore frame exactly as on the single RX thread.
/// * **Cross-peer** interleaving is unconstrained: shards run
///   concurrently and their events reach the front-end in any order. The
///   front-end re-merges events by input index before dispatching, so the
///   observable results are byte-identical to the single-threaded server
///   for every thread schedule (pinned by `tests/rx_interleaving.rs` and
///   `tests/shard_parity.rs`).
/// * Reassembly state is pinned to its RX shard and never migrates; a
///   Disconnect pauses **only the owning shard** until the front-end
///   reports the session-layer verdict, so reassembler teardown sequences
///   exactly like the single-threaded server while sibling shards keep
///   framing.
pub struct RxShardPool {
    requests: Vec<crossbeam::channel::UnboundedSender<RxRequest>>,
    replies: crossbeam::channel::Receiver<RxReply>,
    /// Sending half of the shared reply channel plus the meter/cost
    /// handles, kept so [`RxShardPool::resize`] can spawn fresh shard
    /// threads at runtime (each thread holds its own clones).
    replies_tx: crossbeam::channel::UnboundedSender<RxReply>,
    meter: CycleMeter,
    cost: CostModel,
    joins: Vec<JoinHandle<()>>,
    stalls: Vec<std::sync::Arc<std::sync::atomic::AtomicU64>>,
    /// Live remap overrides: peers whose reassembly state has been
    /// re-homed away from their static `peer_id mod K` shard.
    overrides: HashMap<u64, usize>,
}

impl std::fmt::Debug for RxShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RxShardPool")
            .field("shards", &self.requests.len())
            .finish()
    }
}

impl RxShardPool {
    fn new(shards: usize, meter: &CycleMeter, cost: &CostModel) -> RxShardPool {
        let shards = shards.max(1);
        let (replies_tx, replies) = crossbeam::channel::unbounded();
        let mut pool = RxShardPool {
            requests: Vec::with_capacity(shards),
            replies,
            replies_tx,
            meter: meter.clone(),
            cost: cost.clone(),
            joins: Vec::with_capacity(shards),
            stalls: Vec::with_capacity(shards),
            overrides: HashMap::new(),
        };
        for shard in 0..shards {
            pool.spawn_shard(shard);
        }
        pool
    }

    /// Spawns one RX shard thread feeding the shared reply channel.
    fn spawn_shard(&mut self, shard: usize) {
        let (tx, rx) = crossbeam::channel::unbounded();
        let stall = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let (reply_tx, m, c, s) = (
            self.replies_tx.clone(),
            self.meter.clone(),
            self.cost.clone(),
            stall.clone(),
        );
        let join = std::thread::Builder::new()
            .name(format!("endbox-rx-{shard}"))
            .spawn(move || {
                // A panicking shard must announce its death: its
                // sibling shards keep the shared reply channel open,
                // so the front-end would otherwise wait forever for
                // the dead shard's remaining events.
                let loop_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    rx_shard_loop(shard, rx, &reply_tx, m, c, s)
                }));
                if loop_result.is_err() {
                    let _ = reply_tx.send(RxReply::ShardDead { shard });
                }
            })
            .expect("spawn RX shard");
        self.requests.push(tx);
        self.joins.push(join);
        self.stalls.push(stall);
    }

    /// Number of RX shards.
    pub fn shard_count(&self) -> usize {
        self.requests.len()
    }

    /// The shard owning `peer`'s reassembly state: a live remap override
    /// if one exists, else the static `peer_id mod K` home.
    pub fn shard_of(&self, peer: u64) -> usize {
        let home = (peer % self.requests.len() as u64) as usize;
        self.overrides.get(&peer).copied().unwrap_or(home)
    }

    /// Re-homes `peer`'s reassembly state to RX shard `to`, returning the
    /// number of in-flight partial records drained along with it.
    ///
    /// Must only be called between receive batches (the same quiescence
    /// discipline as a stats query). The extract round-trip is the
    /// remap's drain point: when the old shard replies it has framed
    /// every datagram the peer was ever routed to it, so moving the
    /// owned [`Reassembler`] wholesale is invisible in the record stream
    /// — byte-identical to the peer having been homed on `to` all along.
    pub fn remap_peer(&mut self, peer: u64, to: usize) -> usize {
        let to = to % self.requests.len();
        let from = self.shard_of(peer);
        if from == to {
            return 0;
        }
        self.requests[from]
            .send(RxRequest::ExtractPeer { peer })
            .expect("RX shard alive");
        let (pending, reassembler) = match self.replies.recv().expect("RX shard alive") {
            RxReply::PeerState {
                pending,
                reassembler,
            } => (pending, reassembler),
            RxReply::ShardDead { shard } => panic!("RX shard {shard} died"),
            _ => unreachable!("no receive batch is in flight during a remap"),
        };
        if let Some(reassembler) = reassembler {
            self.requests[to]
                .send(RxRequest::InstallPeer { peer, reassembler })
                .expect("RX shard alive");
        }
        if to == (peer % self.requests.len() as u64) as usize {
            self.overrides.remove(&peer);
        } else {
            self.overrides.insert(peer, to);
        }
        pending
    }

    /// Grows or shrinks the pool to `shards` RX threads online, returning
    /// `(peers rehashed, in-flight partial records drained along)`.
    ///
    /// The rehash uses the same quiesce/drain/install discipline as
    /// [`RxShardPool::remap_peer`], generalised to every peer at once:
    ///
    /// 1. **Quiesce + drain**: every existing shard surrenders its whole
    ///    peer map via a blocking `RxRequest::ExtractAllPeers`
    ///    round-trip — when the replies are in, each shard has framed
    ///    every datagram it was ever given and owns no peer state.
    /// 2. **Retire/spawn**: shrinking shuts down and joins the doomed
    ///    tail threads (they are already empty — retiring shards drain to
    ///    their successors before their thread exits); growing spawns the
    ///    new ones.
    /// 3. **Install**: each peer's reassembler (with any in-flight
    ///    partial records and replay-relevant framing state) is installed
    ///    at its static home under the **new** modulus, in ascending peer
    ///    order. Remap overrides do not survive a resize — the demand
    ///    pattern that motivated them predates the capacity change.
    ///
    /// Must only be called between receive batches. A resize is invisible
    /// in the record stream: byte-identical to the new geometry having
    /// been configured from the start (pinned by `tests/elastic_resize.rs`).
    pub fn resize(&mut self, shards: usize) -> (usize, usize) {
        let new = shards.max(1);
        let old = self.requests.len();
        if new == old {
            return (0, 0);
        }
        let mut extracted: Vec<(usize, u64, usize, Box<Reassembler>)> = Vec::new();
        for tx in &self.requests {
            tx.send(RxRequest::ExtractAllPeers).expect("RX shard alive");
        }
        for _ in 0..old {
            match self.replies.recv().expect("RX shard alive") {
                RxReply::AllPeers { shard, peers } => extracted.extend(
                    peers
                        .into_iter()
                        .map(|(peer, pending, reasm)| (shard, peer, pending, reasm)),
                ),
                RxReply::ShardDead { shard } => panic!("RX shard {shard} died"),
                _ => unreachable!("no receive batch is in flight during a resize"),
            }
        }
        if new > old {
            for shard in old..new {
                self.spawn_shard(shard);
            }
        } else {
            for tx in self.requests.drain(new..) {
                let _ = tx.send(RxRequest::Shutdown);
            }
            for join in self.joins.drain(new..) {
                let _ = join.join();
            }
            self.stalls.truncate(new);
        }
        self.overrides.clear();
        extracted.sort_unstable_by_key(|&(_, peer, _, _)| peer);
        let (mut moved, mut drained) = (0, 0);
        for (from, peer, pending, reassembler) in extracted {
            let to = (peer % new as u64) as usize;
            self.requests[to]
                .send(RxRequest::InstallPeer { peer, reassembler })
                .expect("RX shard alive");
            if to != from {
                moved += 1;
                drained += pending;
            }
        }
        (moved, drained)
    }

    /// Test hook: make RX shard `shard` sleep `micros` before each
    /// datagram it frames. The deterministic-schedule harness uses this to
    /// force specific cross-shard arrival orders at the re-merge; the
    /// datapath itself never sets it.
    pub fn set_stall_micros(&self, shard: usize, micros: u64) {
        self.stalls[shard].store(micros, std::sync::atomic::Ordering::Relaxed);
    }

    /// Snapshot of every shard's counters, indexed by shard.
    fn stats(&self) -> Vec<RxShardStats> {
        for tx in &self.requests {
            tx.send(RxRequest::Stats).expect("RX shard alive");
        }
        let mut out = vec![RxShardStats::default(); self.requests.len()];
        for _ in 0..self.requests.len() {
            match self.replies.recv().expect("RX shard alive") {
                RxReply::Stats { shard, stats } => out[shard] = stats,
                RxReply::ShardDead { shard } => panic!("RX shard {shard} died"),
                RxReply::Event(_) | RxReply::PeerState { .. } | RxReply::AllPeers { .. } => {
                    unreachable!(
                        "no receive batch, remap, or resize is in flight during a stats query"
                    )
                }
            }
        }
        out
    }
}

impl Drop for RxShardPool {
    fn drop(&mut self) {
        for tx in &self.requests {
            let _ = tx.send(RxRequest::Shutdown);
        }
        for join in self.joins.drain(..) {
            let _ = join.join();
        }
    }
}

/// Records accumulated from the RX stage before a sharded dispatch is cut.
/// Small enough that shard crypto starts while the RX stage still parses
/// the tail of a large receive batch; large enough to amortise the
/// channel round-trip.
pub const RX_DISPATCH_CHUNK: usize = 32;

/// Observability counters for structural elasticity: every online
/// grow/shrink of the RX shard pool or worker pool, and the state that
/// migrated across those rehashes. Reconciles with the datapath — a
/// resize never loses or duplicates a record (pinned by
/// `tests/elastic_resize.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResizeStats {
    /// RX pool grow operations (`K` increased).
    pub rx_grows: u64,
    /// RX pool shrink operations (`K` decreased; retiring shards drained
    /// to their successors before their threads exited).
    pub rx_shrinks: u64,
    /// Worker pool grow operations (`N` increased).
    pub worker_grows: u64,
    /// Worker pool shrink operations (`N` decreased).
    pub worker_shrinks: u64,
    /// Peers whose reassembly state moved to a different RX shard across
    /// all resizes (peers whose home is unchanged under the new modulus
    /// do not count).
    pub peers_rehashed: u64,
    /// In-flight partial records that rode along inside rehashed
    /// reassemblers (distinct from the remap law's
    /// [`ShardedEndBoxServer::rx_remap_counters`] drain count).
    pub partials_drained: u64,
    /// Sessions migrated off retiring workers (replay windows and crypto
    /// state move with them, via the same extract→install round-trip as
    /// a load-aware migration).
    pub sessions_moved: u64,
}

/// The sharded multi-worker EndBox server front-end, now a **staged
/// pipeline**:
///
/// 1. **RX stage** ([`RxShardPool`], `K` threads): per-peer datagram
///    reassembly and record framing, sharded by `peer_id mod K`.
///    Reassembly state is pinned to its RX shard and never migrates.
/// 2. **Dispatch** (front-end thread): shard events are re-merged into
///    input-index order and handed to the [`ShardedVpnServer`] in chunks
///    of [`RX_DISPATCH_CHUNK`], so shard crypto for early records
///    overlaps with RX framing of later ones on every RX shard.
/// 3. **Workers**: everything per-session (crypto, replay windows,
///    policy, packet materialisation from per-shard buffer pools) runs on
///    the shard threads, placed by the configured [`DispatchPolicy`].
///
/// # Re-merge ordering guarantee
///
/// [`ShardedEndBoxServer::receive_datagrams`] returns exactly one
/// [`Delivery`] result per input datagram, **in input order**, for any
/// RX shard count, worker count, chunking and thread schedule;
/// per-session record order is preserved by per-peer RX order (see
/// [`RxShardPool`]) plus single-owner routing and per-shard FIFO (see
/// `endbox_vpn::shard`), and a Disconnect pauses its owning RX shard
/// until its verdict is known so reassembler teardown sequences exactly
/// like the single-threaded server. With any `(rx_shards, workers)` the
/// observable behaviour is identical to [`EndBoxServer`] —
/// property-tested in `tests/shard_parity.rs` and replayed under named
/// deterministic schedules in `tests/rx_interleaving.rs`.
///
/// The sharded server intentionally has no server-side Click instance:
/// that attachment exists only for the centralised OpenVPN+Click
/// baseline, which the sharded EndBox deployment replaces.
pub struct ShardedEndBoxServer {
    vpn: ShardedVpnServer,
    rx: RxShardPool,
    io: ServerIo,
    delivered: u64,
    rejected: u64,
    /// Records the front-end re-merged from the RX shards (reconciles
    /// with the sum of per-shard `records_framed`).
    rx_records_merged: u64,
    /// Disconnect verdicts the front-end sent back to paused RX shards
    /// (reconciles with the sum of per-shard `disconnect_pauses`).
    rx_disconnect_verdicts: u64,
    /// Peers the control plane re-homed to a different RX shard.
    rx_remaps: u64,
    /// Partial records drained along with those remaps (in flight inside
    /// the moved reassemblers at their quiesce points).
    rx_drained_partials: u64,
    /// Structural elasticity counters (grow/shrink of `K` and `N`).
    resize: ResizeStats,
}

impl std::fmt::Debug for ShardedEndBoxServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEndBoxServer")
            .field("workers", &self.vpn.worker_count())
            .field("rx_shards", &self.rx.shard_count())
            .field("sessions", &self.vpn.session_count())
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl ShardedEndBoxServer {
    /// Builds the server with `workers` shard threads (minimum 1), one RX
    /// shard and the default load-aware dispatch policy.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::NotReady`] if a server-side Click configuration is
    /// supplied (only the centralised baseline carries one).
    pub fn new(
        cfg: EndBoxServerConfig,
        workers: usize,
    ) -> Result<ShardedEndBoxServer, EndBoxError> {
        Self::with_dispatch(cfg, workers, DispatchPolicy::default())
    }

    /// Builds the server with an explicit [`DispatchPolicy`] and one RX
    /// shard.
    ///
    /// # Errors
    ///
    /// See [`ShardedEndBoxServer::new`].
    pub fn with_dispatch(
        cfg: EndBoxServerConfig,
        workers: usize,
        dispatch: DispatchPolicy,
    ) -> Result<ShardedEndBoxServer, EndBoxError> {
        Self::with_pipeline(cfg, workers, dispatch, 1)
    }

    /// Builds the fully-knobbed pipeline: `workers` crypto shard threads,
    /// `rx_shards` RX framing threads (minimum 1 each) and an explicit
    /// [`DispatchPolicy`].
    ///
    /// # Errors
    ///
    /// See [`ShardedEndBoxServer::new`].
    pub fn with_pipeline(
        cfg: EndBoxServerConfig,
        workers: usize,
        dispatch: DispatchPolicy,
        rx_shards: usize,
    ) -> Result<ShardedEndBoxServer, EndBoxError> {
        if cfg.server_click.is_some() {
            return Err(EndBoxError::NotReady(
                "sharded server has no server-side Click",
            ));
        }
        let vpn = ShardedVpnServer::with_dispatch(
            cfg.handshake,
            cfg.suite,
            cfg.meter.clone(),
            cfg.cost.clone(),
            cfg.rng_seed,
            workers,
            dispatch,
        );
        let rx = RxShardPool::new(rx_shards, &cfg.meter, &cfg.cost);
        Ok(ShardedEndBoxServer {
            vpn,
            rx,
            io: ServerIo::new(cfg.cost, cfg.meter, cfg.clock),
            delivered: 0,
            rejected: 0,
            rx_records_merged: 0,
            rx_disconnect_verdicts: 0,
            rx_remaps: 0,
            rx_drained_partials: 0,
            resize: ResizeStats::default(),
        })
    }

    /// Number of worker shards.
    pub fn worker_count(&self) -> usize {
        self.vpn.worker_count()
    }

    /// Number of RX shards.
    pub fn rx_shard_count(&self) -> usize {
        self.rx.shard_count()
    }

    /// Per-RX-shard observability counters (records framed, reassembly
    /// bytes held, disconnect pauses, …), indexed by shard. A cross-thread
    /// query, hence `&mut` — like [`ShardedEndBoxServer::client_config_version`].
    pub fn rx_shard_stats(&mut self) -> Vec<RxShardStats> {
        self.rx.stats()
    }

    /// Front-end re-merge totals `(records merged, disconnect verdicts)`,
    /// for reconciling against [`ShardedEndBoxServer::rx_shard_stats`].
    pub fn rx_merge_counters(&self) -> (u64, u64) {
        (self.rx_records_merged, self.rx_disconnect_verdicts)
    }

    /// Test hook: stall RX shard `shard` by `micros` per datagram (see
    /// [`RxShardPool::set_stall_micros`]).
    pub fn set_rx_stall_micros(&self, shard: usize, micros: u64) {
        self.rx.set_stall_micros(shard, micros);
    }

    /// The dispatch policy in force.
    pub fn dispatch_policy(&self) -> DispatchPolicy {
        self.vpn.dispatch_policy()
    }

    /// Sessions the load-aware dispatcher migrated so far.
    pub fn migrations(&self) -> u64 {
        self.vpn.migrations()
    }

    /// Idle-worker steals performed by the adaptive dispatcher (a subset
    /// of [`ShardedEndBoxServer::migrations`]).
    pub fn steals(&self) -> u64 {
        self.vpn.steals()
    }

    /// Re-homes `peer`'s reassembly state to RX shard `to` (see
    /// [`RxShardPool::remap_peer`] for the quiescence contract), returning
    /// the number of in-flight partial records drained along. Only legal
    /// between `receive_datagrams` calls.
    pub fn remap_rx_peer(&mut self, peer: u64, to: usize) -> usize {
        let before = self.rx.shard_of(peer);
        let drained = self.rx.remap_peer(peer, to);
        if self.rx.shard_of(peer) != before {
            self.rx_remaps += 1;
            self.rx_drained_partials += drained as u64;
        }
        drained
    }

    /// `(remaps, drained partial records)` performed so far via
    /// [`ShardedEndBoxServer::remap_rx_peer`].
    pub fn rx_remap_counters(&self) -> (u64, u64) {
        (self.rx_remaps, self.rx_drained_partials)
    }

    /// The RX shard currently owning `peer`'s reassembly state.
    pub fn rx_shard_of(&self, peer: u64) -> usize {
        self.rx.shard_of(peer)
    }

    /// Resizes the RX framing pool to `shards` threads online (minimum
    /// 1), rehashing every peer's reassembly state to its home under the
    /// new modulus with the quiesce/drain/install discipline of
    /// [`RxShardPool::resize`]. Returns `(peers rehashed, in-flight
    /// partials drained along)`. Only legal between `receive_datagrams`
    /// calls — a no-op if `shards` already matches.
    pub fn resize_rx_shards(&mut self, shards: usize) -> (usize, usize) {
        let before = self.rx.shard_count();
        let (moved, drained) = self.rx.resize(shards);
        let after = self.rx.shard_count();
        if after > before {
            self.resize.rx_grows += 1;
        } else if after < before {
            self.resize.rx_shrinks += 1;
        }
        self.resize.peers_rehashed += moved as u64;
        self.resize.partials_drained += drained as u64;
        (moved, drained)
    }

    /// Resizes the worker pool to `workers` shard threads online (minimum
    /// 1); retiring workers drain every session they own (replay windows
    /// included) to their successors before exit. Returns how many
    /// sessions moved. Only legal at a dispatch boundary — a no-op if
    /// `workers` already matches.
    pub fn resize_workers(&mut self, workers: usize) -> usize {
        let before = self.vpn.worker_count();
        let moved = self.vpn.resize_workers(workers);
        let after = self.vpn.worker_count();
        if after > before {
            self.resize.worker_grows += 1;
        } else if after < before {
            self.resize.worker_shrinks += 1;
        }
        self.resize.sessions_moved += moved as u64;
        moved
    }

    /// Structural-elasticity counters accumulated so far.
    pub fn resize_stats(&self) -> ResizeStats {
        self.resize
    }

    /// Receives one wire datagram. This is *not* a special-cased path: the
    /// datagram routes through the [`RxShardPool`] exactly like a batch of
    /// one, so singular and batch calls may be mixed freely without
    /// perturbing per-peer reassembly order (the copy it makes is what
    /// handing the datagram to the RX stage costs on this path).
    ///
    /// # Errors
    ///
    /// Every authentication/policy failure; callers drop the traffic.
    pub fn receive_datagram(
        &mut self,
        peer_id: u64,
        datagram: &[u8],
    ) -> Result<Delivery, EndBoxError> {
        self.receive_datagrams(vec![(peer_id, datagram.to_vec())])
            .pop()
            .expect("one result for one datagram")
    }

    /// Receives a whole batch of wire datagrams — from any mix of clients
    /// — through the staged pipeline, returning one result per datagram
    /// in input order (the re-merge guarantee above). Takes the datagrams
    /// by value: ownership moves into the RX shards, so the ingress path
    /// performs no wire-level copy.
    pub fn receive_datagrams(
        &mut self,
        datagrams: Vec<(u64, Vec<u8>)>,
    ) -> Vec<Result<Delivery, EndBoxError>> {
        let n = datagrams.len();
        if n == 0 {
            return Vec::new();
        }
        // Stage 1: split the receive batch into per-RX-shard sub-batches
        // by `peer_id mod K` (per-peer order is preserved — a peer's
        // datagrams all land on one shard, in input order) and ship them;
        // the shards stream outcomes back while we dispatch records.
        let shards = self.rx.shard_count();
        let mut per_shard: Vec<Vec<(u32, u64, Vec<u8>)>> =
            (0..shards).map(|_| Vec::new()).collect();
        for (i, (peer, d)) in datagrams.into_iter().enumerate() {
            per_shard[self.rx.shard_of(peer)].push((i as u32, peer, d));
        }
        for (shard, batch) in per_shard.into_iter().enumerate() {
            if !batch.is_empty() {
                self.rx.requests[shard]
                    .send(RxRequest::Batch(batch))
                    .expect("RX shard alive");
            }
        }
        // Stages 2+3: re-merge shard events into **input-index order**
        // (cross-peer interleaving across shards is arbitrary; `stash`
        // holds early arrivals until the cursor reaches them), cutting a
        // sharded dispatch whenever a chunk of records accumulated (shard
        // crypto overlaps RX framing of the tail) or a Disconnect needs
        // its verdict before its shard's reassembly may continue.
        let mut results: Vec<Option<Result<Delivery, EndBoxError>>> =
            (0..n).map(|_| None).collect();
        let mut stash: Vec<Option<(u64, RxOutcome)>> = (0..n).map(|_| None).collect();
        let mut pending: Vec<(u32, Record)> = Vec::new();
        let mut cursor = 0usize;
        let mut received = 0usize;
        while received < n {
            let RxEvent { idx, peer, outcome } = match self
                .rx
                .replies
                .recv()
                .expect("an RX shard is alive")
            {
                RxReply::Event(event) => event,
                RxReply::ShardDead { shard } => {
                    panic!("RX shard {shard} died mid-receive")
                }
                RxReply::Stats { .. } | RxReply::PeerState { .. } | RxReply::AllPeers { .. } => {
                    unreachable!("no stats query, remap, or resize is in flight during a receive")
                }
            };
            received += 1;
            stash[idx as usize] = Some((peer, outcome));
            while cursor < n {
                let Some((peer, outcome)) = stash[cursor].take() else {
                    break;
                };
                match outcome {
                    RxOutcome::Pending => results[cursor] = Some(Ok(Delivery::Pending)),
                    RxOutcome::Reassembly(e) => {
                        self.rejected += 1;
                        results[cursor] = Some(Err(EndBoxError::Vpn(e)));
                    }
                    RxOutcome::Malformed(e) => results[cursor] = Some(Err(EndBoxError::Vpn(e))),
                    RxOutcome::Record(record) => {
                        self.rx_records_merged += 1;
                        let disconnect = record.opcode == Opcode::Disconnect;
                        pending.push((cursor as u32, record));
                        if disconnect {
                            // Drain the pipeline up to and including the
                            // Disconnect, then release the paused owning
                            // shard with the verdict.
                            self.dispatch_pending(&mut pending, &mut results);
                            let confirmed =
                                matches!(results[cursor], Some(Ok(Delivery::Disconnected { .. })));
                            self.rx_disconnect_verdicts += 1;
                            self.rx.requests[self.rx.shard_of(peer)]
                                .send(RxRequest::Teardown { peer, confirmed })
                                .expect("RX shard alive");
                        } else if pending.len() >= RX_DISPATCH_CHUNK {
                            self.dispatch_pending(&mut pending, &mut results);
                        }
                    }
                }
                cursor += 1;
            }
        }
        self.dispatch_pending(&mut pending, &mut results);
        results
            .into_iter()
            .map(|r| r.expect("every datagram produces a result"))
            .collect()
    }

    /// One sharded dispatch for the queued records, then the
    /// deterministic re-merge back into input order.
    fn dispatch_pending(
        &mut self,
        pending: &mut Vec<(u32, Record)>,
        results: &mut [Option<Result<Delivery, EndBoxError>>],
    ) {
        if pending.is_empty() {
            return;
        }
        let now_secs = self.io.now_secs();
        let mut origins = Vec::with_capacity(pending.len());
        let mut records = Vec::with_capacity(pending.len());
        for (idx, record) in pending.drain(..) {
            origins.push(idx);
            records.push(record);
        }
        let events = self.vpn.handle_records(records, now_secs);
        for (idx, event) in origins.into_iter().zip(events) {
            results[idx as usize] = Some(self.finish_event(event));
        }
    }

    fn finish_event(
        &mut self,
        event: Result<ShardEvent, VpnError>,
    ) -> Result<Delivery, EndBoxError> {
        let event = event.map_err(|e| {
            self.rejected += 1;
            EndBoxError::Vpn(e)
        })?;
        match event {
            ShardEvent::Established {
                session_id,
                response,
                ..
            } => {
                let datagrams = self.io.fragment(&response);
                Ok(Delivery::Established {
                    session_id,
                    response: datagrams,
                })
            }
            ShardEvent::Packet { session_id, packet } => {
                self.io.charge_delivery(1);
                self.delivered += 1;
                Ok(Delivery::Packet { session_id, packet })
            }
            ShardEvent::Batch { session_id, batch } => {
                self.io.charge_delivery(batch.len());
                self.delivered += batch.len() as u64;
                Ok(Delivery::PacketBatch {
                    session_id,
                    packets: batch.into_vec(),
                })
            }
            ShardEvent::Ping {
                session_id,
                message,
            } => Ok(Delivery::Ping {
                session_id,
                message,
            }),
            // Reassembler teardown is the RX stage's job (it owns the
            // per-peer state and is paused awaiting the verdict).
            ShardEvent::Disconnected { session_id } => Ok(Delivery::Disconnected { session_id }),
        }
    }

    /// Seals and fragments a packet towards a client (ingress direction).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Vpn`] for unknown sessions.
    pub fn send_to_client(
        &mut self,
        session_id: u64,
        packet: &Packet,
    ) -> Result<Vec<Vec<u8>>, EndBoxError> {
        self.io.charge_egress(1, packet.len());
        let record = self
            .vpn
            .seal_to_client(session_id, Opcode::Data, packet.bytes().to_vec())?;
        Ok(self.io.fragment(&record))
    }

    /// Seals several packets towards a client as **one** `DataBatch`
    /// record, then fragments it.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Vpn`] for unknown sessions.
    pub fn send_batch_to_client(
        &mut self,
        session_id: u64,
        packets: &[Packet],
    ) -> Result<Vec<Vec<u8>>, EndBoxError> {
        let total: usize = packets.iter().map(Packet::len).sum();
        self.io.charge_egress(packets.len(), total);
        let payloads: Vec<Vec<u8>> = packets.iter().map(|p| p.bytes().to_vec()).collect();
        let record = self.vpn.seal_batch_to_client(session_id, payloads)?;
        Ok(self.io.fragment(&record))
    }

    /// Sanitises a packet arriving from *outside* the managed network
    /// (see [`EndBoxServer::sanitize_external`]).
    pub fn sanitize_external(&self, packet: &mut Packet) {
        sanitize_external_packet(packet);
    }

    /// Announces a configuration update (Fig. 5 steps 2–3), replicated to
    /// every shard.
    pub fn announce_config(&mut self, version: u64, grace_period_secs: u32) {
        let now_secs = self.io.now_secs();
        self.vpn
            .announce_config(version, grace_period_secs, now_secs);
    }

    /// Builds the periodic server ping for a session (Fig. 5 step 4).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Vpn`] for unknown sessions.
    pub fn make_ping(&mut self, session_id: u64) -> Result<Vec<Vec<u8>>, EndBoxError> {
        let record = self
            .vpn
            .make_ping(session_id, self.io.clock.now().as_nanos())?;
        Ok(self.io.fragment(&record))
    }

    /// Connected session ids.
    pub fn session_ids(&self) -> Vec<u64> {
        self.vpn.session_ids()
    }

    /// Connected client count.
    pub fn session_count(&self) -> usize {
        self.vpn.session_count()
    }

    /// The config version a session has proved via ping (a cross-shard
    /// query, hence `&mut`).
    pub fn client_config_version(&mut self, session_id: u64) -> Option<u64> {
        self.vpn
            .session_snapshot(session_id)
            .map(|s| s.reported_config_version)
    }

    /// (delivered, rejected) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.delivered, self.rejected)
    }
}

/// Observability counters for the event-driven socket front-end (the
/// socket-layer analogue of [`RxShardStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AsyncIngressStats {
    /// Event-loop wakeups: [`endbox_netsim::net::PollGroup::poll`] calls
    /// summed over all poll groups. `datagrams / wakeups` is the
    /// amortisation the event loop achieved — the measured input to the
    /// timing-layer [`endbox_netsim::pipeline::AsyncFrontEndModel`].
    pub wakeups: u64,
    /// Pump rounds (one poll of every group + one pipelined dispatch).
    pub rounds: u64,
    /// Wire datagrams drained from sockets into the datapath.
    pub datagrams: u64,
    /// Rounds in which at least one shard's budget ran out while its
    /// sockets still held data — the backpressure deferrals that keep one
    /// flooding peer from monopolising a dispatch. Never exceeds
    /// [`AsyncIngressStats::rounds`].
    pub deferred_rounds: u64,
    /// Bulk `recv_many` calls issued against registered sockets (each
    /// one "syscall"). `datagrams / io_calls` is the syscall
    /// amortisation the bulk transport achieved — the measured input to
    /// the timing-layer
    /// [`endbox_netsim::pipeline::SyscallBatchModel`]. A per-datagram
    /// front-end (`recv_bulk == 1`) pays roughly one call per datagram;
    /// a bulk one pays one per batch.
    pub io_calls: u64,
}

/// Default per-socket drain quota per scheduling pass (matches
/// [`RX_DISPATCH_CHUNK`]: one pass contributes at most one dispatch chunk
/// per peer).
pub const DEFAULT_DRAIN_QUOTA: usize = RX_DISPATCH_CHUNK;

/// Default per-shard datagram budget per pump round. Generous enough that
/// ordinary traffic drains in one round (so the event-driven results are
/// byte-identical to a single `receive_datagrams` call, in wire order);
/// small enough to bound the memory one dispatch can pin under flood.
pub const DEFAULT_SHARD_BUDGET: usize = 1024;

/// EWMA smoothing factor for the controller's per-group demand signal
/// (same weighting as the dispatcher's `LOAD_EWMA_ALPHA`: recent rounds
/// dominate, one quiet round does not erase a hot spot).
const DEMAND_EWMA_ALPHA: f64 = 0.5;

/// A poll group is *hot* when its smoothed demand exceeds this multiple
/// of the **other** groups' mean. Part of the control law, not a tuning
/// knob: carrying twice what everyone else averages is the smallest
/// imbalance a single-peer remap can meaningfully halve.
const REMAP_HOT_FACTOR: f64 = 2.0;

/// Consecutive hot rounds before the controller re-homes a peer — the
/// debounce that keeps one bursty round from triggering a remap whose
/// drain cost outweighs its benefit.
const REMAP_HOT_ROUNDS: u32 = 3;

/// Token-bucket cap in fair shares: a socket may bank at most this many
/// rounds' worth of unused fair share, bounding the burst a hot peer can
/// borrow from idle shard-mates in a single round.
const TOKEN_BURST_SHARES: f64 = 4.0;

/// Smoothed backlog per RX shard the resize law sizes the pool for: one
/// dispatch chunk of queued work per shard per round is "full" — less
/// means capacity is idle, more means the pool is behind demand.
pub const RESIZE_TARGET_DEMAND: f64 = RX_DISPATCH_CHUNK as f64;

/// Consecutive rounds the demanded shard count must exceed the live one
/// before the law grows the pool (growth debounce).
pub const RESIZE_GROW_ROUNDS: u32 = 3;

/// Consecutive rounds of excess capacity before the law shrinks —
/// deliberately longer than the growth debounce (hysteresis: giving
/// capacity back is cheap to defer, falling behind is not).
pub const RESIZE_SHRINK_ROUNDS: u32 = 6;

/// Rounds after any resize during which the law stays quiet, so the
/// trace's noise cannot thrash the pool through repeated rehashes.
pub const RESIZE_COOLDOWN_ROUNDS: u32 = 8;

/// Hard ceiling on the RX shard count the law will grow to.
pub const RESIZE_MAX_RX: usize = 8;

/// Worker threads the law provisions per RX shard when it resizes.
pub const RESIZE_WORKERS_PER_SHARD: usize = 2;

/// Snapshot of the self-tuning control plane's actions, assembled by
/// [`AsyncFrontEnd::controller_stats`] from the front-end's budget
/// controller, the RX remap counters and the adaptive dispatcher. Each
/// field reconciles against an independent datapath counter (pinned in
/// `tests/adaptive_control.rs`): drained datagrams never exceed
/// `budget_grants`, `drained_partials` rides along `remaps`, and
/// `steals <= migrations`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ControllerStats {
    /// Pump rounds the adaptive budget controller planned (subset of
    /// [`AsyncIngressStats::rounds`] — only rounds that drained count).
    pub budget_rounds: u64,
    /// Total datagram budget granted across those rounds (sum of the
    /// per-group demand-proportional budgets of every polled-ready
    /// group). Always >= [`AsyncIngressStats::datagrams`] drained while
    /// the controller was active.
    pub budget_grants: u64,
    /// Datagrams a socket drained beyond its fair share of the group
    /// budget — capacity borrowed from idle shard-mates via the token
    /// buckets.
    pub tokens_borrowed: u64,
    /// Peers re-homed to a different RX shard (and poll group).
    pub remaps: u64,
    /// In-flight partial records drained along with those remaps.
    pub drained_partials: u64,
    /// Idle-worker session steals by [`DispatchPolicy::Adaptive`].
    pub steals: u64,
    /// Total dispatcher migrations (rate-based rebalance + steals), so
    /// `steals <= migrations` by construction.
    pub migrations: u64,
}

/// The event-driven socket front-end: **one poll group per RX shard**,
/// with each peer's server-side socket registered in the group of the
/// shard that owns the peer's reassembly state (`peer_id mod K` — the
/// same map as [`RxShardPool`], so a poll group only ever feeds its own
/// shard).
///
/// Each [`AsyncFrontEnd::pump`] round polls every group, drains readable
/// sockets into an owned-datagram batch and hands the batch to
/// [`ShardedEndBoxServer::receive_datagrams`] — the zero-copy ingress
/// path: datagram ownership moves from the socket queue into the RX
/// shards without a wire-level copy.
///
/// # Ordering
///
/// Drained datagrams are re-merged by their wire arrival stamp
/// ([`endbox_netsim::net::Datagram::seq`]) before dispatch, so a round
/// that drains everything processes datagrams in exact wire order and the
/// results are **byte-identical to the synchronous front-end** (and
/// therefore to the single-threaded reference server) — pinned across the
/// `tests/support/` schedule grid by `tests/async_ingress.rs`. When
/// backpressure splits a flood across rounds, *per-peer* order is still
/// exact (sockets are FIFO and the stamp sort is total), which is the
/// order the session layer depends on; only the interleaving *between*
/// peers moves, exactly as it would under real socket scheduling.
///
/// # Backpressure
///
/// Shard queue depth propagates to socket read scheduling: each round a
/// shard drains at most [`AsyncFrontEnd::set_shard_budget`] datagrams,
/// taken round-robin over its readable sockets in passes of at most
/// [`AsyncFrontEnd::set_drain_quota`] datagrams per socket. A peer
/// flooding its socket therefore yields to its shard-mates every pass:
/// the mates' traffic rides in every round while the flood's tail stays
/// queued in *its own* socket ([`AsyncIngressStats::deferred_rounds`]
/// counts these deferrals) — it cannot starve the shard, and other
/// shards' poll groups are untouched by construction.
///
/// # Example
///
/// The scenario layer owns the wiring
/// ([`crate::scenario::ScenarioBuilder::async_ingress`] binds one server
/// socket per peer and registers it here); driving the loop is three
/// calls (long-form version: `examples/async_ingress.rs`):
///
/// ```
/// use endbox::scenario::Scenario;
/// use endbox::use_cases::UseCase;
///
/// let mut s = Scenario::enterprise(2, UseCase::Nop)
///     .rx_shards(2)
///     .async_ingress(true)
///     .build_sharded(2)
///     .unwrap();
/// // Seal a packet on client 0, put the datagrams on the wire…
/// let pkt = endbox_netsim::Packet::tcp(
///     Scenario::client_addr(0),
///     Scenario::network_addr(),
///     40_000, 5_001, 0,
///     b"through the event loop",
/// );
/// let sealed = s.clients[0].send_packet(pkt).unwrap();
/// s.send_wire_datagrams(0, sealed);
/// // …and run the event loop: poll, drain, dispatch.
/// let results = s.pump_async();
/// assert_eq!(results.len(), 1);
/// assert_eq!(results[0].0, 0, "tagged with the sending peer");
/// assert!(s.async_stats().wakeups > 0);
/// ```
#[derive(Debug)]
pub struct AsyncFrontEnd {
    groups: Vec<endbox_netsim::net::PollGroup>,
    /// Slot-indexed `(peer, socket)` registry; `Token(slot)` keys events.
    sockets: Vec<(u64, endbox_netsim::net::UdpEndpoint)>,
    /// Slots registered per group, in registration order.
    group_slots: Vec<Vec<usize>>,
    /// Each slot's position within its group's registration order
    /// (parallel to `sockets`; used to rotate the ready list fairly).
    slot_pos: Vec<usize>,
    /// Per-group round-robin cursor into `group_slots` (fairness across
    /// rounds: the next round starts scanning after the last drained
    /// socket).
    rr: Vec<usize>,
    drain_quota: usize,
    shard_budget: usize,
    /// Max datagrams moved per bulk `recv_many` call (the `recvmmsg`
    /// vector length).
    recv_bulk: usize,
    rounds: u64,
    datagrams: u64,
    deferred_rounds: u64,
    io_calls: u64,
    /// Closed-loop controller switch ([`AsyncFrontEnd::set_adaptive`]).
    /// When off, the static knobs above govern and the drain path is
    /// byte-identical to earlier revisions.
    adaptive: bool,
    /// Per-slot token buckets (fractional datagrams of drain allowance;
    /// only consulted when `adaptive`).
    tokens: Vec<f64>,
    /// Per-group smoothed socket-backlog demand (the controller's load
    /// signal).
    demand_ewma: Vec<f64>,
    /// Per-group consecutive rounds above the hot threshold (remap
    /// debounce).
    hot_rounds: Vec<u32>,
    budget_rounds: u64,
    budget_grants: u64,
    tokens_borrowed: u64,
    /// Structural-elasticity switch ([`AsyncFrontEnd::set_elastic`]):
    /// when on (implies `adaptive`), the control round may resize the RX
    /// pool and worker pool themselves.
    elastic: bool,
    /// Consecutive control rounds demanding more shards than are live.
    grow_rounds: u32,
    /// Consecutive control rounds demanding fewer shards than are live.
    shrink_rounds: u32,
    /// Control rounds remaining before the resize law may fire again.
    resize_cooldown: u32,
    /// Wakeups accumulated by poll groups retired across resizes, so
    /// [`AsyncIngressStats::wakeups`] stays monotonic through a resize.
    retired_wakeups: u64,
}

impl AsyncFrontEnd {
    /// A front-end with one poll group per RX shard and the default
    /// drain quota / shard budget.
    pub fn new(rx_shards: usize) -> AsyncFrontEnd {
        let rx_shards = rx_shards.max(1);
        AsyncFrontEnd {
            groups: (0..rx_shards)
                .map(|_| endbox_netsim::net::PollGroup::new())
                .collect(),
            sockets: Vec::new(),
            group_slots: vec![Vec::new(); rx_shards],
            slot_pos: Vec::new(),
            rr: vec![0; rx_shards],
            drain_quota: DEFAULT_DRAIN_QUOTA,
            shard_budget: DEFAULT_SHARD_BUDGET,
            recv_bulk: DEFAULT_DRAIN_QUOTA,
            rounds: 0,
            datagrams: 0,
            deferred_rounds: 0,
            io_calls: 0,
            adaptive: false,
            tokens: Vec::new(),
            demand_ewma: vec![0.0; rx_shards],
            hot_rounds: vec![0; rx_shards],
            budget_rounds: 0,
            budget_grants: 0,
            tokens_borrowed: 0,
            elastic: false,
            grow_rounds: 0,
            shrink_rounds: 0,
            resize_cooldown: 0,
            retired_wakeups: 0,
        }
    }

    /// Number of poll groups (== RX shards).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Registers `peer`'s server-side socket with the poll group of the
    /// RX shard owning the peer (`peer mod K`).
    pub fn register_peer(&mut self, peer: u64, endpoint: endbox_netsim::net::UdpEndpoint) {
        let group = (peer % self.groups.len() as u64) as usize;
        let slot = self.sockets.len();
        self.groups[group].register(&endpoint, endbox_netsim::net::Token(slot));
        self.slot_pos.push(self.group_slots[group].len());
        self.group_slots[group].push(slot);
        self.sockets.push((peer, endpoint));
        self.tokens.push(0.0);
    }

    /// Per-socket datagrams drained per scheduling pass (fairness grain).
    pub fn set_drain_quota(&mut self, quota: usize) {
        self.drain_quota = quota.max(1);
    }

    /// Per-shard datagram budget per pump round (backpressure bound).
    pub fn set_shard_budget(&mut self, budget: usize) {
        self.shard_budget = budget.max(1);
    }

    /// Max datagrams moved per bulk `recv_many` call — the `recvmmsg`
    /// vector length. `1` degenerates to the per-datagram transport
    /// shape (one call per datagram); larger values amortise the
    /// syscall boundary over the batch. Drained datagrams and their
    /// dispatch order are **identical** at every setting (the bulk op
    /// is contractually equivalent to N singles); only
    /// [`AsyncIngressStats::io_calls`] moves.
    pub fn set_recv_bulk(&mut self, bulk: usize) {
        self.recv_bulk = bulk.max(1);
    }

    /// Switches the closed-loop controller on or off. When on, the
    /// static [`AsyncFrontEnd::set_drain_quota`] /
    /// [`AsyncFrontEnd::set_shard_budget`] knobs are superseded each
    /// round by demand-proportional shard budgets with per-socket token
    /// buckets, and a persistently hot poll group has its hottest peer
    /// re-homed to the coldest group (socket registration **and** RX
    /// reassembly state, quiesced and drained — see
    /// [`ShardedEndBoxServer::remap_rx_peer`]). Every decision lands at
    /// a round boundary, so drained datagrams still re-merge into exact
    /// wire order and results stay byte-identical to the static
    /// front-end for any drain split. Off by default.
    pub fn set_adaptive(&mut self, on: bool) {
        self.adaptive = on;
    }

    /// Whether the closed-loop controller is active.
    pub fn adaptive(&self) -> bool {
        self.adaptive
    }

    /// Switches structural elasticity on or off (implies
    /// [`AsyncFrontEnd::set_adaptive`] when enabled). When on, the
    /// control round also evaluates the resize law: it sizes the RX pool
    /// for [`RESIZE_TARGET_DEMAND`] smoothed backlog per shard, growing
    /// after [`RESIZE_GROW_ROUNDS`] consecutive rounds of excess demand
    /// and shrinking only after [`RESIZE_SHRINK_ROUNDS`] rounds of excess
    /// capacity, with a [`RESIZE_COOLDOWN_ROUNDS`]-round quiet period
    /// after every resize (hysteresis + cooldown so trace noise cannot
    /// thrash the pool). Workers track the shard count at
    /// [`RESIZE_WORKERS_PER_SHARD`] per shard. Every resize lands at a
    /// round boundary — quiesced by construction — so results stay
    /// byte-identical to any fixed geometry. Off by default.
    pub fn set_elastic(&mut self, on: bool) {
        self.elastic = on;
        if on {
            self.adaptive = true;
        }
    }

    /// Whether the resize law is armed.
    pub fn elastic(&self) -> bool {
        self.elastic
    }

    /// Rebuilds the poll-group set to match `server`'s RX shard count
    /// after a resize: one fresh group per shard, every registered socket
    /// re-registered in the group of the shard that now owns its peer.
    /// Callers that resize the server by hand while the event-driven
    /// front-end is attached must call this (the resize law does), or
    /// the one-group-per-shard invariant breaks at the next pump.
    ///
    /// Retired groups' wakeup counts are folded into
    /// [`AsyncFrontEnd::stats`] so the counter stays monotonic; the
    /// demand signal is spread evenly over the new groups (signal
    /// continuity for the law — the cooldown covers re-learning).
    pub fn resize_groups(&mut self, server: &ShardedEndBoxServer) {
        let new = server.rx_shard_count();
        let total_demand: f64 = self.demand_ewma.iter().sum();
        self.retired_wakeups += self.groups.iter().map(|g| g.wakeups()).sum::<u64>();
        self.groups = (0..new)
            .map(|_| endbox_netsim::net::PollGroup::new())
            .collect();
        self.group_slots = vec![Vec::new(); new];
        self.rr = vec![0; new];
        self.demand_ewma = vec![total_demand / new as f64; new];
        self.hot_rounds = vec![0; new];
        for (slot, (peer, endpoint)) in self.sockets.iter().enumerate() {
            let group = server.rx_shard_of(*peer);
            self.groups[group].register(endpoint, endbox_netsim::net::Token(slot));
            self.slot_pos[slot] = self.group_slots[group].len();
            self.group_slots[group].push(slot);
        }
    }

    /// One resize-law evaluation (armed by [`AsyncFrontEnd::set_elastic`]).
    /// Returns whether a resize fired this round; the remap law skips the
    /// rest of its round when one did, since the group geometry it was
    /// reasoning about no longer exists.
    fn resize_round(&mut self, server: &mut ShardedEndBoxServer) -> bool {
        if self.resize_cooldown > 0 {
            self.resize_cooldown -= 1;
            return false;
        }
        let k = self.groups.len();
        let total: f64 = self.demand_ewma.iter().sum();
        let desired = ((total / RESIZE_TARGET_DEMAND).ceil() as usize).clamp(1, RESIZE_MAX_RX);
        if desired > k {
            self.grow_rounds += 1;
            self.shrink_rounds = 0;
        } else if desired < k {
            self.shrink_rounds += 1;
            self.grow_rounds = 0;
        } else {
            self.grow_rounds = 0;
            self.shrink_rounds = 0;
            return false;
        }
        let fire = (desired > k && self.grow_rounds >= RESIZE_GROW_ROUNDS)
            || (desired < k && self.shrink_rounds >= RESIZE_SHRINK_ROUNDS);
        if !fire {
            return false;
        }
        self.grow_rounds = 0;
        self.shrink_rounds = 0;
        self.resize_cooldown = RESIZE_COOLDOWN_ROUNDS;
        server.resize_rx_shards(desired);
        server.resize_workers(desired * RESIZE_WORKERS_PER_SHARD);
        self.resize_groups(server);
        true
    }

    /// Assembles the full control-plane snapshot: this front-end's
    /// budget counters plus `server`'s remap and dispatcher counters.
    pub fn controller_stats(&self, server: &ShardedEndBoxServer) -> ControllerStats {
        let (remaps, drained_partials) = server.rx_remap_counters();
        ControllerStats {
            budget_rounds: self.budget_rounds,
            budget_grants: self.budget_grants,
            tokens_borrowed: self.tokens_borrowed,
            remaps,
            drained_partials,
            steals: server.steals(),
            migrations: server.migrations(),
        }
    }

    /// Moves `peer`'s socket registration from its current poll group to
    /// `new_group`, keeping registration order and the round-robin
    /// cursors consistent. The RX-shard side of a re-home is
    /// [`ShardedEndBoxServer::remap_rx_peer`]; callers do both (the
    /// controller does, and so must tests driving remaps by hand) so a
    /// poll group keeps feeding exactly its own shard.
    ///
    /// # Panics
    ///
    /// If `new_group` is not a live poll group. Structural resizes make
    /// stale group indices reachable (a caller may hold an index from
    /// before a shrink); silently wrapping such an index modulo the live
    /// count would re-home the peer's socket to a group that does *not*
    /// feed the shard owning its reassembly state, so the front-end fails
    /// loudly instead.
    pub fn rehome_peer(&mut self, peer: u64, new_group: usize) {
        assert!(
            new_group < self.groups.len(),
            "rehome target group {new_group} is not live ({} poll groups)",
            self.groups.len()
        );
        let slot = self
            .sockets
            .iter()
            .position(|(p, _)| *p == peer)
            .expect("rehome of a registered peer");
        let old_group = (0..self.groups.len())
            .find(|&g| self.group_slots[g].contains(&slot))
            .expect("slot registered in a group");
        if old_group == new_group {
            return;
        }
        self.groups[old_group].deregister(endbox_netsim::net::Token(slot));
        self.groups[new_group].register(&self.sockets[slot].1, endbox_netsim::net::Token(slot));
        self.group_slots[old_group].retain(|&s| s != slot);
        self.group_slots[new_group].push(slot);
        for g in [old_group, new_group] {
            for (pos, &s) in self.group_slots[g].iter().enumerate() {
                self.slot_pos[s] = pos;
            }
            self.rr[g] %= self.group_slots[g].len().max(1);
        }
    }

    /// One control-law evaluation at the round boundary: fold each
    /// group's queued socket backlog into its demand EWMA; when one
    /// group has stayed [`REMAP_HOT_FACTOR`]x above the cross-group mean
    /// for [`REMAP_HOT_ROUNDS`] consecutive rounds, re-home its hottest
    /// peer to the coldest group. Runs before any socket is polled, so
    /// no receive batch is in flight — the remap's quiescence
    /// requirement holds by construction.
    fn control_round(&mut self, server: &mut ShardedEndBoxServer) {
        let k = self.groups.len();
        for g in 0..k {
            let demand: usize = self.group_slots[g]
                .iter()
                .map(|&s| self.sockets[s].1.pending())
                .sum();
            self.demand_ewma[g] =
                DEMAND_EWMA_ALPHA * demand as f64 + (1.0 - DEMAND_EWMA_ALPHA) * self.demand_ewma[g];
        }
        // The resize law sees the fresh demand signal first; when it
        // fires, the group geometry the remap law would reason about no
        // longer exists, so the remap law resumes next round.
        if self.elastic && self.resize_round(server) {
            return;
        }
        let k = self.groups.len();
        if k < 2 {
            return;
        }
        let sum = self.demand_ewma.iter().sum::<f64>();
        if sum <= 0.0 {
            return;
        }
        for g in 0..k {
            // Hot = carrying more than REMAP_HOT_FACTOR times what the
            // *other* groups average (against the overall mean a group
            // could never qualify at small K: with two groups the
            // hottest possible share is exactly 2x the mean). A one-peer
            // group has nothing left to shed — moving its only peer
            // would just relocate the hot spot.
            let others = (sum - self.demand_ewma[g]) / (k - 1) as f64;
            let hot = self.demand_ewma[g] > REMAP_HOT_FACTOR * others.max(1.0)
                && self.group_slots[g].len() >= 2;
            self.hot_rounds[g] = if hot { self.hot_rounds[g] + 1 } else { 0 };
        }
        let Some(hot) = (0..k)
            .filter(|&g| self.hot_rounds[g] >= REMAP_HOT_ROUNDS)
            .max_by(|&a, &b| self.demand_ewma[a].total_cmp(&self.demand_ewma[b]))
        else {
            return;
        };
        let cold = (0..k)
            .min_by(|&a, &b| self.demand_ewma[a].total_cmp(&self.demand_ewma[b]))
            .expect("at least two groups");
        if cold == hot {
            return;
        }
        // Shed the *largest* peer that still fits in half the live gap:
        // moving more than that would overshoot and invert the imbalance
        // (the re-homed elephant makes the cold group the new hot spot,
        // and the law would ping-pong it straight back). If no peer fits
        // — one monster session IS the backlog — skip; relocating it
        // would only relocate the hot spot.
        let live = |g: usize| -> usize {
            self.group_slots[g]
                .iter()
                .map(|&s| self.sockets[s].1.pending())
                .sum()
        };
        let half_gap = live(hot).saturating_sub(live(cold)) / 2;
        let Some(&slot) = self.group_slots[hot]
            .iter()
            .filter(|&&s| self.sockets[s].1.pending() <= half_gap)
            .max_by_key(|&&s| self.sockets[s].1.pending())
        else {
            return;
        };
        let moved = self.sockets[slot].1.pending();
        if moved == 0 {
            return;
        }
        let peer = self.sockets[slot].0;
        server.remap_rx_peer(peer, cold);
        self.rehome_peer(peer, cold);
        self.hot_rounds[hot] = 0;
        // Shift the moved backlog between the demand estimates so the
        // law sees the remap's effect now instead of re-firing while the
        // EWMA catches up.
        self.demand_ewma[hot] = (self.demand_ewma[hot] - moved as f64).max(0.0);
        self.demand_ewma[cold] += moved as f64;
    }

    /// Demand-proportional per-group budgets for this round. Every group
    /// keeps a floor of one dispatch chunk (liveness); the rest of the
    /// aggregate capacity — `DEFAULT_SHARD_BUDGET * K`, the same total
    /// the static knobs grant — is split proportionally to queued
    /// backlog, so a hot shard inherits exactly the headroom its idle
    /// shard-mates are not using.
    fn plan_budgets(&self) -> Vec<usize> {
        let k = self.groups.len();
        let spread = (DEFAULT_SHARD_BUDGET * k).saturating_sub(RX_DISPATCH_CHUNK * k);
        let demand: Vec<usize> = (0..k)
            .map(|g| {
                self.group_slots[g]
                    .iter()
                    .map(|&s| self.sockets[s].1.pending())
                    .sum()
            })
            .collect();
        let total: usize = demand.iter().sum();
        (0..k)
            .map(|g| {
                if total == 0 {
                    DEFAULT_SHARD_BUDGET
                } else {
                    RX_DISPATCH_CHUNK
                        + (spread as f64 * demand[g] as f64 / total as f64).round() as usize
                }
            })
            .collect()
    }

    /// Front-end counters.
    pub fn stats(&self) -> AsyncIngressStats {
        AsyncIngressStats {
            wakeups: self.retired_wakeups + self.groups.iter().map(|g| g.wakeups()).sum::<u64>(),
            rounds: self.rounds,
            datagrams: self.datagrams,
            deferred_rounds: self.deferred_rounds,
            io_calls: self.io_calls,
        }
    }

    /// Datagrams still queued in registered sockets (not yet drained).
    pub fn backlog(&self) -> usize {
        self.sockets.iter().map(|(_, ep)| ep.pending()).sum()
    }

    /// One event-loop round: polls every group, drains readable sockets
    /// under the fairness quota and shard budget, re-merges the drained
    /// datagrams into wire order and runs them through one pipelined
    /// [`ShardedEndBoxServer::receive_datagrams`] dispatch. Returns one
    /// `(peer, result)` per drained datagram, in dispatch order; an empty
    /// vector means no socket was readable.
    pub fn pump(
        &mut self,
        server: &mut ShardedEndBoxServer,
    ) -> Vec<(u64, Result<Delivery, EndBoxError>)> {
        debug_assert_eq!(
            self.groups.len(),
            server.rx_shard_count(),
            "one poll group per RX shard"
        );
        // Closed-loop control, evaluated strictly at the round boundary
        // (before any socket is polled): remap persistent hot spots,
        // then derive this round's per-group budgets from live queue
        // depth. `None` = static knobs in force, drain path unchanged.
        let budgets = if self.adaptive {
            self.control_round(server);
            Some(self.plan_budgets())
        } else {
            None
        };
        let mut drained: Vec<(u64, u64, Vec<u8>)> = Vec::new(); // (seq, peer, payload)
        let mut deferred = false;
        let mut events = Vec::new();
        for group in 0..self.groups.len() {
            events.clear();
            if self.groups[group].poll(&mut events) == 0 {
                continue;
            }
            // Drain only the sockets the poll just reported ready (the
            // event list is in registration order), rotated so scanning
            // resumes after the previous round's last service — each
            // wakeup costs O(ready sockets), not O(registered sockets).
            let ready: Vec<usize> = events.iter().map(|e| e.token.0).collect();
            let group_len = self.group_slots[group].len().max(1);
            let cursor = self.rr[group] % group_len;
            let start = ready
                .iter()
                .position(|&slot| self.slot_pos[slot] >= cursor)
                .unwrap_or(0);
            let mut budget = match &budgets {
                Some(b) => {
                    self.budget_grants += b[group] as u64;
                    b[group]
                }
                None => self.shard_budget,
            };
            // Token buckets (adaptive only): every ready socket banks its
            // fair share of the group budget each round, capped at a few
            // shares — a hot peer's per-pass allowance is its banked
            // tokens, so it spends exactly what idle shard-mates left
            // unclaimed instead of a fixed per-socket quota.
            let fair = if budgets.is_some() {
                let fair = (budget as f64 / ready.len() as f64).max(1.0);
                for &slot in &ready {
                    self.tokens[slot] = (self.tokens[slot] + fair).min(TOKEN_BURST_SHARES * fair);
                }
                fair
            } else {
                0.0
            };
            let mut last_drained = None;
            // Scheduling passes: round-robin over the ready sockets, at
            // most `drain_quota` per socket per pass, until the budget is
            // spent or every ready socket is dry. Each socket is drained
            // with bulk `recv_many` calls of up to `recv_bulk` datagrams
            // — the datagrams and their order are identical to the
            // per-datagram shape; only the call count changes. A socket
            // that returns short (`got < want`) is dry for the rest of
            // this round: later passes skip it instead of paying a
            // zero-yield `recv_many`, so `io_calls` counts only calls
            // that could have moved data.
            let mut scratch: Vec<endbox_netsim::net::Datagram> = Vec::new();
            let mut dry = vec![false; ready.len()];
            loop {
                let mut drained_this_pass = 0usize;
                for i in 0..ready.len() {
                    let idx = (start + i) % ready.len();
                    if dry[idx] {
                        continue;
                    }
                    let slot = ready[idx];
                    let quota = if budgets.is_some() {
                        // Allowance = banked tokens, floored at one so a
                        // starved socket still makes progress every pass.
                        self.tokens[slot].floor().max(1.0) as usize
                    } else {
                        self.drain_quota
                    };
                    let (peer, ep) = &self.sockets[slot];
                    let mut taken = 0;
                    while taken < quota && budget > 0 {
                        let want = self.recv_bulk.min(quota - taken).min(budget);
                        scratch.clear();
                        let got = ep.recv_many(want, &mut scratch);
                        self.io_calls += 1;
                        for d in scratch.drain(..) {
                            drained.push((d.seq, *peer, d.payload));
                        }
                        taken += got;
                        budget -= got;
                        if got < want {
                            dry[idx] = true;
                            break; // socket dry until the next round
                        }
                    }
                    if taken > 0 {
                        drained_this_pass += taken;
                        last_drained = Some(self.slot_pos[slot]);
                        if budgets.is_some() {
                            self.tokens[slot] = (self.tokens[slot] - taken as f64).max(0.0);
                            if taken as f64 > fair {
                                self.tokens_borrowed += (taken as f64 - fair).ceil() as u64;
                            }
                        }
                    }
                    if budget == 0 {
                        break;
                    }
                }
                if budget == 0 || drained_this_pass == 0 {
                    break;
                }
            }
            if let Some(pos) = last_drained {
                self.rr[group] = (pos + 1) % group_len;
            }
            if budget == 0 && ready.iter().any(|&slot| self.sockets[slot].1.readable()) {
                deferred = true;
            }
        }
        if drained.is_empty() {
            return Vec::new();
        }
        self.rounds += 1;
        if budgets.is_some() {
            self.budget_rounds += 1;
        }
        self.datagrams += drained.len() as u64;
        if deferred {
            self.deferred_rounds += 1;
        }
        // Re-merge into wire order (the stamp sort is total, so per-peer
        // FIFO order is preserved exactly).
        drained.sort_unstable_by_key(|&(seq, _, _)| seq);
        let peers: Vec<u64> = drained.iter().map(|&(_, peer, _)| peer).collect();
        let batch: Vec<(u64, Vec<u8>)> = drained
            .into_iter()
            .map(|(_, peer, payload)| (peer, payload))
            .collect();
        peers
            .into_iter()
            .zip(server.receive_datagrams(batch))
            .collect()
    }

    /// Pumps until no registered socket is readable, concatenating the
    /// per-round results.
    pub fn run_until_idle(
        &mut self,
        server: &mut ShardedEndBoxServer,
    ) -> Vec<(u64, Result<Delivery, EndBoxError>)> {
        let mut out = Vec::new();
        loop {
            let round = self.pump(server);
            if round.is_empty() {
                return out;
            }
            out.extend(round);
        }
    }
}

/// Counters of the TX-batching egress stage ([`TxBatcher`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TxBatchStats {
    /// Datagrams accepted by [`TxBatcher::enqueue`].
    pub enqueued: u64,
    /// Datagrams shipped onto the wire.
    pub sent: u64,
    /// [`TxBatcher::flush`] calls.
    pub flushes: u64,
    /// Bulk `send_many` calls issued (each one "syscall").
    /// `sent / io_calls` is the egress syscall amortisation — the TX
    /// mirror of [`AsyncIngressStats::io_calls`].
    pub io_calls: u64,
    /// `send_many` calls that shipped only part of their batch (OS
    /// socket backpressure; the tail stayed queued for the next flush).
    pub partial_sends: u64,
}

/// The TX-batching egress stage: collects the fragments the server
/// produces towards clients ([`ShardedEndBoxServer::send_to_client`] /
/// [`ShardedEndBoxServer::send_batch_to_client`]) into per-destination
/// queues and ships each queue with **one** bulk
/// [`UdpEndpoint::send_many`](endbox_netsim::net::UdpEndpoint::send_many)
/// call per flush — the `sendmmsg` shape on the egress side, replacing
/// per-datagram `send_to` writes.
///
/// # Ordering and partial sends
///
/// Per-destination FIFO order is preserved unconditionally: a queue is
/// only ever appended to, and `send_many` ships a prefix. A partial send
/// (OS-socket backpressure) leaves the unshipped tail **at the head of
/// its queue** for the next flush; nothing is reordered or dropped, and
/// [`TxBatchStats::partial_sends`] counts the occurrences. Destinations
/// flush in first-enqueue order, mirroring the wire-order discipline of
/// the ingress side.
#[derive(Debug)]
pub struct TxBatcher {
    endpoint: endbox_netsim::net::UdpEndpoint,
    /// Per-destination queues in first-enqueue order (a `Vec`, not a
    /// `HashMap`, to keep flush order deterministic; destination counts
    /// are small — one per connected peer at most).
    queues: Vec<(u64, Vec<Vec<u8>>)>,
    stats: TxBatchStats,
}

impl TxBatcher {
    /// A batcher sending through `endpoint` (typically the server's
    /// dedicated TX socket).
    pub fn new(endpoint: endbox_netsim::net::UdpEndpoint) -> TxBatcher {
        TxBatcher {
            endpoint,
            queues: Vec::new(),
            stats: TxBatchStats::default(),
        }
    }

    /// The endpoint this batcher sends through.
    pub fn endpoint(&self) -> &endbox_netsim::net::UdpEndpoint {
        &self.endpoint
    }

    /// Queues `datagrams` for `dst`, preserving order behind anything
    /// already queued there.
    pub fn enqueue(&mut self, dst: u64, datagrams: impl IntoIterator<Item = Vec<u8>>) {
        let queue = match self.queues.iter_mut().find(|(d, _)| *d == dst) {
            Some((_, q)) => q,
            None => {
                self.queues.push((dst, Vec::new()));
                &mut self.queues.last_mut().expect("just pushed").1
            }
        };
        let before = queue.len();
        queue.extend(datagrams);
        self.stats.enqueued += (queue.len() - before) as u64;
    }

    /// Datagrams queued and not yet shipped.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|(_, q)| q.len()).sum()
    }

    /// Ships every queue with one bulk call each, in first-enqueue
    /// order. Returns the number of datagrams shipped; tails that hit
    /// backpressure stay queued (see the type docs).
    ///
    /// # Errors
    ///
    /// [`endbox_netsim::net::NetError::Unreachable`] if a destination
    /// has no bound endpoint (its queue is left intact; earlier
    /// destinations' sends stand).
    pub fn flush(&mut self) -> Result<usize, endbox_netsim::net::NetError> {
        self.stats.flushes += 1;
        let mut shipped = 0;
        for (dst, queue) in &mut self.queues {
            if queue.is_empty() {
                continue;
            }
            self.stats.io_calls += 1;
            let sent = self.endpoint.send_many(*dst, queue)?;
            shipped += sent;
            self.stats.sent += sent as u64;
            if !queue.is_empty() {
                self.stats.partial_sends += 1;
            }
        }
        self.queues.retain(|(_, q)| !q.is_empty());
        Ok(shipped)
    }

    /// Egress counters.
    pub fn stats(&self) -> TxBatchStats {
        self.stats
    }
}
