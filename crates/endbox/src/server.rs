//! The EndBox server: the sole entry point into the managed network.
//!
//! Only traffic sealed by a correctly attested client decrypts here, so
//! bypassing the client-side middlebox yields traffic the firewall drops
//! (§III-A, R2). The server also sanitises the client-to-client QoS flag
//! on packets entering from outside ("the ENDBOX server removes the QoS
//! byte if it is set to 0xeb", §IV-A) and optionally runs a *server-side*
//! Click instance (the OpenVPN+Click baseline of §V).

use crate::error::EndBoxError;
use endbox_click::element::ElementEnv;
use endbox_click::Router;
use endbox_netsim::cost::{CostModel, CycleMeter};
use endbox_netsim::packet::QOS_ENDBOX_PROCESSED;
use endbox_netsim::time::SharedClock;
use endbox_netsim::{Packet, PacketBatch};
use endbox_vpn::channel::CipherSuite;
use endbox_vpn::frag::{Fragmenter, Reassembler};
use endbox_vpn::handshake::HandshakeConfig;
use endbox_vpn::ping::PingMessage;
use endbox_vpn::proto::{Opcode, Record};
use endbox_vpn::server::{ServerEvent, VpnServer};
use endbox_vpn::shard::{materialize_frames, ShardEvent, ShardedVpnServer};
use endbox_vpn::VpnError;
use std::collections::HashMap;

/// Server configuration.
#[derive(Debug)]
pub struct EndBoxServerConfig {
    /// Handshake identity/policy (certificate issued by the CA).
    pub handshake: HandshakeConfig,
    /// Data-channel suite.
    pub suite: CipherSuite,
    /// Optional server-side Click configuration (OpenVPN+Click baseline).
    pub server_click: Option<String>,
    /// Cost model.
    pub cost: CostModel,
    /// Server machine cycle meter.
    pub meter: CycleMeter,
    /// Simulation clock.
    pub clock: SharedClock,
    /// Deterministic seed.
    pub rng_seed: u64,
}

/// What the server did with a received datagram.
#[derive(Debug)]
pub enum Delivery {
    /// Incomplete record (more fragments pending).
    Pending,
    /// Handshake finished; send these datagrams back to the client.
    Established {
        /// New session id.
        session_id: u64,
        /// Response datagrams for the client.
        response: Vec<Vec<u8>>,
    },
    /// A tunnel packet was delivered into the managed network.
    Packet {
        /// Originating session.
        session_id: u64,
        /// The decapsulated IP packet.
        packet: Packet,
    },
    /// A batched record delivered several tunnel packets at once (§IV
    /// batching). Packets the server-side Click dropped are already
    /// filtered out (see `counters`).
    PacketBatch {
        /// Originating session.
        session_id: u64,
        /// The decapsulated IP packets, in batch order.
        packets: Vec<Packet>,
    },
    /// A client ping arrived (config-version proof).
    Ping {
        /// Originating session.
        session_id: u64,
        /// Contents.
        message: PingMessage,
    },
    /// The session disconnected.
    Disconnected {
        /// Session that ended.
        session_id: u64,
    },
}

/// Front-end plumbing shared by both server flavours: record
/// fragmentation and the metered cycle-cost formulas for receiving,
/// delivering and sealing traffic. Keeping the formulas in one place
/// guarantees the single-threaded and sharded deployments charge
/// identically — the Fig. 10 single-vs-sharded comparison relies on it.
struct ServerIo {
    fragmenter: Fragmenter,
    cost: CostModel,
    meter: CycleMeter,
    clock: SharedClock,
}

impl ServerIo {
    fn new(cost: CostModel, meter: CycleMeter, clock: SharedClock) -> Self {
        ServerIo {
            fragmenter: Fragmenter::new(),
            cost,
            meter,
            clock,
        }
    }

    fn now_secs(&self) -> u64 {
        self.clock.now().as_secs_f64() as u64
    }

    /// Charges the receipt of one wire datagram.
    fn charge_rx_fragment(&self) {
        self.meter.add(self.cost.vpn_server_per_fragment);
    }

    /// Charges delivery into the managed network: one tun write per
    /// packet.
    fn charge_delivery(&self, n_packets: usize) {
        self.meter.add(self.cost.vpn_per_write * n_packets as u64);
    }

    /// Charges sealing `n_packets` totalling `total_bytes` towards a
    /// client (write + copy into the record).
    fn charge_egress(&self, n_packets: usize, total_bytes: usize) {
        self.meter.add(
            self.cost.vpn_per_write * n_packets as u64
                + (self.cost.memcpy_per_byte * total_bytes as f64) as u64,
        );
    }

    fn fragment(&mut self, record: &Record) -> Vec<Vec<u8>> {
        let bytes = record.to_bytes();
        let frags = self.fragmenter.fragment(&bytes, self.cost.mtu_payload);
        self.meter
            .add(self.cost.vpn_server_per_fragment * frags.len() as u64);
        frags
    }
}

/// Clears a spoofed `0xeb` QoS flag on a packet arriving from outside
/// the managed network, so external traffic cannot skip client-side
/// Click processing (§IV-A). Shared by both server flavours.
fn sanitize_external_packet(packet: &mut Packet) {
    if packet.tos() == QOS_ENDBOX_PROCESSED {
        packet.set_tos(0);
    }
}

/// The EndBox VPN server.
pub struct EndBoxServer {
    vpn: VpnServer,
    reassemblers: HashMap<u64, Reassembler>,
    server_click: Option<Router>,
    io: ServerIo,
    delivered: u64,
    click_dropped: u64,
    rejected: u64,
}

impl std::fmt::Debug for EndBoxServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EndBoxServer")
            .field("sessions", &self.vpn.session_count())
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl EndBoxServer {
    /// Builds the server.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Click`] if the server-side Click config is invalid.
    pub fn new(cfg: EndBoxServerConfig) -> Result<EndBoxServer, EndBoxError> {
        let server_click = match &cfg.server_click {
            None => None,
            Some(text) => {
                let env = ElementEnv {
                    cost: cfg.cost.clone(),
                    meter: cfg.meter.clone(),
                    clock: cfg.clock.clone(),
                    in_enclave: false,
                    hardware_mode: false,
                    // The attached Click receives packets over a socket
                    // from OpenVPN; it does not own devices (fetch/IPC
                    // costs are charged on delivery instead).
                    device_io: false,
                    tls_keys: Default::default(),
                };
                Some(Router::from_config(text, env)?)
            }
        };
        let vpn = VpnServer::new(
            cfg.handshake,
            cfg.suite,
            cfg.meter.clone(),
            cfg.cost.clone(),
            cfg.rng_seed,
        );
        Ok(EndBoxServer {
            vpn,
            reassemblers: HashMap::new(),
            server_click,
            io: ServerIo::new(cfg.cost, cfg.meter, cfg.clock),
            delivered: 0,
            click_dropped: 0,
            rejected: 0,
        })
    }

    /// Receives one wire datagram from peer `peer_id` (a socket-address
    /// analogue used to separate fragment streams).
    ///
    /// # Errors
    ///
    /// Every authentication/policy failure; callers drop the traffic.
    pub fn receive_datagram(
        &mut self,
        peer_id: u64,
        datagram: &[u8],
    ) -> Result<Delivery, EndBoxError> {
        self.io.charge_rx_fragment();
        let reasm = self.reassemblers.entry(peer_id).or_default();
        let Some(bytes) = reasm.push(datagram).map_err(|e| {
            self.rejected += 1;
            EndBoxError::Vpn(e)
        })?
        else {
            return Ok(Delivery::Pending);
        };
        let record = Record::from_bytes(&bytes)?;
        let now_secs = self.io.now_secs();
        let event = self.vpn.handle_record(&record, now_secs).map_err(|e| {
            self.rejected += 1;
            EndBoxError::Vpn(e)
        })?;
        match event {
            ServerEvent::Established {
                session_id,
                response,
                ..
            } => {
                let datagrams = self.io.fragment(&response);
                Ok(Delivery::Established {
                    session_id,
                    response: datagrams,
                })
            }
            ServerEvent::Data {
                session_id,
                payload,
            } => {
                // Zero-copy adoption: the decrypt allocation becomes the
                // pool-managed backing store of the delivered packet.
                let pool = self.vpn.shard().pool().clone();
                let mut packet = Packet::from_vec_in(&pool, payload).map_err(|_| {
                    EndBoxError::Vpn(endbox_vpn::VpnError::Malformed("bad tunnelled packet"))
                })?;
                // Server-side Click (OpenVPN+Click baseline): fetch cost +
                // element processing.
                if let Some(click) = self.server_click.as_mut() {
                    // Handing the packet to the Click process and back:
                    // fetch copies plus inter-process crossings.
                    self.io.meter.add(
                        self.io.cost.click_fetch_per_packet
                            + self.io.cost.click_ipc_per_packet
                            + (self.io.cost.click_fetch_per_byte * packet.len() as f64) as u64,
                    );
                    let out = click.process(packet);
                    if !out.accepted {
                        self.click_dropped += 1;
                        return Err(EndBoxError::PacketDropped);
                    }
                    packet = out.emitted.into_iter().next().expect("accepted");
                }
                // Deliver into the managed network.
                self.io.charge_delivery(1);
                self.delivered += 1;
                Ok(Delivery::Packet { session_id, packet })
            }
            ServerEvent::DataBatch { session_id, frames } => {
                // One pass, one copy: frames go straight from the
                // decrypted blob into pool-recycled packet buffers.
                let pool = self.vpn.shard().pool().clone();
                let mut packets = materialize_frames(&pool, frames)
                    .map_err(EndBoxError::Vpn)?
                    .into_vec();
                if let Some(click) = self.server_click.as_mut() {
                    // Handing the whole batch to the Click process at
                    // once: the IPC crossing is paid once per batch, the
                    // fetch copies per packet/byte as before.
                    let total: usize = packets.iter().map(Packet::len).sum();
                    self.io.meter.add(
                        self.io.cost.click_fetch_per_packet * packets.len() as u64
                            + self.io.cost.click_ipc_per_packet
                            + (self.io.cost.click_fetch_per_byte * total as f64) as u64,
                    );
                    let n = packets.len();
                    let out = click.process_batch(PacketBatch::from(packets));
                    self.click_dropped += (n - out.accepted) as u64;
                    packets = out.into_first_emissions();
                }
                // Deliver into the managed network: one write per packet.
                self.io.charge_delivery(packets.len());
                self.delivered += packets.len() as u64;
                Ok(Delivery::PacketBatch {
                    session_id,
                    packets,
                })
            }
            ServerEvent::Ping {
                session_id,
                message,
            } => Ok(Delivery::Ping {
                session_id,
                message,
            }),
            ServerEvent::Disconnected { session_id } => {
                self.reassemblers.remove(&peer_id);
                Ok(Delivery::Disconnected { session_id })
            }
        }
    }

    /// Seals and fragments a packet towards a client (ingress direction).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Vpn`] for unknown sessions.
    pub fn send_to_client(
        &mut self,
        session_id: u64,
        packet: &Packet,
    ) -> Result<Vec<Vec<u8>>, EndBoxError> {
        self.io.charge_egress(1, packet.len());
        let record = self
            .vpn
            .seal_to_client(session_id, Opcode::Data, packet.bytes())?;
        Ok(self.io.fragment(&record))
    }

    /// Seals several packets towards a client as **one** `DataBatch`
    /// record (ingress direction, §IV batching), then fragments it.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Vpn`] for unknown sessions.
    pub fn send_batch_to_client(
        &mut self,
        session_id: u64,
        packets: &[Packet],
    ) -> Result<Vec<Vec<u8>>, EndBoxError> {
        let total: usize = packets.iter().map(Packet::len).sum();
        self.io.charge_egress(packets.len(), total);
        let payloads: Vec<&[u8]> = packets.iter().map(Packet::bytes).collect();
        let record = self.vpn.seal_batch_to_client(session_id, &payloads)?;
        Ok(self.io.fragment(&record))
    }

    /// Sanitises a packet arriving from *outside* the managed network:
    /// clears a spoofed `0xeb` QoS flag so external traffic cannot skip
    /// client-side Click processing (§IV-A).
    pub fn sanitize_external(&self, packet: &mut Packet) {
        sanitize_external_packet(packet);
    }

    /// Announces a configuration update (Fig. 5 steps 2–3).
    pub fn announce_config(&mut self, version: u64, grace_period_secs: u32) {
        let now_secs = self.io.now_secs();
        self.vpn
            .announce_config(version, grace_period_secs, now_secs);
    }

    /// Builds the periodic server ping for a session (Fig. 5 step 4).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Vpn`] for unknown sessions.
    pub fn make_ping(&mut self, session_id: u64) -> Result<Vec<Vec<u8>>, EndBoxError> {
        let record = self
            .vpn
            .make_ping(session_id, self.io.clock.now().as_nanos())?;
        Ok(self.io.fragment(&record))
    }

    /// Connected session ids.
    pub fn session_ids(&self) -> Vec<u64> {
        self.vpn.session_ids()
    }

    /// Connected client count.
    pub fn session_count(&self) -> usize {
        self.vpn.session_count()
    }

    /// The config version a session has proved via ping.
    pub fn client_config_version(&self, session_id: u64) -> Option<u64> {
        self.vpn
            .session(session_id)
            .map(|s| s.reported_config_version)
    }

    /// (delivered, click-dropped, rejected) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.delivered, self.click_dropped, self.rejected)
    }

    /// Reads a handler on the server-side Click instance, if any.
    pub fn server_click_handler(&self, element: &str, handler: &str) -> Option<String> {
        self.server_click.as_ref()?.read_handler(element, handler)
    }

    /// Hot-swaps the server-side Click configuration (used by the vanilla
    /// Click reconfiguration baseline of Table II).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Click`] on invalid configs or if no server-side
    /// Click exists.
    pub fn hot_swap_server_click(&mut self, config: &str) -> Result<(), EndBoxError> {
        match self.server_click.as_mut() {
            Some(router) => {
                router.hot_swap(config)?;
                Ok(())
            }
            None => Err(EndBoxError::NotReady("no server-side Click instance")),
        }
    }
}

/// The sharded multi-worker EndBox server front-end: reassembly, record
/// parsing and fragmentation stay on the front-end thread; everything
/// per-session (crypto, replay windows, policy, packet materialisation
/// from per-shard buffer pools) runs on the
/// [`ShardedVpnServer`]'s worker threads.
///
/// # Re-merge ordering guarantee
///
/// [`ShardedEndBoxServer::receive_datagrams`] returns exactly one
/// [`Delivery`] result per input datagram, **in input order**, for any
/// worker count and thread schedule; per-session record order is
/// preserved by session-id-affine routing plus per-shard FIFO (see
/// `endbox_vpn::shard`). With `workers == 1` the observable behaviour is
/// identical to [`EndBoxServer`] — property-tested in
/// `tests/shard_parity.rs`.
///
/// The sharded server intentionally has no server-side Click instance:
/// that attachment exists only for the centralised OpenVPN+Click
/// baseline, which the sharded EndBox deployment replaces.
pub struct ShardedEndBoxServer {
    vpn: ShardedVpnServer,
    reassemblers: HashMap<u64, Reassembler>,
    io: ServerIo,
    delivered: u64,
    rejected: u64,
}

impl std::fmt::Debug for ShardedEndBoxServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEndBoxServer")
            .field("workers", &self.vpn.worker_count())
            .field("sessions", &self.vpn.session_count())
            .field("delivered", &self.delivered)
            .finish()
    }
}

impl ShardedEndBoxServer {
    /// Builds the server with `workers` shard threads (minimum 1).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::NotReady`] if a server-side Click configuration is
    /// supplied (only the centralised baseline carries one).
    pub fn new(
        cfg: EndBoxServerConfig,
        workers: usize,
    ) -> Result<ShardedEndBoxServer, EndBoxError> {
        if cfg.server_click.is_some() {
            return Err(EndBoxError::NotReady(
                "sharded server has no server-side Click",
            ));
        }
        let vpn = ShardedVpnServer::new(
            cfg.handshake,
            cfg.suite,
            cfg.meter.clone(),
            cfg.cost.clone(),
            cfg.rng_seed,
            workers,
        );
        Ok(ShardedEndBoxServer {
            vpn,
            reassemblers: HashMap::new(),
            io: ServerIo::new(cfg.cost, cfg.meter, cfg.clock),
            delivered: 0,
            rejected: 0,
        })
    }

    /// Number of worker shards.
    pub fn worker_count(&self) -> usize {
        self.vpn.worker_count()
    }

    /// Receives one wire datagram (the single-datagram convenience over
    /// [`ShardedEndBoxServer::receive_datagrams`]).
    ///
    /// # Errors
    ///
    /// Every authentication/policy failure; callers drop the traffic.
    pub fn receive_datagram(
        &mut self,
        peer_id: u64,
        datagram: &[u8],
    ) -> Result<Delivery, EndBoxError> {
        self.receive_datagrams(&[(peer_id, datagram)])
            .pop()
            .expect("one result for one datagram")
    }

    /// Receives a whole batch of wire datagrams — from any mix of clients
    /// — in one sharded dispatch, returning one result per datagram in
    /// input order (the re-merge guarantee above).
    pub fn receive_datagrams(
        &mut self,
        datagrams: &[(u64, &[u8])],
    ) -> Vec<Result<Delivery, EndBoxError>> {
        let n = datagrams.len();
        let mut results: Vec<Option<Result<Delivery, EndBoxError>>> =
            (0..n).map(|_| None).collect();
        // Phase 1 (front-end): per-peer reassembly and record parsing —
        // untrusted framing, no session state.
        let mut records = Vec::new();
        let mut origins = Vec::new();
        for (i, (peer_id, datagram)) in datagrams.iter().enumerate() {
            self.io.charge_rx_fragment();
            let reasm = self.reassemblers.entry(*peer_id).or_default();
            match reasm.push(datagram) {
                Err(e) => {
                    self.rejected += 1;
                    results[i] = Some(Err(EndBoxError::Vpn(e)));
                }
                Ok(None) => results[i] = Some(Ok(Delivery::Pending)),
                Ok(Some(bytes)) => match Record::from_bytes(&bytes) {
                    Err(e) => results[i] = Some(Err(EndBoxError::Vpn(e))),
                    Ok(record) => {
                        let barrier = record.opcode == Opcode::Disconnect;
                        records.push(record);
                        origins.push(i);
                        if barrier {
                            // A *successful* disconnect tears down the
                            // peer's reassembler; that must happen before
                            // any later datagram of the same peer is
                            // pushed into it, exactly as on the
                            // single-threaded server. Dispatch everything
                            // queued so far, then resume reassembly.
                            self.dispatch(&mut records, &mut origins, datagrams, &mut results);
                        }
                    }
                },
            }
        }
        self.dispatch(&mut records, &mut origins, datagrams, &mut results);
        results
            .into_iter()
            .map(|r| r.expect("every datagram produces a result"))
            .collect()
    }

    /// Phases 2+3: one sharded dispatch for the queued records, then the
    /// deterministic re-merge back into input order.
    fn dispatch(
        &mut self,
        records: &mut Vec<Record>,
        origins: &mut Vec<usize>,
        datagrams: &[(u64, &[u8])],
        results: &mut [Option<Result<Delivery, EndBoxError>>],
    ) {
        if records.is_empty() {
            return;
        }
        let now_secs = self.io.now_secs();
        let events = self.vpn.handle_records(std::mem::take(records), now_secs);
        for (slot, event) in origins.drain(..).zip(events) {
            let peer_id = datagrams[slot].0;
            results[slot] = Some(self.finish_event(event, peer_id));
        }
    }

    fn finish_event(
        &mut self,
        event: Result<ShardEvent, VpnError>,
        peer_id: u64,
    ) -> Result<Delivery, EndBoxError> {
        let event = event.map_err(|e| {
            self.rejected += 1;
            EndBoxError::Vpn(e)
        })?;
        match event {
            ShardEvent::Established {
                session_id,
                response,
                ..
            } => {
                let datagrams = self.io.fragment(&response);
                Ok(Delivery::Established {
                    session_id,
                    response: datagrams,
                })
            }
            ShardEvent::Packet { session_id, packet } => {
                self.io.charge_delivery(1);
                self.delivered += 1;
                Ok(Delivery::Packet { session_id, packet })
            }
            ShardEvent::Batch { session_id, batch } => {
                self.io.charge_delivery(batch.len());
                self.delivered += batch.len() as u64;
                Ok(Delivery::PacketBatch {
                    session_id,
                    packets: batch.into_vec(),
                })
            }
            ShardEvent::Ping {
                session_id,
                message,
            } => Ok(Delivery::Ping {
                session_id,
                message,
            }),
            ShardEvent::Disconnected { session_id } => {
                self.reassemblers.remove(&peer_id);
                Ok(Delivery::Disconnected { session_id })
            }
        }
    }

    /// Seals and fragments a packet towards a client (ingress direction).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Vpn`] for unknown sessions.
    pub fn send_to_client(
        &mut self,
        session_id: u64,
        packet: &Packet,
    ) -> Result<Vec<Vec<u8>>, EndBoxError> {
        self.io.charge_egress(1, packet.len());
        let record = self
            .vpn
            .seal_to_client(session_id, Opcode::Data, packet.bytes().to_vec())?;
        Ok(self.io.fragment(&record))
    }

    /// Seals several packets towards a client as **one** `DataBatch`
    /// record, then fragments it.
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Vpn`] for unknown sessions.
    pub fn send_batch_to_client(
        &mut self,
        session_id: u64,
        packets: &[Packet],
    ) -> Result<Vec<Vec<u8>>, EndBoxError> {
        let total: usize = packets.iter().map(Packet::len).sum();
        self.io.charge_egress(packets.len(), total);
        let payloads: Vec<Vec<u8>> = packets.iter().map(|p| p.bytes().to_vec()).collect();
        let record = self.vpn.seal_batch_to_client(session_id, payloads)?;
        Ok(self.io.fragment(&record))
    }

    /// Sanitises a packet arriving from *outside* the managed network
    /// (see [`EndBoxServer::sanitize_external`]).
    pub fn sanitize_external(&self, packet: &mut Packet) {
        sanitize_external_packet(packet);
    }

    /// Announces a configuration update (Fig. 5 steps 2–3), replicated to
    /// every shard.
    pub fn announce_config(&mut self, version: u64, grace_period_secs: u32) {
        let now_secs = self.io.now_secs();
        self.vpn
            .announce_config(version, grace_period_secs, now_secs);
    }

    /// Builds the periodic server ping for a session (Fig. 5 step 4).
    ///
    /// # Errors
    ///
    /// [`EndBoxError::Vpn`] for unknown sessions.
    pub fn make_ping(&mut self, session_id: u64) -> Result<Vec<Vec<u8>>, EndBoxError> {
        let record = self
            .vpn
            .make_ping(session_id, self.io.clock.now().as_nanos())?;
        Ok(self.io.fragment(&record))
    }

    /// Connected session ids.
    pub fn session_ids(&self) -> Vec<u64> {
        self.vpn.session_ids()
    }

    /// Connected client count.
    pub fn session_count(&self) -> usize {
        self.vpn.session_count()
    }

    /// The config version a session has proved via ping (a cross-shard
    /// query, hence `&mut`).
    pub fn client_config_version(&mut self, session_id: u64) -> Option<u64> {
        self.vpn
            .session_snapshot(session_id)
            .map(|s| s.reported_config_version)
    }

    /// (delivered, rejected) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.delivered, self.rejected)
    }
}
