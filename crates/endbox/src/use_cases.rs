//! The five evaluation middlebox functions of §V-B, as Click
//! configurations.

use endbox_click::elements::evaluation_rules;

/// A middlebox function from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UseCase {
    /// Forwarding baseline ("NOP").
    Nop,
    /// Load balancing via `RoundRobinSwitch` ("LB").
    LoadBalancer,
    /// IP firewall with 16 non-matching rules ("FW").
    Firewall,
    /// Intrusion detection with 377 community rules ("IDPS").
    Idps,
    /// DDoS prevention: IDS + trusted rate limiting ("DDoS").
    DdosPrevention,
}

impl UseCase {
    /// All five, in the paper's order.
    pub fn all() -> [UseCase; 5] {
        [
            UseCase::Nop,
            UseCase::LoadBalancer,
            UseCase::Firewall,
            UseCase::Idps,
            UseCase::DdosPrevention,
        ]
    }

    /// The paper's abbreviation.
    pub fn name(&self) -> &'static str {
        match self {
            UseCase::Nop => "NOP",
            UseCase::LoadBalancer => "LB",
            UseCase::Firewall => "FW",
            UseCase::Idps => "IDPS",
            UseCase::DdosPrevention => "DDoS",
        }
    }

    /// The client-side Click configuration implementing this function
    /// (`TrustedSplitter` samples trusted time; the paper sets the
    /// interval to 500 000 packets).
    pub fn click_config(&self) -> String {
        self.click_config_with(SplitterFlavor::Trusted)
    }

    /// Server-side variant: the DDoS splitter reads time via syscalls
    /// (`UntrustedSplitter`, §V-B).
    pub fn server_click_config(&self) -> String {
        self.click_config_with(SplitterFlavor::Untrusted)
    }

    fn click_config_with(&self, splitter: SplitterFlavor) -> String {
        match self {
            UseCase::Nop => "FromDevice(tun0) -> ToDevice(tun0);".to_string(),
            UseCase::LoadBalancer => {
                // Round-robin across two uplinks; both accept.
                "FromDevice(tun0) -> rr :: RoundRobinSwitch(2);\n\
                 rr[0] -> ToDevice(tun0);\n\
                 rr[1] -> ToDevice(tun1);"
                    .to_string()
            }
            UseCase::Firewall => {
                let rules = evaluation_rules().join(", ");
                format!(
                    "FromDevice(tun0) -> fw :: IPFilter({rules}) -> ToDevice(tun0);\n\
                     fw[1] -> Discard;"
                )
            }
            UseCase::Idps => "FromDevice(tun0) \
                              -> ids :: IDSMatcher(COMMUNITY 377) \
                              -> ToDevice(tun0);\n\
                              ids[1] -> Discard;"
                .to_string(),
            UseCase::DdosPrevention => {
                let splitter_class = match splitter {
                    SplitterFlavor::Trusted => "TrustedSplitter",
                    SplitterFlavor::Untrusted => "UntrustedSplitter",
                };
                let sample = match splitter {
                    SplitterFlavor::Trusted => 500_000,
                    SplitterFlavor::Untrusted => 1,
                };
                format!(
                    "FromDevice(tun0) \
                     -> ids :: IDSMatcher(COMMUNITY 377) \
                     -> shaper :: {splitter_class}(RATE 10000000000, SAMPLE {sample}) \
                     -> ToDevice(tun0);\n\
                     ids[1] -> Discard;\n\
                     shaper[1] -> Discard;"
                )
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum SplitterFlavor {
    Trusted,
    Untrusted,
}

impl std::fmt::Display for UseCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use endbox_click::element::ElementEnv;
    use endbox_click::Router;
    use endbox_netsim::Packet;
    use std::net::Ipv4Addr;

    fn pkt() -> Packet {
        Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            40000,
            5001,
            0,
            b"benignpayload",
        )
    }

    #[test]
    fn all_configs_parse_and_forward_benign_traffic() {
        for uc in UseCase::all() {
            let mut router =
                Router::from_config(&uc.click_config(), ElementEnv::default()).unwrap();
            let out = router.process(pkt());
            assert!(out.accepted, "{uc} must forward benign traffic");
        }
    }

    #[test]
    fn server_variants_parse() {
        for uc in UseCase::all() {
            Router::from_config(&uc.server_click_config(), ElementEnv::default()).unwrap();
        }
    }

    #[test]
    fn firewall_has_sixteen_rules() {
        let mut router =
            Router::from_config(&UseCase::Firewall.click_config(), ElementEnv::default()).unwrap();
        assert_eq!(router.read_handler("fw", "rules").as_deref(), Some("16"));
        router.process(pkt());
        assert_eq!(router.read_handler("fw", "allowed").as_deref(), Some("1"));
    }

    #[test]
    fn idps_loads_377_rules() {
        let mut router =
            Router::from_config(&UseCase::Idps.click_config(), ElementEnv::default()).unwrap();
        assert_eq!(router.read_handler("ids", "rules").as_deref(), Some("377"));
        router.process(pkt());
        assert_eq!(router.read_handler("ids", "alerts").as_deref(), Some("0"));
    }

    #[test]
    fn idps_drops_malicious_traffic() {
        let mut router =
            Router::from_config(&UseCase::Idps.click_config(), ElementEnv::default()).unwrap();
        // Rule 0 of the synthetic set is sid 1000000, alert, content
        // EB-MAL-0000; rule 11 (i%11==0) variants are drop rules.
        let evil = Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            40000,
            80,
            0,
            b"xx EB-MAL-0000 xx",
        );
        let out = router.process(evil);
        // sid 1000000 is a drop rule (0 % 11 == 0): packet must not pass.
        assert!(!out.accepted);
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = UseCase::all().iter().map(|u| u.name()).collect();
        assert_eq!(names, vec!["NOP", "LB", "FW", "IDPS", "DDoS"]);
    }
}
