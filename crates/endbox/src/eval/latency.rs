//! Latency experiments: Fig. 6 (page-load CDF), Fig. 7 (redirection
//! RTTs), Table I (HTTPS GET latency), Fig. 11 (reconfiguration impact).

use super::deploy::{measure_charge, Deployment};
use crate::use_cases::UseCase;
use endbox_netsim::http::{PageCatalogue, PageLoadModel};
use endbox_netsim::pipeline::{unloaded_latency, Leg};
use endbox_netsim::stats::cdf_points;
use endbox_netsim::time::SimDuration;
use rand::SeedableRng;

const CLASS_A_HZ: u64 = 3_500_000_000;
const CLASS_B_HZ: u64 = 3_300_000_000;

/// Baseline one-way Internet latency to the paper's "fixed location"
/// (fits the 10.8 ms direct ping RTT).
const INTERNET_ONE_WAY: SimDuration = SimDuration(5_400_000);
/// Extra one-way path cost of hairpinning through the local VPN server.
const LOCAL_DETOUR_ONE_WAY: SimDuration = SimDuration(200_000);
/// Extra one-way latency to the AWS eu-central region (Fig. 7).
const EU_CENTRAL_ONE_WAY: SimDuration = SimDuration(3_100_000);
/// Extra one-way latency to the AWS us-east region (Fig. 7).
const US_EAST_ONE_WAY: SimDuration = SimDuration(95_550_000);

/// A redirection method from Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Redirection {
    /// Direct connection, no VPN or middlebox.
    None,
    /// Local VPN server + server-side Click.
    Local,
    /// EndBox (client-side middlebox, local VPN server).
    EndBoxSgx,
    /// Cloud middlebox in AWS eu-central.
    AwsEuCentral,
    /// Cloud middlebox in AWS us-east.
    AwsUsEast,
}

impl Redirection {
    /// All five methods in the paper's order.
    pub fn all() -> [Redirection; 5] {
        [
            Redirection::None,
            Redirection::Local,
            Redirection::EndBoxSgx,
            Redirection::AwsEuCentral,
            Redirection::AwsUsEast,
        ]
    }

    /// Label as in Fig. 7.
    pub fn label(&self) -> &'static str {
        match self {
            Redirection::None => "no redirection",
            Redirection::Local => "local redirection",
            Redirection::EndBoxSgx => "EndBox SGX",
            Redirection::AwsEuCentral => "AWS eu-central",
            Redirection::AwsUsEast => "AWS us-east",
        }
    }
}

/// Fig. 7: the ping RTT for one redirection method. VPN/middlebox
/// processing cycles come from the measured per-packet charges of the real
/// stack (64-byte pings).
pub fn ping_rtt(method: Redirection) -> SimDuration {
    let mut legs: Vec<Leg> = Vec::new();
    // Request + response over the Internet.
    legs.push(Leg::Fixed(INTERNET_ONE_WAY));
    legs.push(Leg::Fixed(INTERNET_ONE_WAY));
    match method {
        Redirection::None => {}
        Redirection::Local | Redirection::EndBoxSgx => {
            let deployment = match method {
                Redirection::Local => Deployment::OpenVpnClick(UseCase::Nop),
                _ => Deployment::EndBoxSgx(UseCase::Nop),
            };
            let charge = measure_charge(deployment, 64, 8);
            for _ in 0..2 {
                legs.push(Leg::Fixed(LOCAL_DETOUR_ONE_WAY));
                legs.push(Leg::Cycles {
                    cycles: charge.client_cycles,
                    freq_hz: CLASS_A_HZ,
                });
                legs.push(Leg::Cycles {
                    cycles: charge.server_cycles,
                    freq_hz: CLASS_B_HZ,
                });
            }
        }
        Redirection::AwsEuCentral | Redirection::AwsUsEast => {
            let extra = if method == Redirection::AwsEuCentral {
                EU_CENTRAL_ONE_WAY
            } else {
                US_EAST_ONE_WAY
            };
            let charge = measure_charge(Deployment::OpenVpnClick(UseCase::Nop), 64, 8);
            for _ in 0..2 {
                legs.push(Leg::Fixed(extra));
                legs.push(Leg::Cycles {
                    cycles: charge.client_cycles,
                    freq_hz: CLASS_A_HZ,
                });
                legs.push(Leg::Cycles {
                    cycles: charge.server_cycles,
                    freq_hz: CLASS_B_HZ,
                });
            }
        }
    }
    unloaded_latency(&legs)
}

/// Fig. 7 as (label, RTT ms) rows.
pub fn fig7() -> Vec<(&'static str, f64)> {
    Redirection::all()
        .into_iter()
        .map(|m| (m.label(), ping_rtt(m).as_millis_f64()))
        .collect()
}

/// A CDF as `(value, cumulative fraction)` points.
pub type Cdf = Vec<(f64, f64)>;

/// Fig. 6: page-load-time CDFs (seconds, fraction) for direct and
/// EndBox-tunnelled browsing over the synthetic Alexa-like catalogue.
pub fn fig6(n_pages: usize) -> (Cdf, Cdf) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xa1e8a);
    let catalogue = PageCatalogue::synthetic(n_pages, &mut rng);

    // Direct browsing RTT vs the same RTT plus EndBox's per-packet
    // processing (measured on the real stack).
    let base_rtt = SimDuration::from_millis(30);
    let charge = measure_charge(Deployment::EndBoxSgx(UseCase::Nop), 1_024, 8);
    let endbox_extra = SimDuration::from_cycles(charge.client_cycles, CLASS_A_HZ)
        + SimDuration::from_cycles(charge.server_cycles, CLASS_B_HZ);
    let endbox_rtt = base_rtt + endbox_extra + endbox_extra; // both directions

    let direct_model = PageLoadModel::broadband(base_rtt);
    let endbox_model = PageLoadModel::broadband(endbox_rtt);

    let direct: Vec<f64> = catalogue
        .pages()
        .iter()
        .map(|p| direct_model.load_time(p).as_secs_f64())
        .collect();
    let tunnelled: Vec<f64> = catalogue
        .pages()
        .iter()
        .map(|p| endbox_model.load_time(p).as_secs_f64())
        .collect();
    (cdf_points(&tunnelled, 100), cdf_points(&direct, 100))
}

/// One Table I row.
#[derive(Debug, Clone, PartialEq)]
pub struct HttpsLatencyRow {
    /// Response size in bytes.
    pub response_bytes: usize,
    /// EndBox with key forwarding and in-enclave decryption (ms).
    pub with_decryption_ms: f64,
    /// EndBox with the custom OpenSSL but no decryption (ms).
    pub without_decryption_ms: f64,
    /// Vanilla OpenSSL baseline (ms).
    pub vanilla_ms: f64,
}

/// Table I: HTTPS GET latency model. The baseline fits the paper's
/// vanilla column (1.00 ms at 4 KB, 1.70 ms at 32 KB: a 0.9 ms fixed
/// HTTPS/userspace cost plus ≈24.4 ns/B); the custom-OpenSSL and
/// decryption deltas are computed from the cost model (key-forwarding
/// notification + per-byte in-enclave CTR decryption).
pub fn table1() -> Vec<HttpsLatencyRow> {
    let cost = endbox_netsim::CostModel::calibrated();
    [4_096usize, 16_384, 32_768]
        .into_iter()
        .map(|size| {
            let base_ns = 900_000.0 + 24.4 * size as f64;
            // Key forwarding: one management-interface message + ecall per
            // request (amortised handshake share).
            let keyfwd_ns = (cost.ecall_hw as f64 + 120_000.0) / CLASS_A_HZ as f64 * 1e9;
            // In-enclave decryption: partition copy + CTR over the
            // response + IDS-visible plaintext handling.
            let decrypt_cycles = cost.partition_per_packet as f64
                + (cost.cbc_per_byte + cost.partition_per_byte) * size as f64;
            let decrypt_ns = decrypt_cycles / CLASS_A_HZ as f64 * 1e9;
            HttpsLatencyRow {
                response_bytes: size,
                vanilla_ms: base_ns / 1e6,
                without_decryption_ms: (base_ns + keyfwd_ns) / 1e6,
                with_decryption_ms: (base_ns + keyfwd_ns + decrypt_ns) / 1e6,
            }
        })
        .collect()
}

/// One Fig. 11 sample: ping at `t_ms` (relative to the reconfiguration at
/// 0), `None` = lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PingSample {
    /// Milliseconds relative to the reconfiguration instant.
    pub t_ms: f64,
    /// Observed RTT in ms; `None` if the ping was lost.
    pub rtt_ms: Option<f64>,
}

/// Fig. 11: ping latency around a configuration update (10 pings/s, FW
/// use case). The router blocks for the duration of the hot swap; the
/// ping in flight at that moment is lost — exactly one for both systems.
pub fn fig11(endbox: bool) -> Vec<PingSample> {
    let cost = endbox_netsim::CostModel::calibrated();
    let charge = if endbox {
        measure_charge(Deployment::EndBoxSgx(UseCase::Firewall), 64, 8)
    } else {
        measure_charge(Deployment::OpenVpnClick(UseCase::Firewall), 64, 8)
    };
    let base_rtt_ms = unloaded_latency(&[
        Leg::Cycles {
            cycles: charge.client_cycles,
            freq_hz: CLASS_A_HZ,
        },
        Leg::Cycles {
            cycles: charge.server_cycles,
            freq_hz: CLASS_B_HZ,
        },
        Leg::Wire {
            bytes: 150,
            rate_bps: 10_000_000_000,
            delay: SimDuration::from_micros(30),
        },
        Leg::Cycles {
            cycles: charge.server_cycles,
            freq_hz: CLASS_B_HZ,
        },
        Leg::Cycles {
            cycles: charge.client_cycles,
            freq_hz: CLASS_A_HZ,
        },
        Leg::Wire {
            bytes: 150,
            rate_bps: 10_000_000_000,
            delay: SimDuration::from_micros(30),
        },
    ])
    .as_millis_f64();

    // Hot-swap outage window (Table II): EndBox needs no device setup.
    let swap_cycles = cost.hotswap_base
        + 4 * cost.element_instantiate
        + if endbox { 0 } else { cost.device_setup };
    let freq = if endbox { CLASS_A_HZ } else { CLASS_B_HZ };
    let outage_ms = swap_cycles as f64 / freq as f64 * 1e3;

    // Pings every 100 ms from -2 s to +2 s; reconfiguration at t = 0.
    (-20..=20)
        .map(|i| {
            let t_ms = i as f64 * 100.0;
            let lost = t_ms >= 0.0 && t_ms < outage_ms;
            PingSample {
                t_ms,
                rtt_ms: (!lost).then_some(base_rtt_ms),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_ordering_matches_paper() {
        let rtts = fig7();
        let get = |label: &str| rtts.iter().find(|(l, _)| *l == label).unwrap().1;
        let none = get("no redirection");
        let local = get("local redirection");
        let endbox = get("EndBox SGX");
        let eu = get("AWS eu-central");
        let us = get("AWS us-east");
        assert!(none < local && local <= endbox, "{none} {local} {endbox}");
        assert!(endbox < eu && eu < us);
        // Paper: 10.8 / 11.3 / 11.5 / 17.4 / 202.3 ms.
        assert!((none - 10.8).abs() < 0.3, "none={none}");
        assert!((endbox - 11.5).abs() < 0.7, "endbox={endbox}");
        assert!((eu - 17.4).abs() < 1.2, "eu={eu}");
        assert!((us - 202.3).abs() < 3.0, "us={us}");
        // EndBox's overhead over direct is small (paper: 6%).
        assert!((endbox - none) / none < 0.10);
    }

    #[test]
    fn fig6_cdfs_nearly_identical() {
        let (endbox, direct) = fig6(200);
        assert_eq!(endbox.len(), direct.len());
        // Median load times within 2% of each other.
        let median = |cdf: &[(f64, f64)]| cdf[cdf.len() / 2].0;
        let m_e = median(&endbox);
        let m_d = median(&direct);
        assert!((m_e - m_d).abs() / m_d < 0.02, "endbox {m_e} direct {m_d}");
        assert!(m_e >= m_d, "tunnelling never speeds pages up");
    }

    #[test]
    fn table1_overhead_below_eight_percent() {
        for row in table1() {
            let overhead = (row.with_decryption_ms - row.vanilla_ms) / row.vanilla_ms;
            assert!(overhead < 0.08, "paper: <8% overhead; got {overhead:.3}");
            assert!(row.without_decryption_ms < row.with_decryption_ms);
            assert!(row.vanilla_ms < row.without_decryption_ms);
        }
        // Absolute values near the paper's Table I.
        let rows = table1();
        assert!((rows[0].vanilla_ms - 1.00).abs() < 0.05);
        assert!((rows[2].vanilla_ms - 1.70).abs() < 0.05);
    }

    #[test]
    fn fig11_loses_exactly_one_ping_for_both_systems() {
        for endbox in [true, false] {
            let series = fig11(endbox);
            let lost = series.iter().filter(|s| s.rtt_ms.is_none()).count();
            assert_eq!(lost, 1, "endbox={endbox}");
            // The lost ping is the one at t=0.
            assert!(series.iter().any(|s| s.t_ms == 0.0 && s.rtt_ms.is_none()));
        }
    }
}
