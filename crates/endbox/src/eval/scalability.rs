//! Fig. 10: server-side aggregate throughput and CPU usage as the number
//! of clients grows (200 Mbps offered per client, 1 500 B packets) — plus
//! the sharded multi-worker extension: the same sweep on the batched
//! EndBox-SGX path with the server running N worker shards instead of one
//! process per client.

use super::deploy::{measure_charge, measure_charge_sharded, Deployment};
use crate::use_cases::UseCase;
use endbox_netsim::net::TransportKind;
use endbox_netsim::pipeline::PacketCharge;
use endbox_netsim::pipeline::{run_scalability, ScalabilityConfig, ScalabilityResult};
use endbox_netsim::resource::MachineSpec;
use endbox_netsim::time::SimDuration;

/// One scalability data point.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityPoint {
    /// Deployment measured.
    pub deployment: String,
    /// Connected clients.
    pub clients: usize,
    /// Aggregate server-side goodput in Gbps.
    pub gbps: f64,
    /// Server CPU utilisation in [0, 1].
    pub server_cpu: f64,
}

/// Client counts plotted in Fig. 10.
pub fn client_counts() -> [usize; 9] {
    [1, 5, 10, 15, 20, 30, 40, 50, 60]
}

/// Scheduler-pressure penalty: the OpenVPN+Click baseline crosses two
/// processes per packet, and once the run queue exceeds the hardware
/// threads, every crossing pays wake-up latency and cache pollution that
/// grows with the number of runnable processes. This is what makes the
/// paper's OpenVPN+Click curve *decrease* beyond its 2.5 Gbps peak while
/// vanilla OpenVPN (no per-packet IPC) plateaus flat (§V-E, Fig. 10a).
const SCHED_PENALTY_PER_EXCESS_PROC: f64 = 0.015;

/// Adjusts a measured charge for the process pressure at `n_clients`.
fn charge_at_scale(
    deployment: Deployment,
    base: PacketCharge,
    vanilla_server_cycles: u64,
    n_clients: usize,
    hw_threads: usize,
) -> PacketCharge {
    let mut charge = base;
    if matches!(deployment, Deployment::OpenVpnClick(_)) {
        let procs = n_clients * deployment.server_procs_per_client();
        let excess = procs.saturating_sub(hw_threads) as f64;
        // The Click-side share of the per-packet work (fetch + IPC +
        // elements) is what the scheduler pressure amplifies.
        let click_side = base.server_cycles.saturating_sub(vanilla_server_cycles);
        charge.server_cycles = base.server_cycles
            + (click_side as f64 * SCHED_PENALTY_PER_EXCESS_PROC * excess) as u64;
    }
    charge
}

/// Runs the sweep for one deployment.
pub fn sweep(deployment: Deployment) -> Vec<ScalabilityPoint> {
    let base = measure_charge(deployment, 1_500, 16);
    let vanilla_server = if matches!(deployment, Deployment::OpenVpnClick(_)) {
        measure_charge(Deployment::VanillaOpenVpn, 1_500, 16).server_cycles
    } else {
        base.server_cycles
    };
    let hw_threads = MachineSpec::class_b().cores * 2;
    client_counts()
        .into_iter()
        .map(|n| {
            let charge = charge_at_scale(deployment, base, vanilla_server, n, hw_threads);
            let cfg = ScalabilityConfig {
                n_clients: n,
                per_client_bps: 200_000_000,
                payload_bytes: 1_500,
                duration: SimDuration::from_millis(20),
                n_client_machines: 5,
                contention_per_excess_process: 0.0,
                server_procs_per_client: deployment.server_procs_per_client(),
                server_single_process: deployment.server_single_process(),
                server_worker_shards: None,
                client_load_weights: None,
                load_aware_dispatch: false,
                rx_shards: None,
                rx_remap: false,
                async_front_end: None,
                syscall_batch: None,
            };
            let r: ScalabilityResult =
                run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), charge, &cfg);
            ScalabilityPoint {
                deployment: deployment.name(),
                clients: n,
                gbps: r.gbps,
                server_cpu: r.server_cpu,
            }
        })
        .collect()
}

/// Fig. 10a: the four deployments with the NOP function.
pub fn fig10a() -> Vec<ScalabilityPoint> {
    let mut out = Vec::new();
    for d in [
        Deployment::VanillaOpenVpn,
        Deployment::EndBoxSgx(UseCase::Nop),
        Deployment::VanillaClick(UseCase::Nop),
        Deployment::OpenVpnClick(UseCase::Nop),
    ] {
        out.extend(sweep(d));
    }
    out
}

/// Fig. 10b: the five use cases on EndBox SGX and OpenVPN+Click.
pub fn fig10b() -> Vec<ScalabilityPoint> {
    let mut out = Vec::new();
    for uc in UseCase::all() {
        out.extend(sweep(Deployment::EndBoxSgx(uc)));
        out.extend(sweep(Deployment::OpenVpnClick(uc)));
    }
    out
}

/// One data point of the sharded multi-worker sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedScalabilityPoint {
    /// Deployment measured (e.g. `EndBox SGX[NOP] sharded`).
    pub deployment: String,
    /// Connected clients.
    pub clients: usize,
    /// Server worker shards.
    pub workers: usize,
    /// Packets coalesced per sealed record.
    pub batch: usize,
    /// Aggregate server-side goodput in Gbps.
    pub gbps: f64,
    /// Aggregate server-side packet rate in Mpps.
    pub mpps: f64,
    /// Server CPU utilisation in [0, 1].
    pub server_cpu: f64,
}

/// Worker-shard counts swept by the sharded Fig. 10 extension.
pub fn worker_counts() -> [usize; 4] {
    [1, 2, 4, 8]
}

/// Runs the sharded sweep for one use case: per-packet charges are
/// measured on the **real** sharded stack
/// ([`measure_charge_sharded`]: N worker threads, multi-client batched
/// dispatch, per-shard pools), then replayed through the timing layer
/// with the server modelled as one process with `workers` shard flows.
pub fn sweep_sharded(
    use_case: UseCase,
    workers: usize,
    batch: usize,
    clients: &[usize],
) -> Vec<ShardedScalabilityPoint> {
    let charge = measure_charge_sharded(use_case, 1_500, 8, batch, workers);
    clients
        .iter()
        .map(|&n| {
            let cfg = ScalabilityConfig {
                n_clients: n,
                per_client_bps: 200_000_000,
                payload_bytes: 1_500,
                duration: SimDuration::from_millis(20),
                n_client_machines: 5,
                contention_per_excess_process: 0.0,
                server_procs_per_client: 1,
                server_single_process: false,
                server_worker_shards: Some(workers),
                client_load_weights: None,
                load_aware_dispatch: false,
                rx_shards: None,
                rx_remap: false,
                async_front_end: None,
                syscall_batch: None,
            };
            let r: ScalabilityResult =
                run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), charge, &cfg);
            ShardedScalabilityPoint {
                deployment: format!("{} sharded", Deployment::EndBoxSgx(use_case).name()),
                clients: n,
                workers,
                batch,
                gbps: r.gbps,
                mpps: r.gbps * 1e9 / (charge.payload_bytes as f64 * 8.0) / 1e6,
                server_cpu: r.server_cpu,
            }
        })
        .collect()
}

/// The sharded Fig. 10 extension: the batched EndBox-SGX path (NOP use
/// case) for every worker count in [`worker_counts`].
pub fn fig10_sharded(batch: usize, clients: &[usize]) -> Vec<ShardedScalabilityPoint> {
    let mut out = Vec::new();
    for workers in worker_counts() {
        out.extend(sweep_sharded(UseCase::Nop, workers, batch, clients));
    }
    out
}

/// One data point of the heavy-tailed load-mix sweep: the same sharded
/// stack, driven by a skewed per-client offered load, under either
/// dispatch policy.
#[derive(Debug, Clone, PartialEq)]
pub struct HeavyTailPoint {
    /// Dispatch policy (`"static"` or `"load-aware"`).
    pub policy: String,
    /// Connected clients.
    pub clients: usize,
    /// Server worker shards.
    pub workers: usize,
    /// Packets coalesced per sealed record.
    pub batch: usize,
    /// Aggregate server-side goodput in Gbps.
    pub gbps: f64,
    /// Aggregate server-side packet rate in Mpps.
    pub mpps: f64,
    /// Server CPU utilisation in [0, 1].
    pub server_cpu: f64,
    /// Session migrations the dispatcher performed in the window.
    pub migrations: u64,
}

/// The heavy-tailed per-client load mix: a Zipf(α = 1.2) weight per rank,
/// with ranks assigned to clients by a fixed permutation that models an
/// arbitrary connect order. With the default stride the four heaviest
/// sessions land on session ids congruent modulo 4 — exactly the
/// collision static `(sid-1) mod N` affinity cannot escape, and the case
/// the load-aware dispatcher is built for. Aggregate offered load is
/// normalised by the timing layer, so the mix is directly comparable to
/// the uniform sweep.
pub fn heavy_tail_weights(n_clients: usize) -> Vec<f64> {
    const ALPHA: f64 = 1.2;
    // The four heaviest ranks land on clients 0, 4, 8, 12 — session ids
    // 1, 5, 9, 13, all homed on shard 0 at 4 workers.
    let elephants: Vec<usize> = (0..4).map(|r| 4 * r).filter(|&c| c < n_clients).collect();
    let mut order = elephants.clone();
    order.extend((0..n_clients).filter(|c| !elephants.contains(c)));
    let mut weights = vec![0.0; n_clients];
    for (rank, &client) in order.iter().enumerate() {
        weights[client] = 1.0 / ((rank + 1) as f64).powf(ALPHA);
    }
    weights
}

/// Runs the heavy-tailed sweep for one policy: per-packet charges are
/// measured on the **real** sharded stack running the matching dispatch
/// policy and a skewed multi-client batch mix
/// ([`super::deploy::measure_charge_sharded_mix`]), then replayed through
/// the timing layer with the same Zipf load mix and dispatcher model.
pub fn sweep_heavy_tail(
    use_case: UseCase,
    workers: usize,
    batch: usize,
    clients: &[usize],
    load_aware: bool,
) -> Vec<HeavyTailPoint> {
    let policy = if load_aware {
        endbox_vpn::shard::DispatchPolicy::load_aware()
    } else {
        endbox_vpn::shard::DispatchPolicy::Static
    };
    let charge =
        super::deploy::measure_charge_sharded_mix(use_case, 1_500, 8, batch, workers, policy);
    clients
        .iter()
        .map(|&n| {
            let cfg = ScalabilityConfig {
                n_clients: n,
                per_client_bps: 200_000_000,
                payload_bytes: 1_500,
                duration: SimDuration::from_millis(20),
                n_client_machines: 5,
                contention_per_excess_process: 0.0,
                server_procs_per_client: 1,
                server_single_process: false,
                server_worker_shards: Some(workers),
                client_load_weights: Some(heavy_tail_weights(n)),
                load_aware_dispatch: load_aware,
                rx_shards: None,
                rx_remap: false,
                async_front_end: None,
                syscall_batch: None,
            };
            let r: ScalabilityResult =
                run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), charge, &cfg);
            HeavyTailPoint {
                policy: if load_aware { "load-aware" } else { "static" }.to_string(),
                clients: n,
                workers,
                batch,
                gbps: r.gbps,
                mpps: r.gbps * 1e9 / (charge.payload_bytes as f64 * 8.0) / 1e6,
                server_cpu: r.server_cpu,
                migrations: r.migrations,
            }
        })
        .collect()
}

/// The heavy-tail dispatcher comparison: static affinity vs load-aware
/// dispatch on the batched EndBox-SGX path (NOP use case) at 4 worker
/// shards, across `clients`.
pub fn fig_heavy_tail(batch: usize, clients: &[usize]) -> Vec<HeavyTailPoint> {
    let mut out = Vec::new();
    for load_aware in [false, true] {
        out.extend(sweep_heavy_tail(
            UseCase::Nop,
            4,
            batch,
            clients,
            load_aware,
        ));
    }
    out
}

/// One data point of the RX-sharding sweep: the sharded stack under the
/// many-peer **small-record** mix (no record coalescing, so per-datagram
/// framing dominates), with the RX front-end running `rx_shards` framing
/// threads.
#[derive(Debug, Clone, PartialEq)]
pub struct RxScalingPoint {
    /// Connected clients (peers).
    pub clients: usize,
    /// RX framing shards.
    pub rx_shards: usize,
    /// Server worker shards.
    pub workers: usize,
    /// Aggregate server-side goodput in Gbps.
    pub gbps: f64,
    /// Aggregate server-side packet rate in Mpps.
    pub mpps: f64,
    /// Server CPU utilisation in [0, 1].
    pub server_cpu: f64,
}

/// RX-shard counts swept by the RX-scaling experiment.
pub fn rx_shard_counts() -> [usize; 3] {
    [1, 2, 4]
}

/// Payload size of the RX-bound small-record mix (bytes). Small records
/// mean one wire datagram per record, so the per-packet framing share is
/// maximal — exactly the regime where the single RX thread of the PR 3
/// pipeline became the serial bottleneck.
pub const RX_MIX_PAYLOAD: usize = 256;

/// Offered load per peer in the RX sweep (bits/s). Many cheap peers, not
/// a few elephants: the aggregate packet rate is what saturates a framing
/// lane.
pub const RX_MIX_PER_CLIENT_BPS: u64 = 20_000_000;

/// Runs the RX-sharding sweep: per-packet charges are measured on the
/// **real** sharded stack with an `rx_shards`-wide [`crate::server::RxShardPool`]
/// ([`super::deploy::measure_charge_rx`]: many peers, single-record
/// datagrams, one pipelined dispatch per round), then replayed through
/// the timing layer with the RX front-end modelled as `rx_shards` serial
/// framing lanes in front of the worker shards.
pub fn sweep_rx_shards(
    use_case: UseCase,
    rx_shards: usize,
    workers: usize,
    clients: &[usize],
) -> Vec<RxScalingPoint> {
    let charge = super::deploy::measure_charge_rx(use_case, RX_MIX_PAYLOAD, 6, workers, rx_shards);
    clients
        .iter()
        .map(|&n| {
            let cfg = ScalabilityConfig {
                n_clients: n,
                per_client_bps: RX_MIX_PER_CLIENT_BPS,
                payload_bytes: charge.payload_bytes,
                duration: SimDuration::from_millis(20),
                n_client_machines: 5,
                contention_per_excess_process: 0.0,
                server_procs_per_client: 1,
                server_single_process: false,
                server_worker_shards: Some(workers),
                client_load_weights: None,
                load_aware_dispatch: false,
                rx_shards: Some(rx_shards),
                rx_remap: false,
                async_front_end: None,
                syscall_batch: None,
            };
            let r: ScalabilityResult =
                run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), charge, &cfg);
            RxScalingPoint {
                clients: n,
                rx_shards,
                workers,
                gbps: r.gbps,
                mpps: r.gbps * 1e9 / (charge.payload_bytes as f64 * 8.0) / 1e6,
                server_cpu: r.server_cpu,
            }
        })
        .collect()
}

/// The RX-scaling comparison: the many-peer small-record mix on the
/// batched EndBox-SGX stack (NOP use case, 4 worker shards) for every RX
/// shard count in [`rx_shard_counts`].
pub fn fig_rx_scaling(clients: &[usize]) -> Vec<RxScalingPoint> {
    let mut out = Vec::new();
    for k in rx_shard_counts() {
        out.extend(sweep_rx_shards(UseCase::Nop, k, 4, clients));
    }
    out
}

/// One data point of the socket-front-end comparison: the sharded stack
/// under the many-peer small-record mix, ingesting either through a
/// call-driven front-end (one blocking receive — one event-loop wakeup —
/// per wire datagram) or through the event-driven
/// [`crate::server::AsyncFrontEnd`] (wakeups amortised over the drain
/// batch).
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncIngressPoint {
    /// `"call-driven"` or `"event-driven"`.
    pub mode: String,
    /// Connected clients (peers).
    pub clients: usize,
    /// RX framing shards (== poll groups).
    pub rx_shards: usize,
    /// Server worker shards.
    pub workers: usize,
    /// Aggregate server-side goodput in Gbps.
    pub gbps: f64,
    /// Aggregate server-side packet rate in Mpps.
    pub mpps: f64,
    /// Server CPU utilisation in [0, 1].
    pub server_cpu: f64,
    /// Event-loop wakeups per packet priced by the timing model
    /// (per-datagram ratio × fragments; 1.0 for the call-driven
    /// front-end on the single-datagram small-record mix).
    pub wakeups_per_packet: f64,
}

/// Runs the socket-front-end sweep for one mode: the per-packet charge
/// *and* the event loop's wakeups-per-datagram amortisation are measured
/// on the **real** stack with the `AsyncFrontEnd` in the loop
/// ([`super::deploy::measure_charge_async`]), then replayed through the
/// timing layer with the event-loop wakeup priced per packet on the RX
/// lanes ([`endbox_netsim::pipeline::AsyncFrontEndModel`]). The
/// call-driven baseline replays the **same measured charge** with one
/// wakeup per datagram — the only modelled difference between the modes
/// is the wakeup amortisation, which is precisely the event-driven
/// front-end's contribution.
pub fn sweep_async_ingress(
    use_case: UseCase,
    rx_shards: usize,
    workers: usize,
    clients: &[usize],
    event_driven: bool,
) -> Vec<AsyncIngressPoint> {
    let (charge, measured_ratio) =
        super::deploy::measure_charge_async(use_case, RX_MIX_PAYLOAD, 6, workers, rx_shards);
    sweep_async_ingress_measured(
        charge,
        measured_ratio,
        rx_shards,
        workers,
        clients,
        event_driven,
    )
}

/// The replay half of [`sweep_async_ingress`], for callers comparing both
/// modes against **one** real-stack measurement (the comparison's whole
/// point is that only the modelled wakeup amortisation differs).
pub fn sweep_async_ingress_measured(
    charge: PacketCharge,
    measured_ratio: f64,
    rx_shards: usize,
    workers: usize,
    clients: &[usize],
    event_driven: bool,
) -> Vec<AsyncIngressPoint> {
    let wakeup = endbox_netsim::cost::CostModel::calibrated().event_loop_wakeup;
    let model = if event_driven {
        endbox_netsim::pipeline::AsyncFrontEndModel::event_driven(wakeup, measured_ratio)
    } else {
        endbox_netsim::pipeline::AsyncFrontEndModel::call_driven(wakeup)
    };
    clients
        .iter()
        .map(|&n| {
            let cfg = ScalabilityConfig {
                n_clients: n,
                per_client_bps: RX_MIX_PER_CLIENT_BPS,
                payload_bytes: charge.payload_bytes,
                duration: SimDuration::from_millis(20),
                n_client_machines: 5,
                contention_per_excess_process: 0.0,
                server_procs_per_client: 1,
                server_single_process: false,
                server_worker_shards: Some(workers),
                client_load_weights: None,
                load_aware_dispatch: false,
                rx_shards: Some(rx_shards),
                rx_remap: false,
                async_front_end: Some(model),
                syscall_batch: None,
            };
            let r: ScalabilityResult =
                run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), charge, &cfg);
            AsyncIngressPoint {
                mode: if event_driven {
                    "event-driven"
                } else {
                    "call-driven"
                }
                .to_string(),
                clients: n,
                rx_shards,
                workers,
                gbps: r.gbps,
                mpps: r.gbps * 1e9 / (charge.payload_bytes as f64 * 8.0) / 1e6,
                server_cpu: r.server_cpu,
                wakeups_per_packet: model.wakeups_per_datagram * charge.fragments.max(1) as f64,
            }
        })
        .collect()
}

/// The socket-front-end comparison: call-driven vs event-driven ingestion
/// of the many-peer small-record mix on the batched EndBox-SGX stack
/// (NOP use case, 4 RX shards, 4 worker shards), across `clients`.
pub fn fig_async_ingress(clients: &[usize]) -> Vec<AsyncIngressPoint> {
    let (charge, ratio) =
        super::deploy::measure_charge_async(UseCase::Nop, RX_MIX_PAYLOAD, 6, 4, 4);
    let mut out = Vec::new();
    for event_driven in [false, true] {
        out.extend(sweep_async_ingress_measured(
            charge,
            ratio,
            4,
            4,
            clients,
            event_driven,
        ));
    }
    out
}

/// Bulk sizes swept by the syscall-batching comparison: `1` is the
/// per-datagram transport (one `recvfrom` per wire datagram), the rest
/// hand the kernel a `recvmmsg`-shaped vector of up to N datagrams per
/// crossing.
pub const WIRE_BULK_SIZES: [usize; 4] = [1, 8, 32, 128];

/// One data point of the syscall-batching comparison: the sharded stack
/// under the many-peer small-record mix, draining its sockets with bulk
/// `recv_many` calls of up to `bulk` datagrams. The per-datagram socket
/// work is metered identically at every bulk size; only the per-call
/// syscall charge ([`endbox_netsim::pipeline::SyscallBatchModel`]) is
/// amortised over the *measured* datagrams-per-call ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct SyscallBatchPoint {
    /// Requested bulk size (datagrams per `recv_many` call).
    pub bulk: usize,
    /// Connected clients (peers).
    pub clients: usize,
    /// RX framing shards (== poll groups).
    pub rx_shards: usize,
    /// Server worker shards.
    pub workers: usize,
    /// Aggregate server-side goodput in Gbps.
    pub gbps: f64,
    /// Aggregate server-side packet rate in Mpps.
    pub mpps: f64,
    /// Server CPU utilisation in [0, 1].
    pub server_cpu: f64,
    /// Datagrams moved per socket call, measured on the real stack
    /// (bounded above by the per-socket queue depth at drain time).
    pub datagrams_per_call: f64,
}

/// The replay half of [`sweep_syscall_batch`], for callers replaying one
/// real-stack measurement across client counts. `measured_ratio` below
/// 1.0 (the per-datagram front-end pays a final empty dry-check call per
/// socket) is clamped: a syscall never moves less than one datagram.
pub fn sweep_syscall_batch_measured(
    charge: PacketCharge,
    bulk: usize,
    measured_ratio: f64,
    rx_shards: usize,
    workers: usize,
    clients: &[usize],
) -> Vec<SyscallBatchPoint> {
    let per_call = endbox_netsim::cost::CostModel::calibrated().syscall_per_call;
    let model = if bulk <= 1 {
        endbox_netsim::pipeline::SyscallBatchModel::per_datagram(per_call)
    } else {
        endbox_netsim::pipeline::SyscallBatchModel::bulk(per_call, measured_ratio.max(1.0))
    };
    clients
        .iter()
        .map(|&n| {
            let cfg = ScalabilityConfig {
                n_clients: n,
                per_client_bps: RX_MIX_PER_CLIENT_BPS,
                payload_bytes: charge.payload_bytes,
                duration: SimDuration::from_millis(20),
                n_client_machines: 5,
                contention_per_excess_process: 0.0,
                server_procs_per_client: 1,
                server_single_process: false,
                server_worker_shards: Some(workers),
                client_load_weights: None,
                load_aware_dispatch: false,
                rx_shards: Some(rx_shards),
                rx_remap: false,
                async_front_end: None,
                syscall_batch: Some(model),
            };
            let r: ScalabilityResult =
                run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), charge, &cfg);
            SyscallBatchPoint {
                bulk,
                clients: n,
                rx_shards,
                workers,
                gbps: r.gbps,
                mpps: r.gbps * 1e9 / (charge.payload_bytes as f64 * 8.0) / 1e6,
                server_cpu: r.server_cpu,
                datagrams_per_call: model.datagrams_per_call,
            }
        })
        .collect()
}

/// Runs the syscall-batching sweep for one bulk size: the per-packet
/// charge *and* the datagrams-per-call amortisation are measured on the
/// **real** stack draining through `recv_many(bulk)`
/// ([`super::deploy::measure_charge_wire`]), then replayed through the
/// timing layer with the per-call syscall cost spread over the measured
/// ratio on the RX lanes. All bulk sizes replay the same metered
/// per-datagram work — the only modelled difference is how many kernel
/// crossings that work needs.
pub fn sweep_syscall_batch(
    use_case: UseCase,
    bulk: usize,
    rx_shards: usize,
    workers: usize,
    clients: &[usize],
) -> Vec<SyscallBatchPoint> {
    let (charge, ratio) =
        super::deploy::measure_charge_wire(use_case, RX_MIX_PAYLOAD, 6, workers, rx_shards, bulk);
    sweep_syscall_batch_measured(charge, bulk, ratio, rx_shards, workers, clients)
}

/// The syscall-batching comparison: the many-peer small-record mix on
/// the batched EndBox-SGX stack (NOP use case, 2 RX shards, 4 worker
/// shards) for every bulk size in [`WIRE_BULK_SIZES`], across `clients`.
pub fn fig_syscall_batch(clients: &[usize]) -> Vec<SyscallBatchPoint> {
    let mut out = Vec::new();
    for bulk in WIRE_BULK_SIZES {
        out.extend(sweep_syscall_batch(UseCase::Nop, bulk, 2, 4, clients));
    }
    out
}

/// Bulk size of the transport-backend comparison: every backend drains
/// with `recv_many(32)` vectors, so the socket baseline is exactly the
/// bulk-32 row of [`fig_syscall_batch`] and the ring/bypass wins are
/// attributable to the boundary model alone, not to batching depth.
pub const TRANSPORT_BACKEND_BULK: usize = 32;

/// One data point of the transport-backend comparison
/// ([`fig_transport_backend`]): the sharded stack under the many-peer
/// small-record mix on one wire backend, with that backend's calibrated
/// boundary costs in both the metered charge and the replayed boundary
/// model.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportBackendPoint {
    /// Boundary model of the row: `"socket"` (bulk-32 `recvmmsg`
    /// shape), `"ring"` (SQ/CQ doorbell) or `"xdp-frame"` (zero-copy
    /// descriptor hand-off).
    pub backend: &'static str,
    /// Connected clients (peers).
    pub clients: usize,
    /// RX framing shards (== poll groups).
    pub rx_shards: usize,
    /// Server worker shards.
    pub workers: usize,
    /// Aggregate server-side goodput in Gbps.
    pub gbps: f64,
    /// Aggregate server-side packet rate in Mpps.
    pub mpps: f64,
    /// Server CPU utilisation in [0, 1].
    pub server_cpu: f64,
    /// Datagrams moved per boundary crossing, measured on the real
    /// stack (doorbell batches for the ring; moot for the bypass
    /// backend, whose crossings are free).
    pub datagrams_per_call: f64,
}

/// Display label of `kind`'s boundary model in the transport-backend
/// comparison. [`TransportKind::Virtual`] carries the calibrated
/// OS-socket cost shape ([`endbox_netsim::net::WireCostProfile::socket`]
/// — identical metered charges to the real-socket backend, which the
/// parity suite asserts), so both socket-shaped backends label as
/// `"socket"`.
fn backend_label(kind: TransportKind) -> &'static str {
    match kind {
        TransportKind::Virtual | TransportKind::OsSocket => "socket",
        TransportKind::Ring => "ring",
        TransportKind::XdpFrame => "xdp-frame",
    }
}

/// Runs the transport-backend sweep for one backend: the per-packet
/// charge (with `kind`'s boundary costs, via
/// [`super::deploy::measure_charge_transport`]) and the
/// datagrams-per-call amortisation are measured on the **real** stack
/// draining through `recv_many(32)`, then replayed through the timing
/// layer with `kind`'s boundary model on the RX lanes:
///
/// - socket shape: [`SyscallBatchModel::bulk`] with the calibrated
///   per-syscall cost over the measured ratio (the bulk-32 row of the
///   syscall-batching sweep, bit-identical baseline);
/// - ring: [`SyscallBatchModel::ring_doorbell`] — one
///   [`endbox_netsim::cost::CostModel::doorbell_per_batch`] charge per
///   submitted batch, amortised over the same measured ratio;
/// - XDP frame: [`SyscallBatchModel::kernel_bypass`] — boundary
///   crossings are free; frames arrive by descriptor from the shared
///   arena.
///
/// [`SyscallBatchModel::bulk`]: endbox_netsim::pipeline::SyscallBatchModel::bulk
/// [`SyscallBatchModel::ring_doorbell`]: endbox_netsim::pipeline::SyscallBatchModel::ring_doorbell
/// [`SyscallBatchModel::kernel_bypass`]: endbox_netsim::pipeline::SyscallBatchModel::kernel_bypass
pub fn sweep_transport_backend(
    use_case: UseCase,
    kind: TransportKind,
    rx_shards: usize,
    workers: usize,
    clients: &[usize],
) -> Vec<TransportBackendPoint> {
    let (charge, ratio) = super::deploy::measure_charge_transport(
        use_case,
        RX_MIX_PAYLOAD,
        6,
        workers,
        rx_shards,
        TRANSPORT_BACKEND_BULK,
        kind,
    );
    let cost = endbox_netsim::cost::CostModel::calibrated();
    let model = match kind {
        TransportKind::Virtual | TransportKind::OsSocket => {
            endbox_netsim::pipeline::SyscallBatchModel::bulk(cost.syscall_per_call, ratio.max(1.0))
        }
        TransportKind::Ring => endbox_netsim::pipeline::SyscallBatchModel::ring_doorbell(
            cost.doorbell_per_batch,
            ratio.max(1.0),
        ),
        TransportKind::XdpFrame => endbox_netsim::pipeline::SyscallBatchModel::kernel_bypass(),
    };
    clients
        .iter()
        .map(|&n| {
            let cfg = ScalabilityConfig {
                n_clients: n,
                per_client_bps: RX_MIX_PER_CLIENT_BPS,
                payload_bytes: charge.payload_bytes,
                duration: SimDuration::from_millis(20),
                n_client_machines: 5,
                contention_per_excess_process: 0.0,
                server_procs_per_client: 1,
                server_single_process: false,
                server_worker_shards: Some(workers),
                client_load_weights: None,
                load_aware_dispatch: false,
                rx_shards: Some(rx_shards),
                rx_remap: false,
                async_front_end: None,
                syscall_batch: Some(model),
            };
            let r: ScalabilityResult =
                run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), charge, &cfg);
            TransportBackendPoint {
                backend: backend_label(kind),
                clients: n,
                rx_shards,
                workers,
                gbps: r.gbps,
                mpps: r.gbps * 1e9 / (charge.payload_bytes as f64 * 8.0) / 1e6,
                server_cpu: r.server_cpu,
                datagrams_per_call: model.datagrams_per_call,
            }
        })
        .collect()
}

/// The transport-backend comparison behind `BENCH_transport.json`: the
/// many-peer small-record mix on the batched EndBox-SGX stack (NOP use
/// case, 2 RX shards, 4 worker shards, bulk-32 drains) for the three
/// boundary models — bulk socket, submission/completion ring and
/// zero-copy frame bypass — across `clients`.
pub fn fig_transport_backend(clients: &[usize]) -> Vec<TransportBackendPoint> {
    let mut out = Vec::new();
    for kind in [
        TransportKind::Virtual,
        TransportKind::Ring,
        TransportKind::XdpFrame,
    ] {
        out.extend(sweep_transport_backend(UseCase::Nop, kind, 2, 4, clients));
    }
    out
}

/// One datapath configuration of the adaptive-control comparison
/// ([`fig_adaptive_control`]): a worker dispatch policy plus the socket
/// front-end's static scheduling knobs — or, for the controller row,
/// neither (the closed-loop control plane derives everything at
/// runtime).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Row label (`"static-small"`, …, `"controller"`).
    pub name: &'static str,
    /// Worker placement policy.
    pub dispatch: endbox_vpn::shard::DispatchPolicy,
    /// `Some((drain_quota, shard_budget))` pins the front-end's static
    /// knobs; `None` arms the zero-knob controller.
    pub knobs: Option<(usize, usize)>,
}

/// The hand-tuned static grid the controller competes against: every
/// combination of dispatch policy (fixed affinity vs eager load-aware)
/// and front-end budget sizing (starved vs generous), plus the
/// controller itself. The grid brackets the tuning space — under
/// uniform off-peak load the large-budget rows win; under the crowd's
/// skew the load-aware rows win — so "within 5% of the best row at
/// every step" means the controller never needed the hand-tuning at
/// all.
pub const ADAPTIVE_CONFIGS: [AdaptiveConfig; 5] = [
    AdaptiveConfig {
        name: "static-small",
        dispatch: endbox_vpn::shard::DispatchPolicy::Static,
        knobs: Some((1, 4)),
    },
    AdaptiveConfig {
        name: "static-large",
        dispatch: endbox_vpn::shard::DispatchPolicy::Static,
        knobs: Some((32, 1024)),
    },
    AdaptiveConfig {
        name: "aware-small",
        dispatch: endbox_vpn::shard::DispatchPolicy::LoadAware {
            imbalance_bytes: 1_000,
            max_migrations_per_dispatch: 2,
        },
        knobs: Some((1, 4)),
    },
    AdaptiveConfig {
        name: "aware-large",
        dispatch: endbox_vpn::shard::DispatchPolicy::LoadAware {
            imbalance_bytes: 1_000,
            max_migrations_per_dispatch: 2,
        },
        knobs: Some((32, 1024)),
    },
    AdaptiveConfig {
        name: "controller",
        dispatch: endbox_vpn::shard::DispatchPolicy::Adaptive,
        knobs: None,
    },
];

/// One data point of the adaptive-control comparison: one configuration
/// replayed at one step of an offered-load trace.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveControlPoint {
    /// Configuration row ([`AdaptiveConfig::name`]).
    pub config: &'static str,
    /// Trace name (`"flash-crowd"` or `"diurnal"`).
    pub trace: &'static str,
    /// Step index within the trace.
    pub step: usize,
    /// Connected clients at this step.
    pub clients: usize,
    /// Whether the step sits in the trace's heavy-tailed crowd phase.
    pub crowd: bool,
    /// Aggregate server-side goodput in Gbps.
    pub gbps: f64,
    /// Aggregate server-side packet rate in Mpps.
    pub mpps: f64,
    /// Server CPU utilisation in [0, 1].
    pub server_cpu: f64,
}

/// Runs the adaptive-control sweep for one configuration: the
/// per-packet charge *and* the event loop's wakeups-per-datagram
/// amortisation are measured on the **real** stack under the
/// heavy-tailed small-record mix with that configuration's dispatch
/// policy and budget knobs in force
/// ([`super::deploy::measure_charge_adaptive`] — starved static budgets
/// force extra drain rounds and the measured ratio carries that), then
/// every step of every trace replays through the timing layer: crowd
/// steps with the Zipf load mix ([`heavy_tail_weights`]), off-peak
/// steps uniform, the dispatcher model matching the policy.
pub fn sweep_adaptive_control(
    use_case: UseCase,
    rx_shards: usize,
    workers: usize,
    config: &AdaptiveConfig,
    traces: &[(&'static str, Vec<endbox_netsim::traffic::TraceStep>)],
) -> Vec<AdaptiveControlPoint> {
    let (charge, ratio, stats) = super::deploy::measure_charge_adaptive(
        use_case,
        RX_MIX_PAYLOAD,
        6,
        workers,
        rx_shards,
        config.dispatch,
        config.knobs,
    );
    let wakeup = endbox_netsim::cost::CostModel::calibrated().event_loop_wakeup;
    let model = endbox_netsim::pipeline::AsyncFrontEndModel::event_driven(wakeup, ratio);
    let load_aware = !matches!(config.dispatch, endbox_vpn::shard::DispatchPolicy::Static);
    // The replay only models online RX re-homing for a configuration
    // whose *measured* run demonstrably performed remaps — static
    // configurations have no control plane and keep `client mod k`
    // homing for the whole run.
    let rx_remap = stats.remaps > 0;
    let mut out = Vec::new();
    for (trace_name, trace) in traces {
        for s in trace {
            let cfg = ScalabilityConfig {
                n_clients: s.clients,
                per_client_bps: RX_MIX_PER_CLIENT_BPS,
                payload_bytes: charge.payload_bytes,
                duration: SimDuration::from_millis(20),
                n_client_machines: 5,
                contention_per_excess_process: 0.0,
                server_procs_per_client: 1,
                server_single_process: false,
                server_worker_shards: Some(workers),
                client_load_weights: s.crowd.then(|| heavy_tail_weights(s.clients)),
                load_aware_dispatch: load_aware,
                rx_shards: Some(rx_shards),
                rx_remap,
                async_front_end: Some(model),
                syscall_batch: None,
            };
            let r: ScalabilityResult =
                run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), charge, &cfg);
            out.push(AdaptiveControlPoint {
                config: config.name,
                trace: trace_name,
                step: s.step,
                clients: s.clients,
                crowd: s.crowd,
                gbps: r.gbps,
                mpps: r.gbps * 1e9 / (charge.payload_bytes as f64 * 8.0) / 1e6,
                server_cpu: r.server_cpu,
            });
        }
    }
    out
}

/// The adaptive-control comparison behind `BENCH_adaptive.json`: every
/// configuration of [`ADAPTIVE_CONFIGS`] replayed over a flash-crowd
/// trace and a diurnal trace of `points` steps each
/// ([`ADAPTIVE_TRACE_BASE`] → [`ADAPTIVE_TRACE_PEAK`] clients, NOP use
/// case, 2 RX shards, 4 worker shards). Each configuration is
/// measured on the real stack exactly once; only the offered load moves
/// across steps.
pub fn fig_adaptive_control(points: usize) -> Vec<AdaptiveControlPoint> {
    let traces = vec![
        (
            "flash-crowd",
            endbox_netsim::traffic::flash_crowd_trace(
                ADAPTIVE_TRACE_BASE,
                ADAPTIVE_TRACE_PEAK,
                points,
            ),
        ),
        (
            "diurnal",
            endbox_netsim::traffic::diurnal_trace(ADAPTIVE_TRACE_BASE, ADAPTIVE_TRACE_PEAK, points),
        ),
    ];
    let mut out = Vec::new();
    for config in &ADAPTIVE_CONFIGS {
        out.extend(sweep_adaptive_control(UseCase::Nop, 2, 4, config, &traces));
    }
    out
}

/// Off-peak client count of the adaptive-control traces.
pub const ADAPTIVE_TRACE_BASE: usize = 10;

/// Peak client count of the adaptive-control traces. Deliberately in the
/// *lane-imbalance* regime of the 2-RX-shard server: the crowd's Zipf
/// elephants all home on RX lane 0 (even client ids), whose offered load
/// exceeds twice a lane's capacity while the odd lane still has idle
/// headroom — so online re-homing converts real throughput, and a
/// configuration that cannot remap leaves the cold lane underused. Far
/// past this (say 60 clients at the same per-client rate) *both* lanes
/// saturate and every configuration converges to the same aggregate
/// ceiling, which would measure nothing.
pub const ADAPTIVE_TRACE_PEAK: usize = 30;

/// The zero-knob acceptance margins over a [`fig_adaptive_control`]
/// result set: `(worst_vs_best, peak_vs_worst)` where
///
/// * `worst_vs_best` is the controller's throughput relative to the
///   **best** static configuration, minimised over every `(trace,
///   step)` — the "never needed hand-tuning" bar (>= 0.95 required);
/// * `peak_vs_worst` is the controller's throughput relative to the
///   **worst** static configuration at each trace's peak step (most
///   clients, crowd phase), minimised over traces — the "mis-tuning
///   costs real throughput" bar (>= 1.3 required).
///
/// # Panics
///
/// Panics if `points` lacks a controller row or static rows for some
/// step (a malformed sweep).
pub fn adaptive_control_margins(points: &[AdaptiveControlPoint]) -> (f64, f64) {
    let mut worst_vs_best = f64::INFINITY;
    let mut peak_vs_worst = f64::INFINITY;
    for trace in ["flash-crowd", "diurnal"] {
        let steps: Vec<usize> = points
            .iter()
            .filter(|p| p.trace == trace)
            .map(|p| p.step)
            .collect();
        let max_step = steps.iter().copied().max().expect("trace has steps");
        let peak_step = points
            .iter()
            .filter(|p| p.trace == trace)
            .max_by(|a, b| (a.clients, a.crowd).cmp(&(b.clients, b.crowd)))
            .expect("trace has steps")
            .step;
        for step in 0..=max_step {
            let at = |config: &str| -> f64 {
                points
                    .iter()
                    .find(|p| p.trace == trace && p.step == step && p.config == config)
                    .unwrap_or_else(|| panic!("missing {config} at {trace} step {step}"))
                    .gbps
            };
            let ctrl = at("controller");
            let statics: Vec<f64> = ADAPTIVE_CONFIGS
                .iter()
                .filter(|c| c.knobs.is_some())
                .map(|c| at(c.name))
                .collect();
            let best = statics.iter().cloned().fold(f64::MIN, f64::max);
            let worst = statics.iter().cloned().fold(f64::MAX, f64::min);
            worst_vs_best = worst_vs_best.min(ctrl / best);
            if step == peak_step {
                peak_vs_worst = peak_vs_worst.min(ctrl / worst);
            }
        }
    }
    (worst_vs_best, peak_vs_worst)
}

/// One rung of the fixed capacity ladder the elastic server competes
/// against: an operator who picked this `(rx_shards, workers)` geometry
/// up front and cannot change it as the diurnal load moves.
#[derive(Debug, Clone, Copy)]
pub struct ElasticConfig {
    /// Row label (`"fixed-small"`, `"fixed-mid"`, `"fixed-large"`).
    pub name: &'static str,
    /// RX framing shards, fixed for the whole trace.
    pub rx_shards: usize,
    /// Worker shards, fixed for the whole trace.
    pub workers: usize,
}

/// The fixed ladder behind `BENCH_elastic.json`. The rungs bracket the
/// diurnal demand range: `fixed-small` is right-sized for the trough
/// (and saturates at the peak), `fixed-large` is right-sized for the
/// peak (and idles at the trough), `fixed-mid` splits the difference.
/// The elastic row moves along exactly this ladder — its per-step
/// geometry is a rung, so "elastic within 10% of the best rung at every
/// step" means online resizing recovers the whole fixed tuning space.
pub const ELASTIC_LADDER: [ElasticConfig; 3] = [
    ElasticConfig {
        name: "fixed-small",
        rx_shards: 1,
        workers: 1,
    },
    ElasticConfig {
        name: "fixed-mid",
        rx_shards: 2,
        workers: 4,
    },
    ElasticConfig {
        name: "fixed-large",
        rx_shards: 4,
        workers: 8,
    },
];

/// One data point of the structural-elasticity comparison: one capacity
/// configuration (a fixed ladder rung, or the elastic server at the
/// geometry its resize law holds at this step) replayed at one step of
/// the diurnal trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticResizePoint {
    /// Row label: a [`ELASTIC_LADDER`] rung name, or `"elastic"`.
    pub config: &'static str,
    /// Step index within the diurnal trace.
    pub step: usize,
    /// Connected clients at this step.
    pub clients: usize,
    /// Whether the step sits in the trace's heavy-tailed peak phase.
    pub crowd: bool,
    /// RX shards serving this step.
    pub rx_shards: usize,
    /// Worker shards serving this step.
    pub workers: usize,
    /// Aggregate server-side goodput in Gbps.
    pub gbps: f64,
    /// Aggregate server-side packet rate in Mpps.
    pub mpps: f64,
    /// Server CPU utilisation in [0, 1].
    pub server_cpu: f64,
}

/// The ladder rung the resize law settles on for one trace step: the
/// trace-level projection of the control law in
/// `AsyncFrontEnd::control_round` (the live law folds socket backlog
/// into demand EWMAs each round; over a whole step the EWMA converges
/// onto the offered load, so the step's client count is the demand
/// proxy). Demand maps linearly onto the ladder's RX range — the
/// trough picks the smallest rung, the peak the largest — mirroring
/// `desired = ceil(demand / RESIZE_TARGET_DEMAND)` with the trace's
/// peak normalised onto `fixed-large`.
pub fn elastic_rung_for(clients: usize, peak: usize) -> &'static ElasticConfig {
    let top = ELASTIC_LADDER[ELASTIC_LADDER.len() - 1].rx_shards;
    let desired = (clients * top).div_ceil(peak.max(1)).max(1);
    ELASTIC_LADDER
        .iter()
        .find(|c| c.rx_shards >= desired)
        .unwrap_or(&ELASTIC_LADDER[ELASTIC_LADDER.len() - 1])
}

/// Measures one `(rx_shards, workers)` geometry on the real stack (the
/// per-packet charge and the event loop's wakeup amortisation, with the
/// full adaptive control plane live, as in [`sweep_adaptive_control`])
/// and replays every step of the diurnal trace through the timing layer
/// at that geometry. `config` is the row label; `geometry_of` picks the
/// per-step geometry — a fixed rung returns itself, the elastic row
/// follows [`elastic_rung_for`].
/// Memoized real-stack measurement for one `(rx_shards, workers)`
/// geometry: the per-packet charge, the wakeup amortisation ratio, and
/// whether the measured run performed RX re-homes.
type MeasuredGeometry = (PacketCharge, f64, bool);

pub fn sweep_elastic(
    use_case: UseCase,
    config: &'static str,
    trace: &[endbox_netsim::traffic::TraceStep],
    geometry_of: impl Fn(&endbox_netsim::traffic::TraceStep) -> (usize, usize),
) -> Vec<ElasticResizePoint> {
    let mut out = Vec::new();
    let mut measured: Vec<((usize, usize), MeasuredGeometry)> = Vec::new();
    for s in trace {
        let (rx_shards, workers) = geometry_of(s);
        let (charge, ratio, rx_remap) =
            match measured.iter().find(|(g, _)| *g == (rx_shards, workers)) {
                Some((_, m)) => *m,
                None => {
                    let (charge, ratio, stats) = super::deploy::measure_charge_adaptive(
                        use_case,
                        RX_MIX_PAYLOAD,
                        6,
                        workers,
                        rx_shards,
                        endbox_vpn::shard::DispatchPolicy::Adaptive,
                        None,
                    );
                    let m = (charge, ratio, stats.remaps > 0);
                    measured.push(((rx_shards, workers), m));
                    m
                }
            };
        let wakeup = endbox_netsim::cost::CostModel::calibrated().event_loop_wakeup;
        let model = endbox_netsim::pipeline::AsyncFrontEndModel::event_driven(wakeup, ratio);
        let cfg = ScalabilityConfig {
            n_clients: s.clients,
            per_client_bps: RX_MIX_PER_CLIENT_BPS,
            payload_bytes: charge.payload_bytes,
            duration: SimDuration::from_millis(20),
            n_client_machines: 5,
            contention_per_excess_process: 0.0,
            server_procs_per_client: 1,
            server_single_process: false,
            server_worker_shards: Some(workers),
            client_load_weights: s.crowd.then(|| heavy_tail_weights(s.clients)),
            load_aware_dispatch: true,
            rx_shards: Some(rx_shards),
            rx_remap,
            async_front_end: Some(model),
            syscall_batch: None,
        };
        let r: ScalabilityResult =
            run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), charge, &cfg);
        out.push(ElasticResizePoint {
            config,
            step: s.step,
            clients: s.clients,
            crowd: s.crowd,
            rx_shards,
            workers,
            gbps: r.gbps,
            mpps: r.gbps * 1e9 / (charge.payload_bytes as f64 * 8.0) / 1e6,
            server_cpu: r.server_cpu,
        });
    }
    out
}

/// The structural-elasticity comparison behind `BENCH_elastic.json`:
/// every fixed rung of [`ELASTIC_LADDER`] plus the elastic row replayed
/// over a diurnal trace of `points` steps ([`ADAPTIVE_TRACE_BASE`] →
/// [`ADAPTIVE_TRACE_PEAK`] clients, NOP use case). Fixed rungs keep one
/// geometry for the whole trace; the elastic row's geometry follows the
/// resize law step by step ([`elastic_rung_for`]), so capacity tracks
/// the diurnal curve.
pub fn fig_elastic_resize(points: usize) -> Vec<ElasticResizePoint> {
    let trace =
        endbox_netsim::traffic::diurnal_trace(ADAPTIVE_TRACE_BASE, ADAPTIVE_TRACE_PEAK, points);
    let mut out = Vec::new();
    for rung in &ELASTIC_LADDER {
        out.extend(sweep_elastic(UseCase::Nop, rung.name, &trace, |_| {
            (rung.rx_shards, rung.workers)
        }));
    }
    out.extend(sweep_elastic(UseCase::Nop, "elastic", &trace, |s| {
        let rung = elastic_rung_for(s.clients, ADAPTIVE_TRACE_PEAK);
        (rung.rx_shards, rung.workers)
    }));
    out
}

/// The elasticity acceptance margins over a [`fig_elastic_resize`]
/// result set: `(worst_vs_best, peak_vs_smallest)` where
///
/// * `worst_vs_best` is the elastic row's throughput relative to the
///   **best** fixed rung, minimised over every diurnal step — the
///   "elastic never needed a pre-sized pool" bar (>= 0.90 required);
/// * `peak_vs_smallest` is the elastic row's throughput relative to the
///   smallest fixed rung at the trace's peak step — the "under-sizing
///   costs real throughput" bar (>= 1.3 required).
///
/// # Panics
///
/// Panics if `points` lacks an elastic row or fixed rows for some step
/// (a malformed sweep).
pub fn elastic_margins(points: &[ElasticResizePoint]) -> (f64, f64) {
    let max_step = points
        .iter()
        .map(|p| p.step)
        .max()
        .expect("sweep has steps");
    let peak_step = points
        .iter()
        .max_by(|a, b| (a.clients, a.crowd).cmp(&(b.clients, b.crowd)))
        .expect("sweep has steps")
        .step;
    let mut worst_vs_best = f64::INFINITY;
    let mut peak_vs_smallest = f64::INFINITY;
    for step in 0..=max_step {
        let at = |config: &str| -> f64 {
            points
                .iter()
                .find(|p| p.step == step && p.config == config)
                .unwrap_or_else(|| panic!("missing {config} at step {step}"))
                .gbps
        };
        let elastic = at("elastic");
        let best = ELASTIC_LADDER
            .iter()
            .map(|c| at(c.name))
            .fold(f64::MIN, f64::max);
        worst_vs_best = worst_vs_best.min(elastic / best);
        if step == peak_step {
            peak_vs_smallest = elastic / at(ELASTIC_LADDER[0].name);
        }
    }
    (worst_vs_best, peak_vs_smallest)
}

/// Real-stack elasticity demo for the bench bin: drives a flood then
/// sustained idleness through a live elastic scenario
/// (`ScenarioBuilder::elastic`) and returns the resulting
/// [`crate::server::ResizeStats`] — the law must have both grown and
/// shrunk the pool ([`crate::server::ResizeStats::rx_grows`] and
/// [`crate::server::ResizeStats::rx_shrinks`] >= 1) for the replayed
/// elastic row to be an honest model of the implementation.
pub fn elastic_capacity_demo() -> crate::server::ResizeStats {
    use crate::scenario::Scenario;
    let mut scenario = Scenario::enterprise(4, UseCase::Nop)
        .seed(0xe1a5)
        .rx_shards(1)
        .elastic(true)
        .build_sharded(2)
        .expect("elastic scenario");
    let mut round = 0;
    while scenario.resize_stats().rx_grows == 0 && round < 12 {
        let mut sent = 0;
        for client in 0..4 {
            for i in 0..75 {
                let payload = format!("demo round {round} client {client} packet {i}");
                let packet = endbox_netsim::Packet::tcp(
                    Scenario::client_addr(client),
                    Scenario::network_addr(),
                    41_000 + client as u16,
                    5_001,
                    (round * 1_000 + i) as u32,
                    payload.as_bytes(),
                );
                let datagrams = scenario.clients[client]
                    .send_packet(packet)
                    .expect("seal demo packet");
                sent += datagrams.len();
                scenario.send_wire_datagrams(client as u64, datagrams);
            }
        }
        let mut got = 0;
        let mut spins = 0;
        while got < sent {
            got += scenario.pump_async().len();
            spins += 1;
            assert!(spins < 100_000, "demo lost datagrams: {got} of {sent}");
        }
        round += 1;
    }
    for _ in 0..60 {
        scenario.pump_async();
    }
    scenario.resize_stats()
}

/// Convenience: the aggregate throughput at a specific client count.
pub fn gbps_at(points: &[ScalabilityPoint], deployment: &str, clients: usize) -> Option<f64> {
    points
        .iter()
        .find(|p| p.deployment == deployment && p.clients == clients)
        .map(|p| p.gbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endbox_scales_linearly_until_server_saturates() {
        let points = sweep(Deployment::EndBoxSgx(UseCase::Nop));
        let at = |n| gbps_at(&points, &Deployment::EndBoxSgx(UseCase::Nop).name(), n).unwrap();
        // Linear region: 5 -> 10 -> 20 clients roughly doubles.
        assert!(
            (at(10) / at(5) - 2.0).abs() < 0.2,
            "{} vs {}",
            at(10),
            at(5)
        );
        assert!((at(20) / at(10) - 2.0).abs() < 0.2);
        // Plateau at roughly the paper's 6.5 Gbps (±20%).
        let plateau = at(60);
        assert!((plateau - 6.5).abs() / 6.5 < 0.2, "plateau {plateau}");
    }

    #[test]
    fn endbox_beats_openvpn_click_at_sixty_clients() {
        let endbox = sweep(Deployment::EndBoxSgx(UseCase::Firewall));
        let central = sweep(Deployment::OpenVpnClick(UseCase::Firewall));
        let e = endbox.last().unwrap().gbps;
        let c = central.last().unwrap().gbps;
        // Paper: 2.6x for lightweight use cases.
        let factor = e / c;
        assert!(factor > 1.8, "EndBox should win clearly: {factor:.2}x");
    }

    #[test]
    fn compute_heavy_use_cases_widen_the_gap() {
        let light = sweep(Deployment::OpenVpnClick(UseCase::Firewall));
        let heavy = sweep(Deployment::OpenVpnClick(UseCase::Idps));
        let l = light.last().unwrap().gbps;
        let h = heavy.last().unwrap().gbps;
        assert!(
            h < l,
            "IDPS saturates the central server earlier: {h} vs {l}"
        );
    }

    #[test]
    fn sharded_batched_path_scales_with_workers() {
        // The acceptance bar: ≥2x aggregate throughput at 4 workers vs 1
        // on the batched EndBox-SGX path.
        let one = sweep_sharded(UseCase::Nop, 1, 16, &[60]);
        let four = sweep_sharded(UseCase::Nop, 4, 16, &[60]);
        let (g1, g4) = (one[0].gbps, four[0].gbps);
        assert!(
            g4 >= 2.0 * g1,
            "4 workers must at least double 1 worker: {g1:.2} vs {g4:.2} Gbps"
        );
        assert!(one[0].mpps > 0.0 && four[0].mpps > one[0].mpps);
    }

    #[test]
    fn sharded_charge_matches_single_server_work() {
        // Sharding redistributes the per-packet work, it must not change
        // its total: the measured per-packet server cycles of a 4-worker
        // sharded stack stay close to the 1-worker stack's.
        let one = measure_charge_sharded(UseCase::Nop, 1_500, 4, 16, 1);
        let four = measure_charge_sharded(UseCase::Nop, 1_500, 4, 16, 4);
        let tol = one.server_cycles / 5;
        assert!(
            four.server_cycles.abs_diff(one.server_cycles) <= tol.max(2_000),
            "per-packet server work must be worker-count independent: {} vs {}",
            one.server_cycles,
            four.server_cycles
        );
        assert_eq!(one.payload_bytes, four.payload_bytes);
    }

    #[test]
    fn load_aware_dispatch_beats_static_affinity_under_heavy_tail() {
        // The acceptance bar: at 60 clients on 4 workers, a heavy-tailed
        // load mix whose elephants collide on one home shard must cost
        // static affinity ≥ 1.3x throughput vs the load-aware dispatcher.
        let stat = sweep_heavy_tail(UseCase::Nop, 4, 16, &[60], false);
        let aware = sweep_heavy_tail(UseCase::Nop, 4, 16, &[60], true);
        let (g_stat, g_aware) = (stat[0].gbps, aware[0].gbps);
        assert!(
            g_aware >= 1.3 * g_stat,
            "load-aware must win ≥1.3x under the heavy tail: \
             static {g_stat:.2} vs load-aware {g_aware:.2} Gbps"
        );
        assert_eq!(stat[0].migrations, 0);
        assert!(aware[0].migrations > 0, "the win must come from migrations");
    }

    #[test]
    fn load_aware_dispatch_keeps_uniform_fig10_numbers() {
        // The guard-rail: under the *uniform* Fig. 10 load the dispatcher
        // must be within 5% of static affinity.
        let charge = measure_charge_sharded(UseCase::Nop, 1_500, 8, 16, 4);
        let run = |load_aware: bool| {
            let cfg = ScalabilityConfig {
                n_clients: 60,
                per_client_bps: 200_000_000,
                payload_bytes: 1_500,
                duration: SimDuration::from_millis(20),
                n_client_machines: 5,
                contention_per_excess_process: 0.0,
                server_procs_per_client: 1,
                server_single_process: false,
                server_worker_shards: Some(4),
                client_load_weights: None,
                load_aware_dispatch: load_aware,
                rx_shards: None,
                rx_remap: false,
                async_front_end: None,
                syscall_batch: None,
            };
            run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), charge, &cfg).gbps
        };
        let (g_stat, g_aware) = (run(false), run(true));
        assert!(
            (g_aware - g_stat).abs() / g_stat < 0.05,
            "uniform load must not regress: static {g_stat:.2} vs load-aware {g_aware:.2} Gbps"
        );
    }

    #[test]
    fn rx_mix_is_framing_dominated() {
        // The many-peer small-record mix must actually be RX-bound:
        // per-datagram framing has to carry the majority of the per-packet
        // server work, or the sweep measures the wrong bottleneck.
        let charge = super::super::deploy::measure_charge_rx(UseCase::Nop, RX_MIX_PAYLOAD, 4, 4, 1);
        assert!(
            charge.rx_cycles * 2 >= charge.server_cycles,
            "framing must dominate the small-record mix: rx {} of {} total",
            charge.rx_cycles,
            charge.server_cycles
        );
        assert!(charge.rx_cycles <= charge.server_cycles);
        assert_eq!(charge.fragments, 1, "small records must not fragment");
    }

    #[test]
    fn rx_sharding_scales_many_peer_small_record_ingress() {
        // The acceptance bar: at high peer counts on the small-record mix
        // (where the PR 3 single RX thread is the serial bottleneck), 4 RX
        // shards must deliver >= 1.3x the aggregate throughput of 1.
        let one = sweep_rx_shards(UseCase::Nop, 1, 4, &[120]);
        let four = sweep_rx_shards(UseCase::Nop, 4, 4, &[120]);
        let (g1, g4) = (one[0].gbps, four[0].gbps);
        assert!(
            g4 >= 1.3 * g1,
            "4 RX shards must win >=1.3x at 120 peers: {g1:.3} vs {g4:.3} Gbps"
        );
        assert!(one[0].mpps > 0.0 && four[0].mpps > one[0].mpps);
    }

    #[test]
    fn rx_sharding_win_grows_with_peer_count() {
        // At low peer counts even one RX lane keeps up (the win must come
        // from saturation, not from a modelling constant); at high counts
        // the single lane pins the ceiling.
        let one = sweep_rx_shards(UseCase::Nop, 1, 4, &[20, 120]);
        let four = sweep_rx_shards(UseCase::Nop, 4, 4, &[20, 120]);
        let low = four[0].gbps / one[0].gbps;
        let high = four[1].gbps / one[1].gbps;
        assert!(
            high > low,
            "the RX-sharding win must grow with peers: {low:.2}x at 20 vs {high:.2}x at 120"
        );
    }

    #[test]
    fn uniform_fig10_numbers_unmoved_by_rx_pool() {
        // The guard-rail: the RX refactor must not move the uniform
        // Fig. 10 sharded numbers (big batched records amortise framing to
        // a sliver per packet, and the shipped sweep keeps the legacy
        // folded-RX timing model). 9.92 Gbps at 60 clients / 4 workers is
        // the pre-RX-pool baseline.
        let points = sweep_sharded(UseCase::Nop, 4, 16, &[60]);
        let gbps = points[0].gbps;
        assert!(
            (gbps - 9.92).abs() / 9.92 < 0.05,
            "uniform Fig. 10 must stay within 5% of the baseline: {gbps:.2} Gbps"
        );
        // And the batched path's measured framing share really is a
        // minority — the reason the uniform numbers cannot move (on the
        // small-record mix it is the majority; see
        // `rx_mix_is_framing_dominated`).
        let charge = measure_charge_sharded(UseCase::Nop, 1_500, 8, 16, 4);
        assert!(
            charge.rx_cycles * 2 <= charge.server_cycles,
            "batched records must amortise framing: rx {} of {}",
            charge.rx_cycles,
            charge.server_cycles
        );
    }

    #[test]
    fn event_loop_amortises_wakeups_on_the_small_record_mix() {
        // The measured input to the async model must show real
        // amortisation: with 8 ready peers per round, the event loop
        // drains many datagrams per wakeup, so the ratio sits far below
        // the call-driven front-end's 1.0.
        let (charge, ratio) =
            super::super::deploy::measure_charge_async(UseCase::Nop, RX_MIX_PAYLOAD, 4, 4, 4);
        assert!(
            ratio < 0.5,
            "event loop must amortise wakeups well below call-driven: {ratio:.3}"
        );
        assert!(ratio > 0.0, "wakeups must be counted at all");
        assert_eq!(charge.fragments, 1, "small records must not fragment");
        assert!(
            charge.rx_cycles <= charge.server_cycles,
            "rx share (framing + socket) within the measured total: rx {} of {}",
            charge.rx_cycles,
            charge.server_cycles
        );
    }

    #[test]
    fn event_driven_front_end_beats_call_driven_at_high_peer_counts() {
        // The acceptance bar: at 120 peers on the small-record mix, the
        // event-driven front-end must deliver >= 1.3x the aggregate
        // throughput of the call-driven one (same measured charge; the
        // only difference is the wakeup amortisation).
        let (charge, ratio) =
            super::super::deploy::measure_charge_async(UseCase::Nop, RX_MIX_PAYLOAD, 6, 4, 4);
        let call = sweep_async_ingress_measured(charge, ratio, 4, 4, &[120], false);
        let event = sweep_async_ingress_measured(charge, ratio, 4, 4, &[120], true);
        let (g_call, g_event) = (call[0].gbps, event[0].gbps);
        assert!(
            g_event >= 1.3 * g_call,
            "event-driven must win >=1.3x at 120 peers: {g_call:.3} vs {g_event:.3} Gbps"
        );
        assert!(call[0].wakeups_per_packet == 1.0);
        assert!(event[0].wakeups_per_packet < 0.5);
    }

    #[test]
    fn bulk_socket_io_amortises_syscalls_on_the_small_record_mix() {
        // The measured input to the syscall model must show real
        // amortisation: with 16 datagrams queued per peer socket at
        // drain time, a bulk-32 `recv_many` front-end moves many
        // datagrams per call, while the per-datagram front-end cannot
        // exceed one (its dry-check tail even drags it slightly below).
        let (charge_1, ratio_1) =
            super::super::deploy::measure_charge_wire(UseCase::Nop, RX_MIX_PAYLOAD, 4, 4, 2, 1);
        let (charge_32, ratio_32) =
            super::super::deploy::measure_charge_wire(UseCase::Nop, RX_MIX_PAYLOAD, 4, 4, 2, 32);
        assert!(ratio_1 <= 1.0, "per-datagram drain: {ratio_1:.3}");
        assert!(
            ratio_32 >= 8.0,
            "bulk-32 must amortise across deep queues: {ratio_32:.3}"
        );
        // The drained application work is bulk-invariant: identical
        // record mix, identical fragment shape.
        assert_eq!(charge_1.fragments, charge_32.fragments);
        assert_eq!(charge_1.payload_bytes, charge_32.payload_bytes);
    }

    #[test]
    fn bulk_32_beats_per_datagram_at_120_peers() {
        // The acceptance bar: at 120 peers on the small-record mix, the
        // bulk-32 transport must deliver >= 1.5x the aggregate
        // throughput of the per-datagram one (same metered work; the
        // only modelled difference is the syscall amortisation).
        let (charge_1, ratio_1) =
            super::super::deploy::measure_charge_wire(UseCase::Nop, RX_MIX_PAYLOAD, 6, 4, 2, 1);
        let (charge_32, ratio_32) =
            super::super::deploy::measure_charge_wire(UseCase::Nop, RX_MIX_PAYLOAD, 6, 4, 2, 32);
        let per = sweep_syscall_batch_measured(charge_1, 1, ratio_1, 2, 4, &[120]);
        let bulk = sweep_syscall_batch_measured(charge_32, 32, ratio_32, 2, 4, &[120]);
        let (g_per, g_bulk) = (per[0].gbps, bulk[0].gbps);
        assert!(
            g_bulk >= 1.5 * g_per,
            "bulk-32 must win >=1.5x at 120 peers: {g_per:.3} vs {g_bulk:.3} Gbps"
        );
        assert!(per[0].datagrams_per_call == 1.0);
        assert!(bulk[0].datagrams_per_call >= 8.0);
    }

    #[test]
    fn transport_backend_charges_shed_boundary_and_kernel_costs() {
        // The measured inputs to the backend comparison must separate
        // cleanly: the record mix and fragment shape are
        // backend-invariant, while ring/XDP charges shed the in-kernel
        // receive share and the socket boundary costs.
        let socket = super::super::deploy::measure_charge_transport(
            UseCase::Nop,
            RX_MIX_PAYLOAD,
            4,
            4,
            2,
            TRANSPORT_BACKEND_BULK,
            TransportKind::Virtual,
        )
        .0;
        let ring = super::super::deploy::measure_charge_transport(
            UseCase::Nop,
            RX_MIX_PAYLOAD,
            4,
            4,
            2,
            TRANSPORT_BACKEND_BULK,
            TransportKind::Ring,
        )
        .0;
        let xdp = super::super::deploy::measure_charge_transport(
            UseCase::Nop,
            RX_MIX_PAYLOAD,
            4,
            4,
            2,
            TRANSPORT_BACKEND_BULK,
            TransportKind::XdpFrame,
        )
        .0;
        assert_eq!(socket.fragments, ring.fragments);
        assert_eq!(socket.fragments, xdp.fragments);
        assert_eq!(socket.payload_bytes, xdp.payload_bytes);
        // Kernel-bypass delivery sheds at least the in-kernel receive
        // share per fragment from both the server total and the RX lane.
        let cost = endbox_netsim::cost::CostModel::calibrated();
        let shed = cost.kernel_rx_per_fragment * socket.fragments as u64;
        assert!(
            ring.server_cycles + shed <= socket.server_cycles,
            "ring server: {} vs socket {}",
            ring.server_cycles,
            socket.server_cycles
        );
        assert!(ring.rx_cycles + shed <= socket.rx_cycles);
        // The zero-copy backend additionally drops the per-byte copy, so
        // its RX lane is the cheapest of the three.
        assert!(xdp.rx_cycles < ring.rx_cycles);
        assert!(xdp.server_cycles <= ring.server_cycles);
    }

    #[test]
    fn ring_and_bypass_beat_bulk_sockets_at_120_peers() {
        // The acceptance bars: at 120 peers on the small-record mix,
        // the ring backend must deliver >= 1.3x and the zero-copy frame
        // backend >= 1.6x the aggregate throughput of the bulk-32
        // socket baseline (identical drained work; the differences are
        // the calibrated boundary models).
        let points = fig_transport_backend(&[120]);
        let gbps = |backend: &str| {
            points
                .iter()
                .find(|p| p.backend == backend && p.clients == 120)
                .map(|p| p.gbps)
                .expect("one row per backend")
        };
        let (socket, ring, xdp) = (gbps("socket"), gbps("ring"), gbps("xdp-frame"));
        assert!(
            ring >= 1.3 * socket,
            "ring must win >=1.3x at 120 peers: {socket:.3} vs {ring:.3} Gbps"
        );
        assert!(
            xdp >= 1.6 * socket,
            "xdp must win >=1.6x at 120 peers: {socket:.3} vs {xdp:.3} Gbps"
        );
        assert!(
            xdp >= ring,
            "zero-copy must not lose to the ring: {ring:.3} vs {xdp:.3} Gbps"
        );
    }

    #[test]
    fn adaptive_controller_holds_both_margin_bars() {
        // The acceptance bars for the zero-knob control plane, on the
        // CI-sized trace: within 5% of the *best* hand-tuned static
        // configuration at every step of both traces, and >= 1.3x the
        // *worst* static configuration at the sweep peak.
        let points = fig_adaptive_control(6);
        let (worst_vs_best, peak_vs_worst) = adaptive_control_margins(&points);
        assert!(
            worst_vs_best >= 0.95,
            "controller fell behind the best static config: {worst_vs_best:.3}x"
        );
        assert!(
            peak_vs_worst >= 1.3,
            "controller win over the worst static config regressed at the peak: \
             {peak_vs_worst:.2}x"
        );
    }

    #[test]
    fn elastic_resize_holds_both_margin_bars() {
        // The acceptance bars for structural elasticity, on the
        // CI-sized trace: within 10% of the *best* fixed (K, N) rung at
        // every diurnal step, and >= 1.3x the smallest fixed rung at
        // the peak.
        let points = fig_elastic_resize(6);
        let (worst_vs_best, peak_vs_smallest) = elastic_margins(&points);
        assert!(
            worst_vs_best >= 0.90,
            "elastic fell behind the best fixed rung: {worst_vs_best:.3}x"
        );
        assert!(
            peak_vs_smallest >= 1.3,
            "elastic win over the smallest fixed rung regressed at the peak: \
             {peak_vs_smallest:.2}x"
        );
    }

    #[test]
    fn elastic_rung_tracks_the_diurnal_curve() {
        // The trough picks the smallest rung, the peak the largest,
        // and the rung never shrinks while demand grows.
        let peak = ADAPTIVE_TRACE_PEAK;
        assert_eq!(elastic_rung_for(1, peak).name, "fixed-small");
        assert_eq!(elastic_rung_for(peak, peak).name, "fixed-large");
        let mut last = 0;
        for clients in 1..=peak {
            let rung = elastic_rung_for(clients, peak);
            assert!(
                rung.rx_shards >= last,
                "rung shrank while demand grew at {clients} clients"
            );
            last = rung.rx_shards;
        }
    }

    #[test]
    fn elastic_demo_grows_and_shrinks_the_real_stack() {
        // The replayed elastic row is only honest if the real resize
        // law both grows under the flood and shrinks back when idle.
        let stats = elastic_capacity_demo();
        assert!(stats.rx_grows >= 1, "demo never grew: {stats:?}");
        assert!(stats.rx_shrinks >= 1, "demo never shrank: {stats:?}");
        assert_eq!(stats.worker_grows, stats.rx_grows);
        assert_eq!(stats.worker_shrinks, stats.rx_shrinks);
    }

    #[test]
    fn heavy_tail_weights_are_normalisable_and_skewed() {
        let w = heavy_tail_weights(60);
        assert_eq!(w.len(), 60);
        assert!(w.iter().all(|&x| x > 0.0));
        // Elephants sit on clients 0, 4, 8, 12 in descending order.
        assert!(w[0] > w[4] && w[4] > w[8] && w[8] > w[12]);
        // The four elephants (one home shard at 4 workers) carry the
        // majority of the offered load.
        let total: f64 = w.iter().sum();
        let elephants = w[0] + w[4] + w[8] + w[12];
        assert!(
            elephants / total > 0.5,
            "heavy tail must be heavy: {:.2}",
            elephants / total
        );
    }

    #[test]
    fn server_cpu_saturates_for_central_deployments() {
        let points = sweep(Deployment::OpenVpnClick(UseCase::Idps));
        let last = points.last().unwrap();
        assert!(
            last.server_cpu > 0.9,
            "central middlebox CPU-bound: {}",
            last.server_cpu
        );
    }
}
