//! Fig. 10: server-side aggregate throughput and CPU usage as the number
//! of clients grows (200 Mbps offered per client, 1 500 B packets) — plus
//! the sharded multi-worker extension: the same sweep on the batched
//! EndBox-SGX path with the server running N worker shards instead of one
//! process per client.

use super::deploy::{measure_charge, measure_charge_sharded, Deployment};
use crate::use_cases::UseCase;
use endbox_netsim::pipeline::PacketCharge;
use endbox_netsim::pipeline::{run_scalability, ScalabilityConfig, ScalabilityResult};
use endbox_netsim::resource::MachineSpec;
use endbox_netsim::time::SimDuration;

/// One scalability data point.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityPoint {
    /// Deployment measured.
    pub deployment: String,
    /// Connected clients.
    pub clients: usize,
    /// Aggregate server-side goodput in Gbps.
    pub gbps: f64,
    /// Server CPU utilisation in [0, 1].
    pub server_cpu: f64,
}

/// Client counts plotted in Fig. 10.
pub fn client_counts() -> [usize; 9] {
    [1, 5, 10, 15, 20, 30, 40, 50, 60]
}

/// Scheduler-pressure penalty: the OpenVPN+Click baseline crosses two
/// processes per packet, and once the run queue exceeds the hardware
/// threads, every crossing pays wake-up latency and cache pollution that
/// grows with the number of runnable processes. This is what makes the
/// paper's OpenVPN+Click curve *decrease* beyond its 2.5 Gbps peak while
/// vanilla OpenVPN (no per-packet IPC) plateaus flat (§V-E, Fig. 10a).
const SCHED_PENALTY_PER_EXCESS_PROC: f64 = 0.015;

/// Adjusts a measured charge for the process pressure at `n_clients`.
fn charge_at_scale(
    deployment: Deployment,
    base: PacketCharge,
    vanilla_server_cycles: u64,
    n_clients: usize,
    hw_threads: usize,
) -> PacketCharge {
    let mut charge = base;
    if matches!(deployment, Deployment::OpenVpnClick(_)) {
        let procs = n_clients * deployment.server_procs_per_client();
        let excess = procs.saturating_sub(hw_threads) as f64;
        // The Click-side share of the per-packet work (fetch + IPC +
        // elements) is what the scheduler pressure amplifies.
        let click_side = base.server_cycles.saturating_sub(vanilla_server_cycles);
        charge.server_cycles = base.server_cycles
            + (click_side as f64 * SCHED_PENALTY_PER_EXCESS_PROC * excess) as u64;
    }
    charge
}

/// Runs the sweep for one deployment.
pub fn sweep(deployment: Deployment) -> Vec<ScalabilityPoint> {
    let base = measure_charge(deployment, 1_500, 16);
    let vanilla_server = if matches!(deployment, Deployment::OpenVpnClick(_)) {
        measure_charge(Deployment::VanillaOpenVpn, 1_500, 16).server_cycles
    } else {
        base.server_cycles
    };
    let hw_threads = MachineSpec::class_b().cores * 2;
    client_counts()
        .into_iter()
        .map(|n| {
            let charge = charge_at_scale(deployment, base, vanilla_server, n, hw_threads);
            let cfg = ScalabilityConfig {
                n_clients: n,
                per_client_bps: 200_000_000,
                payload_bytes: 1_500,
                duration: SimDuration::from_millis(20),
                n_client_machines: 5,
                contention_per_excess_process: 0.0,
                server_procs_per_client: deployment.server_procs_per_client(),
                server_single_process: deployment.server_single_process(),
                server_worker_shards: None,
            };
            let r: ScalabilityResult =
                run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), charge, &cfg);
            ScalabilityPoint {
                deployment: deployment.name(),
                clients: n,
                gbps: r.gbps,
                server_cpu: r.server_cpu,
            }
        })
        .collect()
}

/// Fig. 10a: the four deployments with the NOP function.
pub fn fig10a() -> Vec<ScalabilityPoint> {
    let mut out = Vec::new();
    for d in [
        Deployment::VanillaOpenVpn,
        Deployment::EndBoxSgx(UseCase::Nop),
        Deployment::VanillaClick(UseCase::Nop),
        Deployment::OpenVpnClick(UseCase::Nop),
    ] {
        out.extend(sweep(d));
    }
    out
}

/// Fig. 10b: the five use cases on EndBox SGX and OpenVPN+Click.
pub fn fig10b() -> Vec<ScalabilityPoint> {
    let mut out = Vec::new();
    for uc in UseCase::all() {
        out.extend(sweep(Deployment::EndBoxSgx(uc)));
        out.extend(sweep(Deployment::OpenVpnClick(uc)));
    }
    out
}

/// One data point of the sharded multi-worker sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedScalabilityPoint {
    /// Deployment measured (e.g. `EndBox SGX[NOP] sharded`).
    pub deployment: String,
    /// Connected clients.
    pub clients: usize,
    /// Server worker shards.
    pub workers: usize,
    /// Packets coalesced per sealed record.
    pub batch: usize,
    /// Aggregate server-side goodput in Gbps.
    pub gbps: f64,
    /// Aggregate server-side packet rate in Mpps.
    pub mpps: f64,
    /// Server CPU utilisation in [0, 1].
    pub server_cpu: f64,
}

/// Worker-shard counts swept by the sharded Fig. 10 extension.
pub fn worker_counts() -> [usize; 4] {
    [1, 2, 4, 8]
}

/// Runs the sharded sweep for one use case: per-packet charges are
/// measured on the **real** sharded stack
/// ([`measure_charge_sharded`]: N worker threads, multi-client batched
/// dispatch, per-shard pools), then replayed through the timing layer
/// with the server modelled as one process with `workers` shard flows.
pub fn sweep_sharded(
    use_case: UseCase,
    workers: usize,
    batch: usize,
    clients: &[usize],
) -> Vec<ShardedScalabilityPoint> {
    let charge = measure_charge_sharded(use_case, 1_500, 8, batch, workers);
    clients
        .iter()
        .map(|&n| {
            let cfg = ScalabilityConfig {
                n_clients: n,
                per_client_bps: 200_000_000,
                payload_bytes: 1_500,
                duration: SimDuration::from_millis(20),
                n_client_machines: 5,
                contention_per_excess_process: 0.0,
                server_procs_per_client: 1,
                server_single_process: false,
                server_worker_shards: Some(workers),
            };
            let r: ScalabilityResult =
                run_scalability(MachineSpec::class_a(), MachineSpec::class_b(), charge, &cfg);
            ShardedScalabilityPoint {
                deployment: format!("{} sharded", Deployment::EndBoxSgx(use_case).name()),
                clients: n,
                workers,
                batch,
                gbps: r.gbps,
                mpps: r.gbps * 1e9 / (charge.payload_bytes as f64 * 8.0) / 1e6,
                server_cpu: r.server_cpu,
            }
        })
        .collect()
}

/// The sharded Fig. 10 extension: the batched EndBox-SGX path (NOP use
/// case) for every worker count in [`worker_counts`].
pub fn fig10_sharded(batch: usize, clients: &[usize]) -> Vec<ShardedScalabilityPoint> {
    let mut out = Vec::new();
    for workers in worker_counts() {
        out.extend(sweep_sharded(UseCase::Nop, workers, batch, clients));
    }
    out
}

/// Convenience: the aggregate throughput at a specific client count.
pub fn gbps_at(points: &[ScalabilityPoint], deployment: &str, clients: usize) -> Option<f64> {
    points
        .iter()
        .find(|p| p.deployment == deployment && p.clients == clients)
        .map(|p| p.gbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endbox_scales_linearly_until_server_saturates() {
        let points = sweep(Deployment::EndBoxSgx(UseCase::Nop));
        let at = |n| gbps_at(&points, &Deployment::EndBoxSgx(UseCase::Nop).name(), n).unwrap();
        // Linear region: 5 -> 10 -> 20 clients roughly doubles.
        assert!(
            (at(10) / at(5) - 2.0).abs() < 0.2,
            "{} vs {}",
            at(10),
            at(5)
        );
        assert!((at(20) / at(10) - 2.0).abs() < 0.2);
        // Plateau at roughly the paper's 6.5 Gbps (±20%).
        let plateau = at(60);
        assert!((plateau - 6.5).abs() / 6.5 < 0.2, "plateau {plateau}");
    }

    #[test]
    fn endbox_beats_openvpn_click_at_sixty_clients() {
        let endbox = sweep(Deployment::EndBoxSgx(UseCase::Firewall));
        let central = sweep(Deployment::OpenVpnClick(UseCase::Firewall));
        let e = endbox.last().unwrap().gbps;
        let c = central.last().unwrap().gbps;
        // Paper: 2.6x for lightweight use cases.
        let factor = e / c;
        assert!(factor > 1.8, "EndBox should win clearly: {factor:.2}x");
    }

    #[test]
    fn compute_heavy_use_cases_widen_the_gap() {
        let light = sweep(Deployment::OpenVpnClick(UseCase::Firewall));
        let heavy = sweep(Deployment::OpenVpnClick(UseCase::Idps));
        let l = light.last().unwrap().gbps;
        let h = heavy.last().unwrap().gbps;
        assert!(
            h < l,
            "IDPS saturates the central server earlier: {h} vs {l}"
        );
    }

    #[test]
    fn sharded_batched_path_scales_with_workers() {
        // The acceptance bar: ≥2x aggregate throughput at 4 workers vs 1
        // on the batched EndBox-SGX path.
        let one = sweep_sharded(UseCase::Nop, 1, 16, &[60]);
        let four = sweep_sharded(UseCase::Nop, 4, 16, &[60]);
        let (g1, g4) = (one[0].gbps, four[0].gbps);
        assert!(
            g4 >= 2.0 * g1,
            "4 workers must at least double 1 worker: {g1:.2} vs {g4:.2} Gbps"
        );
        assert!(one[0].mpps > 0.0 && four[0].mpps > one[0].mpps);
    }

    #[test]
    fn sharded_charge_matches_single_server_work() {
        // Sharding redistributes the per-packet work, it must not change
        // its total: the measured per-packet server cycles of a 4-worker
        // sharded stack stay close to the 1-worker stack's.
        let one = measure_charge_sharded(UseCase::Nop, 1_500, 4, 16, 1);
        let four = measure_charge_sharded(UseCase::Nop, 1_500, 4, 16, 4);
        let tol = one.server_cycles / 5;
        assert!(
            four.server_cycles.abs_diff(one.server_cycles) <= tol.max(2_000),
            "per-packet server work must be worker-count independent: {} vs {}",
            one.server_cycles,
            four.server_cycles
        );
        assert_eq!(one.payload_bytes, four.payload_bytes);
    }

    #[test]
    fn server_cpu_saturates_for_central_deployments() {
        let points = sweep(Deployment::OpenVpnClick(UseCase::Idps));
        let last = points.last().unwrap();
        assert!(
            last.server_cpu > 0.9,
            "central middlebox CPU-bound: {}",
            last.server_cpu
        );
    }
}
