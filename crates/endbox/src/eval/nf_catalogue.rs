//! The stateful NF catalogue over the order-preserving batched datapath.
//!
//! PR 9 made `Router::process_batch` order-preserving across arbitrary
//! fan-out/re-merge graphs, which unblocks running *stateful* network
//! functions — NAT, rate limiting, connection tracking — on the batched
//! path: their flow tables observe packets in exactly the order the
//! single-packet path would feed them, so batching is purely a
//! boundary-cost optimisation and never a semantic change.
//!
//! This experiment installs a realistic stateful chain (connection
//! tracker → stateful NAT → token bucket, with a `Tee` accounting
//! fan-out) through the paper's Fig. 5 reconfiguration cycle and drives
//! three adversarial traffic mixes through the full EndBox-SGX stack:
//!
//! * **flood** — a small number of flows at line rate (NAT table is hot,
//!   every packet hits an established mapping);
//! * **heavy-tail** — two elephant flows carrying most bytes plus a tail
//!   of one-packet mice (constant flow-table churn);
//! * **frag-mix** — alternating oversize packets (fragmented by the VPN
//!   into several datagrams) and minimum-size runts (worst case for
//!   per-record framing).
//!
//! Each mix is measured twice on fresh scenarios: per-packet ecalls
//! (`batch = 1`) vs the batched datapath (`batch = 16`). The win comes
//! from amortising the enclave transition, Click traversal set-up and
//! record seal over the batch; the assert floor of 1.3x is wired into
//! `exp_nf_catalogue` and CI.

use crate::scenario::Scenario;
use crate::server::Delivery;
use crate::use_cases::UseCase;
use endbox_netsim::pipeline::{run_single_flow, PacketCharge};
use endbox_netsim::resource::{Link, MachineSpec};
use endbox_netsim::traffic::benign_payload;
use endbox_netsim::Packet;
use rand::SeedableRng;

/// Batch depth of the batched datapath run (matches the default of
/// [`crate::eval::throughput::batch_size`]).
pub const NF_BATCH: usize = 16;

/// The three traffic mixes, in report order.
pub const NF_MIXES: [&str; 3] = ["flood", "heavy-tail", "frag-mix"];

/// The stateful chain installed via the Fig. 5 cycle. The `Tee` fans
/// every packet out to an accounting branch, so the batched traversal
/// exercises the order-preserving fan-out scheduler on the hot path.
pub fn nf_chain_config() -> &'static str {
    "FromDevice(tun0) -> ct :: ConnTracker(MAX 4096) -> tee :: Tee(2);\n\
     tee[0] -> nat :: IPRewriter(SRC 198.51.100.7, PORTS 20000 60000)\n\
       -> tb :: TokenBucket(RATE 100000000, BURST 1000000) -> ToDevice(tun0);\n\
     tee[1] -> acct :: Counter -> Discard;\n\
     ct[1] -> Discard; nat[1] -> Discard; tb[1] -> Discard;"
}

/// Builds the deterministic packet list for `mix`. Every packet carries
/// its position in the first four payload bytes so order preservation is
/// checkable end to end (the NAT rewrites addresses/ports, not payloads).
///
/// # Panics
///
/// Panics on an unknown mix name (a bug in the caller).
pub fn mix_packets(mix: &str) -> Vec<Packet> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x9f21);
    let mut packets = Vec::new();
    let mut push = |packets: &mut Vec<Packet>, flow: u16, len: usize| {
        let idx = packets.len() as u32;
        let mut payload = benign_payload(len.max(4), &mut rng);
        payload[..4].copy_from_slice(&idx.to_be_bytes());
        packets.push(Packet::tcp(
            Scenario::client_addr(0),
            Scenario::network_addr(),
            40_000 + flow,
            5_001,
            idx,
            &payload,
        ));
    };
    match mix {
        // 48 packets over 4 flows: NAT and conntrack tables stay hot.
        "flood" => {
            for i in 0..48u16 {
                push(&mut packets, i % 4, 512);
            }
        }
        // 2 elephants carry 32 MTU-sized packets; 16 mice send one runt
        // each, interleaved, so the flow table churns mid-batch.
        "heavy-tail" => {
            for i in 0..48u16 {
                if i % 3 == 2 {
                    push(&mut packets, 100 + i / 3, 96);
                } else {
                    push(&mut packets, i % 2, 1_400);
                }
            }
        }
        // Oversize packets that fragment into several VPN datagrams,
        // alternating with minimum-size runts, over 8 flows.
        "frag-mix" => {
            for i in 0..32u16 {
                push(&mut packets, i % 8, if i % 2 == 0 { 2_900 } else { 64 });
            }
        }
        other => panic!("unknown NF mix {other}"),
    }
    packets
}

/// Stateful-element activity read back from the client's Click handlers
/// after the batched run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NfChainStats {
    /// NAT flow-table entries.
    pub nat_flows: u64,
    /// Packets rewritten by the NAT.
    pub nat_rewritten: u64,
    /// Connection-tracker flow entries.
    pub conn_flows: u64,
    /// Token-bucket conformant packets.
    pub conformed: u64,
    /// Copies produced by the accounting `Tee` branch.
    pub fanout_copies: u64,
}

/// One mix's batched-vs-single comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct NfMixResult {
    /// Mix name (see [`NF_MIXES`]).
    pub mix: &'static str,
    /// Packets per replay of the mix.
    pub packets: usize,
    /// Mean IP datagram length of the mix in bytes.
    pub avg_bytes: usize,
    /// Single-packet datapath throughput (Mbps).
    pub single_mbps: f64,
    /// Batched datapath throughput (Mbps), batch depth [`NF_BATCH`].
    pub batched_mbps: f64,
    /// `batched_mbps / single_mbps`.
    pub speedup: f64,
    /// Stateful-element activity of the batched run.
    pub stats: NfChainStats,
}

fn replay_mbps(charge: PacketCharge) -> f64 {
    let mut link = Link::ten_gbps();
    run_single_flow(
        MachineSpec::class_a(),
        MachineSpec::class_a(),
        &mut link,
        std::iter::repeat_n(charge, 2_000),
    )
    .mbps
}

fn handler_u64(scenario: &mut Scenario, element: &str, handler: &str) -> u64 {
    scenario.clients[0]
        .click_handler(element, handler)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Runs `mix` packets through a fresh EndBox-SGX NOP scenario with the
/// NF chain installed, `samples` replays at the given batch depth.
/// Returns the per-packet charge plus the chain's handler stats, and
/// asserts end-to-end order preservation on every replay.
fn run_mix(mix: &str, batch_size: usize, samples: usize) -> (PacketCharge, NfChainStats) {
    let packets = mix_packets(mix);
    let mut scenario = Scenario::enterprise(1, UseCase::Nop)
        .seed(0x9f00)
        .build()
        .expect("scenario must build");
    scenario
        .update_config(nf_chain_config(), 0)
        .expect("NF chain must install");

    let client_meter = scenario.clients[0].meter().clone();
    let server_meter = scenario.server_meter.clone();

    // One un-metered warm-up replay: flow tables reach steady state and
    // first-use costs stay out of the measurement, identically for the
    // single and batched runs.
    drive(&mut scenario, &packets, batch_size);
    client_meter.take();
    server_meter.take();

    let mut wire_total = 0usize;
    let mut frag_total = 0usize;
    for _ in 0..samples {
        let (wire, frags) = drive(&mut scenario, &packets, batch_size);
        wire_total += wire;
        frag_total += frags;
    }

    let total = (samples * packets.len()) as u64;
    let avg_bytes = packets.iter().map(Packet::len).sum::<usize>() / packets.len();
    let charge = PacketCharge {
        payload_bytes: avg_bytes,
        wire_bytes: wire_total / total as usize,
        fragments: (frag_total.div_ceil(total as usize)).max(1),
        client_cycles: client_meter.take() / total,
        server_cycles: server_meter.take() / total,
        rx_cycles: 0,
        dropped: false,
    };
    let stats = NfChainStats {
        nat_flows: handler_u64(&mut scenario, "nat", "flows"),
        nat_rewritten: handler_u64(&mut scenario, "nat", "rewritten"),
        conn_flows: handler_u64(&mut scenario, "ct", "flows"),
        conformed: handler_u64(&mut scenario, "tb", "conformed"),
        fanout_copies: handler_u64(&mut scenario, "acct", "count"),
    };
    (charge, stats)
}

/// Pushes one replay of `packets` through the client and server at the
/// given batch depth; returns (wire bytes, datagram count) and asserts
/// that the server delivered every packet in its original order.
fn drive(scenario: &mut Scenario, packets: &[Packet], batch_size: usize) -> (usize, usize) {
    let mut wire = 0usize;
    let mut frags = 0usize;
    let mut delivered: Vec<Packet> = Vec::with_capacity(packets.len());
    for chunk in packets.chunks(batch_size) {
        let batch: Vec<Packet> = chunk.to_vec();
        let datagrams = if batch_size == 1 {
            let [pkt] = <[Packet; 1]>::try_from(batch).expect("chunk of one");
            scenario.clients[0].send_packet(pkt).expect("send")
        } else {
            scenario.clients[0].send_batch(batch).expect("send batch")
        };
        frags += datagrams.len();
        for d in &datagrams {
            wire += d.len();
            match scenario.server.receive_datagram(0, d).expect("deliver") {
                Delivery::Pending => {}
                Delivery::Packet { packet, .. } => delivered.push(packet),
                Delivery::PacketBatch { packets, .. } => delivered.extend(packets),
                other => panic!("unexpected delivery: {other:?}"),
            }
        }
    }
    assert_eq!(
        delivered.len(),
        packets.len(),
        "the NF chain must not drop conformant traffic"
    );
    for (i, pkt) in delivered.iter().enumerate() {
        let mut tag = [0u8; 4];
        tag.copy_from_slice(&pkt.app_payload()[..4]);
        assert_eq!(
            u32::from_be_bytes(tag),
            i as u32,
            "order violated at delivery position {i} (batch {batch_size})"
        );
    }
    (wire, frags)
}

/// Runs the full grid: every mix, single vs batched.
pub fn fig_nf_catalogue(samples: usize) -> Vec<NfMixResult> {
    NF_MIXES
        .iter()
        .map(|&mix| {
            let packets = mix_packets(mix);
            let avg_bytes = packets.iter().map(Packet::len).sum::<usize>() / packets.len();
            let (single_charge, _) = run_mix(mix, 1, samples);
            let (batched_charge, stats) = run_mix(mix, NF_BATCH, samples);
            let single_mbps = replay_mbps(single_charge);
            let batched_mbps = replay_mbps(batched_charge);
            NfMixResult {
                mix,
                packets: packets.len(),
                avg_bytes,
                single_mbps,
                batched_mbps,
                speedup: batched_mbps / single_mbps,
                stats,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_deterministic_and_tagged() {
        for mix in NF_MIXES {
            let a = mix_packets(mix);
            let b = mix_packets(mix);
            assert_eq!(a.len(), b.len(), "{mix}");
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(x.bytes(), y.bytes(), "{mix} packet {i}");
                let mut tag = [0u8; 4];
                tag.copy_from_slice(&x.app_payload()[..4]);
                assert_eq!(u32::from_be_bytes(tag), i as u32, "{mix} tag {i}");
            }
        }
    }

    #[test]
    fn frag_mix_actually_fragments() {
        let packets = mix_packets("frag-mix");
        assert!(packets.iter().any(|p| p.len() > 2_000), "needs oversize");
        assert!(packets.iter().any(|p| p.len() < 200), "needs runts");
    }

    #[test]
    fn batched_nf_chain_beats_single_by_1_3x() {
        // The CI floor: the batched datapath must win by >= 1.3x on the
        // flood mix (the headline ecall-amortisation case). Order
        // preservation is asserted inside every run_mix replay.
        let (single, _) = run_mix("flood", 1, 4);
        let (batched, stats) = run_mix("flood", NF_BATCH, 4);
        let single_mbps = replay_mbps(single);
        let batched_mbps = replay_mbps(batched);
        assert!(
            batched_mbps >= 1.3 * single_mbps,
            "flood speedup regressed: single={single_mbps:.1} batched={batched_mbps:.1}"
        );
        // The stateful chain actually did stateful work.
        assert_eq!(stats.nat_flows, 4, "flood has 4 flows");
        assert_eq!(stats.conn_flows, 4);
        assert!(stats.nat_rewritten >= 48 * 5, "{stats:?}");
        assert_eq!(stats.conformed, stats.nat_rewritten, "{stats:?}");
        assert_eq!(stats.fanout_copies, stats.nat_rewritten, "{stats:?}");
    }

    #[test]
    fn heavy_tail_and_frag_mix_preserve_order_and_win() {
        for (mix, floor) in [("heavy-tail", 1.3), ("frag-mix", 1.3)] {
            let (single, _) = run_mix(mix, 1, 2);
            let (batched, stats) = run_mix(mix, NF_BATCH, 2);
            let s = replay_mbps(single);
            let b = replay_mbps(batched);
            assert!(
                b >= floor * s,
                "{mix} speedup regressed: single={s:.1} batched={b:.1} floor={floor}"
            );
            assert!(stats.nat_flows > 0, "{mix}: {stats:?}");
        }
    }
}
