//! Single-flow throughput experiments: Fig. 8 (packet-size sweep) and
//! Fig. 9 (per-use-case throughput at 1 500 B).

use super::deploy::{measure_charge, measure_charge_batched, Deployment};
use crate::use_cases::UseCase;
use endbox_netsim::pipeline::{run_single_flow, ThroughputResult};
use endbox_netsim::resource::{Link, MachineSpec};

/// Packets replayed through the timing layer per data point.
const REPLAY_PACKETS: usize = 2_000;
/// Real packets pushed through the functional stack per data point.
const MEASURE_SAMPLES: usize = 16;
/// Default packets coalesced per record on the batched datapath data
/// points (overridable via the `ENDBOX_BATCH_SIZE` environment variable —
/// see [`batch_size`]; the latency-vs-throughput trade-off behind the
/// choice is quantified by
/// [`crate::eval::optimizations::batch_size_ablation`]).
pub const DEFAULT_BATCH_SIZE: usize = 16;

/// Parses a batch-size override; `None`/garbage/0 fall back to
/// [`DEFAULT_BATCH_SIZE`].
pub fn parse_batch_size(raw: Option<&str>) -> usize {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&b| b >= 1)
        .unwrap_or(DEFAULT_BATCH_SIZE)
}

/// The batch size in force for batched eval rows: `ENDBOX_BATCH_SIZE`
/// from the environment, or [`DEFAULT_BATCH_SIZE`].
pub fn batch_size() -> usize {
    parse_batch_size(std::env::var("ENDBOX_BATCH_SIZE").ok().as_deref())
}

/// One measured point.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputPoint {
    /// Deployment measured.
    pub deployment: String,
    /// Tunnel payload size in bytes.
    pub payload: usize,
    /// Goodput in Mbps.
    pub mbps: f64,
}

/// Runs one single-flow measurement (two class-A machines, 10 Gbps link —
/// the §V-D setup).
pub fn single_flow_mbps(deployment: Deployment, payload: usize) -> f64 {
    let charge = measure_charge(deployment, payload, MEASURE_SAMPLES);
    let mut link = Link::ten_gbps();
    let result: ThroughputResult = run_single_flow(
        MachineSpec::class_a(),
        MachineSpec::class_a(),
        &mut link,
        std::iter::repeat_n(charge, REPLAY_PACKETS),
    );
    result.mbps
}

/// Like [`single_flow_mbps`], but on the batched datapath: `batch`
/// packets per enclave transition and per sealed record.
pub fn single_flow_mbps_batched(deployment: Deployment, payload: usize, batch: usize) -> f64 {
    let charge = measure_charge_batched(deployment, payload, MEASURE_SAMPLES, batch);
    let mut link = Link::ten_gbps();
    let result: ThroughputResult = run_single_flow(
        MachineSpec::class_a(),
        MachineSpec::class_a(),
        &mut link,
        std::iter::repeat_n(charge, REPLAY_PACKETS),
    );
    result.mbps
}

/// The payload sizes of Fig. 8 (the 64 KB point is capped at the IPv4
/// maximum payload).
pub fn fig8_sizes() -> [usize; 6] {
    [256, 1_024, 1_500, 4_096, 16_384, 65_000]
}

/// The four set-ups of Fig. 8.
pub fn fig8_deployments() -> [Deployment; 4] {
    [
        Deployment::VanillaOpenVpn,
        Deployment::OpenVpnClick(UseCase::Nop),
        Deployment::EndBoxSim(UseCase::Nop),
        Deployment::EndBoxSgx(UseCase::Nop),
    ]
}

/// Fig. 8: average maximum throughput for packet sizes 256 B – 64 KB.
pub fn fig8() -> Vec<ThroughputPoint> {
    let mut out = Vec::new();
    for deployment in fig8_deployments() {
        for payload in fig8_sizes() {
            out.push(ThroughputPoint {
                deployment: deployment.name(),
                payload,
                mbps: single_flow_mbps(deployment, payload),
            });
        }
    }
    out
}

/// Fig. 8 companion: the same sweep on the batched datapath
/// ([`batch_size`] packets per record) for the two bracketing set-ups —
/// vanilla OpenVPN (record coalescing only) and EndBox SGX (record
/// coalescing + one enclave transition per batch).
pub fn fig8_batched() -> Vec<ThroughputPoint> {
    let batch = batch_size();
    let mut out = Vec::new();
    for deployment in [
        Deployment::VanillaOpenVpn,
        Deployment::EndBoxSgx(UseCase::Nop),
    ] {
        for payload in fig8_sizes() {
            out.push(ThroughputPoint {
                deployment: format!("{} +batch{batch}", deployment.name()),
                payload,
                mbps: single_flow_mbps_batched(deployment, payload, batch),
            });
        }
    }
    out
}

/// Fig. 9: NOP/LB/FW/IDPS/DDoS at 1 500 B for OpenVPN+Click and EndBox
/// SGX.
pub fn fig9() -> Vec<ThroughputPoint> {
    let mut out = Vec::new();
    for uc in UseCase::all() {
        for deployment in [Deployment::OpenVpnClick(uc), Deployment::EndBoxSgx(uc)] {
            out.push(ThroughputPoint {
                deployment: deployment.name(),
                payload: 1_500,
                mbps: single_flow_mbps(deployment, 1_500),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_grows_with_packet_size() {
        let small = single_flow_mbps(Deployment::VanillaOpenVpn, 256);
        let large = single_flow_mbps(Deployment::VanillaOpenVpn, 16_384);
        assert!(large > 3.0 * small, "small={small} large={large}");
    }

    #[test]
    fn fig8_shape_single_client() {
        // The paper's headline single-flow shape at 1500B:
        // vanilla > EndBox SIM > EndBox SGX, with SGX ~530 Mbps.
        let vanilla = single_flow_mbps(Deployment::VanillaOpenVpn, 1_500);
        let sim = single_flow_mbps(Deployment::EndBoxSim(UseCase::Nop), 1_500);
        let sgx = single_flow_mbps(Deployment::EndBoxSgx(UseCase::Nop), 1_500);
        assert!(
            vanilla > sim && sim > sgx,
            "vanilla={vanilla} sim={sim} sgx={sgx}"
        );
        // Paper: 813 / 720 / 530 Mbps. Accept ±25%.
        assert!((vanilla - 813.0).abs() / 813.0 < 0.25, "vanilla={vanilla}");
        assert!((sim - 720.0).abs() / 720.0 < 0.25, "sim={sim}");
        assert!((sgx - 530.0).abs() / 530.0 < 0.25, "sgx={sgx}");
    }

    #[test]
    fn batched_path_outperforms_single_for_small_packets() {
        // Per-packet fixed costs dominate at small payloads, so batching
        // must help most there — on SGX especially, where the enclave
        // transition is the largest fixed cost.
        let single = single_flow_mbps(Deployment::EndBoxSgx(UseCase::Nop), 256);
        let batched =
            single_flow_mbps_batched(Deployment::EndBoxSgx(UseCase::Nop), 256, DEFAULT_BATCH_SIZE);
        assert!(
            batched > 1.5 * single,
            "batched={batched} single={single}: batching must amortise fixed costs"
        );
    }

    #[test]
    fn batch_of_one_matches_single_path() {
        let single = single_flow_mbps(Deployment::EndBoxSgx(UseCase::Nop), 1_500);
        let batch1 = single_flow_mbps_batched(Deployment::EndBoxSgx(UseCase::Nop), 1_500, 1);
        let diff = (single - batch1).abs() / single;
        assert!(
            diff < 0.02,
            "batch=1 must degrade to the single path: {single} vs {batch1}"
        );
    }

    #[test]
    fn batch_size_knob_parses_and_defaults() {
        assert_eq!(parse_batch_size(None), DEFAULT_BATCH_SIZE);
        assert_eq!(parse_batch_size(Some("8")), 8);
        assert_eq!(parse_batch_size(Some(" 32 ")), 32);
        assert_eq!(parse_batch_size(Some("0")), DEFAULT_BATCH_SIZE);
        assert_eq!(parse_batch_size(Some("not a number")), DEFAULT_BATCH_SIZE);
    }

    #[test]
    fn fig9_idps_is_heavier_than_nop() {
        let nop = single_flow_mbps(Deployment::EndBoxSgx(UseCase::Nop), 1_500);
        let idps = single_flow_mbps(Deployment::EndBoxSgx(UseCase::Idps), 1_500);
        assert!(idps < nop, "idps={idps} nop={nop}");
        // Paper: 530 vs 422 -> ~20% drop. Accept a broad band.
        let drop = (nop - idps) / nop;
        assert!(drop > 0.08 && drop < 0.45, "relative drop {drop}");
    }
}
