//! Deployments under evaluation and per-packet charge measurement.
//!
//! [`measure_charge`] builds the *real* functional stack (CA, attestation,
//! handshake, enclave, Click), pushes sample packets through it, and reads
//! the cycle meters — the resulting [`PacketCharge`] is then replayed
//! through the [`endbox_netsim::pipeline`] timing layer. This keeps every
//! reported number tied to the actual protocol/middlebox code.

use crate::client::TrustLevel;
use crate::scenario::Scenario;
use crate::use_cases::UseCase;
use endbox_click::element::ElementEnv;
use endbox_click::Router;
use endbox_netsim::cost::{CostModel, CycleMeter};
use endbox_netsim::net::TransportKind;
use endbox_netsim::pipeline::PacketCharge;
use endbox_netsim::traffic::benign_payload;
use endbox_netsim::Packet;
use rand::SeedableRng;

/// Cycles a plain (non-VPN) sender spends per packet in the kernel path —
/// used only by the vanilla-Click deployment where clients run bare iperf.
const KERNEL_SEND_FIXED: u64 = 3_500;
/// Per-byte kernel copy cost for the same path.
const KERNEL_SEND_PER_BYTE: f64 = 0.5;

/// A middlebox deployment from §V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deployment {
    /// Unmodified OpenVPN, no middlebox (baseline).
    VanillaOpenVpn,
    /// OpenVPN with a server-side Click instance (centralised middlebox).
    OpenVpnClick(UseCase),
    /// Server-side Click without any VPN (single process).
    VanillaClick(UseCase),
    /// EndBox in SDK simulation mode.
    EndBoxSim(UseCase),
    /// EndBox on SGX hardware.
    EndBoxSgx(UseCase),
}

impl Deployment {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> String {
        match self {
            Deployment::VanillaOpenVpn => "vanilla OpenVPN".to_string(),
            Deployment::OpenVpnClick(uc) => format!("OpenVPN+Click[{uc}]"),
            Deployment::VanillaClick(uc) => format!("vanilla Click[{uc}]"),
            Deployment::EndBoxSim(uc) => format!("EndBox SIM[{uc}]"),
            Deployment::EndBoxSgx(uc) => format!("EndBox SGX[{uc}]"),
        }
    }

    /// Whether the server runs one extra process per client (the attached
    /// Click instance of OpenVPN+Click).
    pub fn server_procs_per_client(&self) -> usize {
        match self {
            Deployment::OpenVpnClick(_) => 2,
            _ => 1,
        }
    }

    /// Whether all server work serialises in one process (vanilla Click).
    pub fn server_single_process(&self) -> bool {
        matches!(self, Deployment::VanillaClick(_))
    }
}

/// Measures the per-packet cycle charges of `deployment` for tunnel
/// payloads of `payload_len` bytes by running `samples` packets through
/// the real stack.
///
/// # Panics
///
/// Panics if the deployment cannot be constructed (a bug in the harness).
pub fn measure_charge(deployment: Deployment, payload_len: usize, samples: usize) -> PacketCharge {
    match deployment {
        Deployment::VanillaClick(uc) => measure_vanilla_click(uc, payload_len, samples),
        _ => measure_vpn_stack(deployment, payload_len, samples),
    }
}

fn measure_vpn_stack(deployment: Deployment, payload_len: usize, samples: usize) -> PacketCharge {
    measure_vpn_stack_batched(deployment, payload_len, samples, 1)
}

/// Like [`measure_charge`], but pushes `batch_size` packets per batch
/// through the batched datapath (`send_batch` / batched server delivery).
/// `batch_size == 1` degrades to the single-packet path. Returned charges
/// are per packet.
///
/// # Panics
///
/// Panics if the deployment cannot be constructed, or for
/// [`Deployment::VanillaClick`] with `batch_size > 1` (that deployment
/// has no VPN; batch it at the router level instead).
pub fn measure_charge_batched(
    deployment: Deployment,
    payload_len: usize,
    samples: usize,
    batch_size: usize,
) -> PacketCharge {
    match deployment {
        Deployment::VanillaClick(uc) => {
            assert_eq!(batch_size, 1, "vanilla Click has no VPN record batching");
            measure_vanilla_click(uc, payload_len, samples)
        }
        _ => measure_vpn_stack_batched(deployment, payload_len, samples, batch_size),
    }
}

fn measure_vpn_stack_batched(
    deployment: Deployment,
    payload_len: usize,
    samples: usize,
    batch_size: usize,
) -> PacketCharge {
    let (trust, use_case, server_click) = match deployment {
        Deployment::VanillaOpenVpn => (TrustLevel::Untrusted, UseCase::Nop, None),
        Deployment::OpenVpnClick(uc) => (
            TrustLevel::Untrusted,
            UseCase::Nop,
            Some(uc.server_click_config()),
        ),
        Deployment::EndBoxSim(uc) => (TrustLevel::Simulation, uc, None),
        Deployment::EndBoxSgx(uc) => (TrustLevel::Hardware, uc, None),
        Deployment::VanillaClick(_) => unreachable!("handled by caller"),
    };

    let mut builder = Scenario::enterprise(1, use_case).trust(trust).seed(0xbe9c);
    if let Some(cfg) = &server_click {
        builder = builder.server_click(cfg);
    }
    let mut scenario = builder.build().expect("deployment must build");

    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let payload = benign_payload(payload_len, &mut rng);
    let client_meter = scenario.clients[0].meter().clone();
    let server_meter = scenario.server_meter.clone();

    // Warm-up packet (first-use costs stay out of the steady state).
    scenario.send_from_client(0, &payload).expect("warm-up");
    client_meter.take();
    server_meter.take();

    let build_packet = || {
        Packet::tcp(
            Scenario::client_addr(0),
            Scenario::network_addr(),
            40_000,
            5001,
            0,
            &payload,
        )
    };

    let mut wire_bytes_total = 0usize;
    let mut fragments_total = 0usize;
    for _ in 0..samples {
        let datagrams = if batch_size == 1 {
            let datagrams = scenario.clients[0]
                .send_packet(build_packet())
                .expect("send");
            for d in &datagrams {
                scenario.server.receive_datagram(0, d).expect("deliver");
            }
            datagrams
        } else {
            let packets: Vec<Packet> = (0..batch_size).map(|_| build_packet()).collect();
            let datagrams = scenario.clients[0].send_batch(packets).expect("send batch");
            for d in &datagrams {
                scenario.server.receive_datagram(0, d).expect("deliver");
            }
            datagrams
        };
        fragments_total += datagrams.len();
        wire_bytes_total += datagrams.iter().map(Vec::len).sum::<usize>();
    }

    let packets_total = (samples * batch_size) as u64;
    PacketCharge {
        payload_bytes: payload_len + 40, // payload + IP/TCP headers
        wire_bytes: wire_bytes_total / packets_total as usize,
        fragments: (fragments_total.div_ceil(samples * batch_size)).max(1),
        client_cycles: client_meter.take() / packets_total,
        server_cycles: server_meter.take() / packets_total,
        rx_cycles: 0,
        dropped: false,
    }
}

/// Measures per-packet cycle charges on the **sharded** EndBox-SGX stack:
/// `n_clients` real clients each seal `batch_size`-packet batches, and
/// every round's datagrams go through a [`crate::ShardedEndBoxServer`]
/// with `workers` shard threads in one multi-client dispatch. Returned
/// charges are per packet; the worker threads charge the shared server
/// meter, so the *total* per-packet work matches the single server — the
/// sharding win is modelled by the timing layer's worker flows
/// (`server_worker_shards`), fed by this measured charge.
///
/// # Panics
///
/// Panics if the deployment cannot be constructed.
pub fn measure_charge_sharded(
    use_case: UseCase,
    payload_len: usize,
    samples: usize,
    batch_size: usize,
    workers: usize,
) -> PacketCharge {
    const N_CLIENTS: usize = 2;
    let mut scenario = Scenario::enterprise(N_CLIENTS, use_case)
        .trust(TrustLevel::Hardware)
        .seed(0xbe9c)
        .build_sharded(workers)
        .expect("sharded deployment must build");

    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let payload = benign_payload(payload_len, &mut rng);
    let client_meters: Vec<CycleMeter> =
        scenario.clients.iter().map(|c| c.meter().clone()).collect();
    let server_meter = scenario.server_meter.clone();

    let build_packet = |idx: usize, seq: u32| {
        Packet::tcp(
            Scenario::client_addr(idx),
            Scenario::network_addr(),
            40_000 + idx as u16,
            5001,
            seq,
            &payload,
        )
    };
    let round_batches = |seq: u32| -> Vec<(usize, Vec<Packet>)> {
        (0..N_CLIENTS)
            .map(|idx| {
                (
                    idx,
                    (0..batch_size)
                        .map(|i| build_packet(idx, seq + i as u32))
                        .collect(),
                )
            })
            .collect()
    };

    // Warm-up round (first-use costs stay out of the steady state).
    scenario
        .send_packet_batches_from_all(round_batches(0))
        .expect("warm-up");
    for m in &client_meters {
        m.take();
    }
    server_meter.take();

    let mut wire_bytes_total = 0usize;
    let mut fragments_total = 0usize;
    for round in 0..samples {
        // Seal on every client, then one sharded server dispatch — the
        // same split `send_packet_batches_from_all` performs, done here by
        // hand so the wire datagrams can be measured.
        let mut datagrams: Vec<(u64, Vec<u8>)> = Vec::new();
        for (idx, packets) in round_batches((round * batch_size) as u32) {
            for d in scenario.clients[idx].send_batch(packets).expect("send") {
                datagrams.push((idx as u64, d));
            }
        }
        fragments_total += datagrams.len();
        wire_bytes_total += datagrams.iter().map(|(_, d)| d.len()).sum::<usize>();
        for result in scenario.server.receive_datagrams(datagrams) {
            result.expect("deliver");
        }
    }

    let packets_total = (samples * batch_size * N_CLIENTS) as u64;
    let client_cycles: u64 = client_meters.iter().map(CycleMeter::take).sum::<u64>();
    PacketCharge {
        payload_bytes: payload_len + 40, // payload + IP/TCP headers
        wire_bytes: wire_bytes_total / packets_total as usize,
        fragments: (fragments_total.div_ceil(samples * batch_size * N_CLIENTS)).max(1),
        client_cycles: client_cycles / packets_total,
        server_cycles: server_meter.take() / packets_total,
        // The RX pool's amortised per-packet framing share: one
        // `vpn_server_per_fragment` per wire datagram, spread over the
        // packets a batched record coalesces.
        rx_cycles: CostModel::calibrated().vpn_server_per_fragment * fragments_total as u64
            / packets_total,
        dropped: false,
    }
}

/// Condenses the totals of a small-record measurement run into a
/// per-packet [`PacketCharge`]. Shared by [`measure_charge_rx`] and
/// [`measure_charge_async`] so the charge arithmetic (header constant,
/// fragment rounding, RX-lane share) cannot drift between the
/// call-driven and event-driven measurements their comparison rests on;
/// `socket_rx_cycles_total` is the socket-receive work the RX lanes paid
/// (0 when ingress is call-driven — no sockets in the loop).
fn small_record_charge(
    payload_len: usize,
    packets_total: u64,
    wire_bytes_total: usize,
    fragments_total: usize,
    client_cycles: u64,
    server_cycles: u64,
    socket_rx_cycles_total: u64,
) -> PacketCharge {
    let fragments = (fragments_total as u64).div_ceil(packets_total).max(1) as usize;
    PacketCharge {
        payload_bytes: payload_len + 40, // payload + IP/TCP headers
        wire_bytes: wire_bytes_total / packets_total as usize,
        fragments,
        client_cycles: client_cycles / packets_total,
        server_cycles: server_cycles / packets_total,
        // The RX-lane share: per-datagram framing plus whatever socket
        // receives the front-end performed (both run on RX threads).
        rx_cycles: CostModel::calibrated().vpn_server_per_fragment * fragments as u64
            + socket_rx_cycles_total / packets_total,
        dropped: false,
    }
}

/// Measures per-packet charges on the sharded stack under the
/// **many-peer small-record mix** that stresses the RX front-end:
/// `n_peers` real clients each seal single-packet records (no record
/// coalescing, so per-datagram reassembly/framing dominates the server
/// work), and every round's interleaved datagrams go through one
/// [`crate::ShardedEndBoxServer::receive_datagrams`] dispatch against a
/// server running `rx_shards` RX framing threads and `workers` crypto
/// shards. The returned charge splits out [`PacketCharge::rx_cycles`] —
/// the framing cost the RX pool paid (`vpn_server_per_fragment` per wire
/// datagram) — so the timing layer can run the RX lanes separately from
/// the worker lanes; the per-packet total is the measured total either
/// way.
///
/// # Panics
///
/// Panics if the deployment cannot be constructed.
pub fn measure_charge_rx(
    use_case: UseCase,
    payload_len: usize,
    samples: usize,
    workers: usize,
    rx_shards: usize,
) -> PacketCharge {
    const N_PEERS: usize = 6;
    const SINGLES_PER_PEER: usize = 4;
    let mut scenario = Scenario::enterprise(N_PEERS, use_case)
        .trust(TrustLevel::Hardware)
        .seed(0xbe9c)
        .rx_shards(rx_shards)
        .build_sharded(workers)
        .expect("sharded deployment must build");

    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let payload = benign_payload(payload_len, &mut rng);
    let client_meters: Vec<CycleMeter> =
        scenario.clients.iter().map(|c| c.meter().clone()).collect();
    let server_meter = scenario.server_meter.clone();

    let mut round = |seq: u32| -> Vec<(u64, Vec<u8>)> {
        let mut datagrams: Vec<(u64, Vec<u8>)> = Vec::new();
        // Peers interleave datagram-by-datagram: every record is its own
        // datagram (small-record mix), so the RX pool sees the worst-case
        // per-datagram framing load.
        for i in 0..SINGLES_PER_PEER {
            for idx in 0..N_PEERS {
                let pkt = Packet::tcp(
                    Scenario::client_addr(idx),
                    Scenario::network_addr(),
                    40_000 + idx as u16,
                    5001,
                    seq + i as u32,
                    &payload,
                );
                for d in scenario.clients[idx].send_packet(pkt).expect("send") {
                    datagrams.push((idx as u64, d));
                }
            }
        }
        datagrams
    };

    // Warm-up round (first-use costs stay out of the steady state).
    for result in scenario.server.receive_datagrams(round(0)) {
        result.expect("deliver");
    }
    for m in &client_meters {
        m.take();
    }
    server_meter.take();

    let mut wire_bytes_total = 0usize;
    let mut fragments_total = 0usize;
    for r in 1..=samples {
        let datagrams = round((r * SINGLES_PER_PEER) as u32);
        fragments_total += datagrams.len();
        wire_bytes_total += datagrams.iter().map(|(_, d)| d.len()).sum::<usize>();
        for result in scenario.server.receive_datagrams(datagrams) {
            result.expect("deliver");
        }
    }

    let packets_total = (samples * SINGLES_PER_PEER * N_PEERS) as u64;
    let client_cycles: u64 = client_meters.iter().map(CycleMeter::take).sum::<u64>();
    small_record_charge(
        payload_len,
        packets_total,
        wire_bytes_total,
        fragments_total,
        client_cycles,
        server_meter.take(),
        0,
    )
}

/// Measures per-packet charges on the sharded stack with the
/// **event-driven socket front-end** in the loop: the many-peer
/// small-record mix of [`measure_charge_rx`], but every datagram rides
/// the virtual wire into a per-peer server socket and the
/// [`crate::server::AsyncFrontEnd`] drains it (one poll group per RX
/// shard). Socket receives charge the server meter, so
/// [`PacketCharge::server_cycles`] includes the socket-layer work, and
/// [`PacketCharge::rx_cycles`] carries the framing + socket share that
/// runs on the RX lanes.
///
/// Returns the charge plus the measured **wakeups-per-datagram** ratio of
/// the event loop ([`crate::server::AsyncIngressStats`]): the
/// amortisation input to
/// [`endbox_netsim::pipeline::AsyncFrontEndModel::event_driven`] (a
/// call-driven front-end pays one wakeup per datagram by definition; the
/// event-loop cost itself is priced by the timing layer, not metered
/// here).
///
/// # Panics
///
/// Panics if the deployment cannot be constructed.
pub fn measure_charge_async(
    use_case: UseCase,
    payload_len: usize,
    samples: usize,
    workers: usize,
    rx_shards: usize,
) -> (PacketCharge, f64) {
    const N_PEERS: usize = 8;
    const SINGLES_PER_PEER: usize = 8;
    let mut scenario = Scenario::enterprise(N_PEERS, use_case)
        .trust(TrustLevel::Hardware)
        .seed(0xbe9c)
        .rx_shards(rx_shards)
        .async_ingress(true)
        .build_sharded(workers)
        .expect("sharded deployment must build");

    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let payload = benign_payload(payload_len, &mut rng);
    let client_meters: Vec<CycleMeter> =
        scenario.clients.iter().map(|c| c.meter().clone()).collect();
    let server_meter = scenario.server_meter.clone();

    // One round: peers interleave single-packet records (the small-record
    // RX mix), each sealed datagram shipped through the peer's socket,
    // then one event-loop drain.
    let run_round = |scenario: &mut crate::scenario::ShardedScenario, seq: u32| -> (usize, usize) {
        let mut datagrams = 0usize;
        let mut wire_bytes = 0usize;
        for i in 0..SINGLES_PER_PEER {
            for idx in 0..N_PEERS {
                let pkt = Packet::tcp(
                    Scenario::client_addr(idx),
                    Scenario::network_addr(),
                    40_000 + idx as u16,
                    5001,
                    seq + i as u32,
                    &payload,
                );
                let sealed = scenario.clients[idx].send_packet(pkt).expect("send");
                datagrams += sealed.len();
                wire_bytes += sealed.iter().map(Vec::len).sum::<usize>();
                scenario.send_wire_datagrams(idx as u64, sealed);
            }
        }
        for (_, result) in scenario.pump_async() {
            result.expect("deliver");
        }
        (datagrams, wire_bytes)
    };

    // Warm-up round (first-use costs stay out of the steady state).
    run_round(&mut scenario, 0);
    for m in &client_meters {
        m.take();
    }
    server_meter.take();
    let warm_stats = scenario.async_stats();

    let mut wire_bytes_total = 0usize;
    let mut fragments_total = 0usize;
    for r in 1..=samples {
        let (frags, bytes) = run_round(&mut scenario, (r * SINGLES_PER_PEER) as u32);
        fragments_total += frags;
        wire_bytes_total += bytes;
    }
    let stats = scenario.async_stats();
    let wakeups = stats.wakeups - warm_stats.wakeups;
    let drained = stats.datagrams - warm_stats.datagrams;
    assert_eq!(drained as usize, fragments_total, "every datagram drained");
    let wakeups_per_datagram = wakeups as f64 / drained.max(1) as f64;

    let packets_total = (samples * SINGLES_PER_PEER * N_PEERS) as u64;
    let client_cycles: u64 = client_meters.iter().map(CycleMeter::take).sum::<u64>();
    let cost = CostModel::calibrated();
    let socket_rx_cycles = cost.socket_recv_fixed * fragments_total as u64
        + (cost.socket_per_byte * wire_bytes_total as f64) as u64;
    let charge = small_record_charge(
        payload_len,
        packets_total,
        wire_bytes_total,
        fragments_total,
        client_cycles,
        server_meter.take(),
        socket_rx_cycles,
    );
    (charge, wakeups_per_datagram)
}

/// Measures per-packet charges of one **datapath configuration** under
/// the heavy-tailed small-record mix that the self-tuning control plane
/// targets: every peer seals single-packet records sized by the Zipf
/// weights of [`crate::eval::scalability::heavy_tail_weights`] (a few
/// elephants dominate the socket backlog), every datagram rides the wire
/// into a per-peer server socket, and the
/// [`crate::server::AsyncFrontEnd`] drains it.
///
/// The configuration is the experiment's independent variable:
///
/// * `dispatch` — the worker placement policy
///   ([`endbox_vpn::shard::DispatchPolicy`]), including
///   `DispatchPolicy::Adaptive` (rate-derived thresholds plus work
///   stealing);
/// * `knobs` — `Some((drain_quota, shard_budget))` pins the front-end's
///   static scheduling knobs; `None` arms the closed-loop controller
///   instead (demand-proportional budgets, token buckets, online peer
///   remap — zero knobs).
///
/// Returns the per-packet charge, the measured wakeups-per-datagram
/// amortisation of the event loop (the input to
/// [`endbox_netsim::pipeline::AsyncFrontEndModel::event_driven`]: tight
/// static budgets force extra drain rounds under skew, and that shows up
/// here as a worse ratio), and the final
/// [`crate::server::ControllerStats`] snapshot (all zeros for static
/// configurations).
///
/// # Panics
///
/// Panics if the deployment cannot be constructed.
pub fn measure_charge_adaptive(
    use_case: UseCase,
    payload_len: usize,
    samples: usize,
    workers: usize,
    rx_shards: usize,
    dispatch: endbox_vpn::shard::DispatchPolicy,
    knobs: Option<(usize, usize)>,
) -> (PacketCharge, f64, crate::server::ControllerStats) {
    // 8 peers at 2 RX shards puts both Zipf elephants (peers 0 and 4)
    // in poll group 0; base batch 24 makes that group's per-round
    // backlog (~43 datagrams) deep enough that starved static budgets
    // pay extra drain rounds and the controller's hot-group law
    // (2x the other groups' mean, 3-round debounce) actually fires.
    const N_PEERS: usize = 8;
    const BASE_BATCH: usize = 24;
    let mut builder = Scenario::enterprise(N_PEERS, use_case)
        .trust(TrustLevel::Hardware)
        .seed(0xbe9c)
        .rx_shards(rx_shards)
        .dispatch(dispatch)
        .async_ingress(true);
    if knobs.is_none() {
        builder = builder.adaptive_control(true);
    }
    let mut scenario = builder.build_sharded(workers).expect("sharded deployment");
    if let Some((quota, budget)) = knobs {
        scenario.set_async_budget(quota, budget);
    }

    let weights = crate::eval::scalability::heavy_tail_weights(N_PEERS);
    let sizes = crate::scenario::ShardedScenario::heavy_tail_batch_sizes(&weights, BASE_BATCH);
    let round_packets: usize = sizes.iter().sum();

    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let payload = benign_payload(payload_len, &mut rng);
    let client_meters: Vec<CycleMeter> =
        scenario.clients.iter().map(|c| c.meter().clone()).collect();
    let server_meter = scenario.server_meter.clone();

    // One round: every peer seals its weighted share of single-packet
    // records (elephants flood their own sockets), all datagrams go on
    // the wire, then the event loop drains to idle — under tight static
    // knobs that takes many pump rounds; under the controller the
    // budgets follow the skew.
    let run_round = |scenario: &mut crate::scenario::ShardedScenario, seq: u32| -> (usize, usize) {
        let mut datagrams = 0usize;
        let mut wire_bytes = 0usize;
        for (idx, &n) in sizes.iter().enumerate() {
            for i in 0..n {
                let pkt = Packet::tcp(
                    Scenario::client_addr(idx),
                    Scenario::network_addr(),
                    40_000 + idx as u16,
                    5001,
                    seq + i as u32,
                    &payload,
                );
                let sealed = scenario.clients[idx].send_packet(pkt).expect("send");
                datagrams += sealed.len();
                wire_bytes += sealed.iter().map(Vec::len).sum::<usize>();
                scenario.send_wire_datagrams(idx as u64, sealed);
            }
        }
        for (_, result) in scenario.pump_async() {
            result.expect("deliver");
        }
        (datagrams, wire_bytes)
    };

    // Warm-up round (first-use costs stay out of the steady state).
    run_round(&mut scenario, 0);
    for m in &client_meters {
        m.take();
    }
    server_meter.take();
    let warm_stats = scenario.async_stats();

    let mut wire_bytes_total = 0usize;
    let mut fragments_total = 0usize;
    for r in 1..=samples {
        let (frags, bytes) = run_round(&mut scenario, (r * BASE_BATCH) as u32);
        fragments_total += frags;
        wire_bytes_total += bytes;
    }
    let stats = scenario.async_stats();
    let wakeups = stats.wakeups - warm_stats.wakeups;
    let drained = stats.datagrams - warm_stats.datagrams;
    assert_eq!(drained as usize, fragments_total, "every datagram drained");
    let wakeups_per_datagram = wakeups as f64 / drained.max(1) as f64;

    let packets_total = (samples * round_packets) as u64;
    let client_cycles: u64 = client_meters.iter().map(CycleMeter::take).sum::<u64>();
    let cost = CostModel::calibrated();
    let socket_rx_cycles = cost.socket_recv_fixed * fragments_total as u64
        + (cost.socket_per_byte * wire_bytes_total as f64) as u64;
    let charge = small_record_charge(
        payload_len,
        packets_total,
        wire_bytes_total,
        fragments_total,
        client_cycles,
        server_meter.take(),
        socket_rx_cycles,
    );
    (charge, wakeups_per_datagram, scenario.controller_stats())
}

/// Measures per-packet charges on the sharded stack with **bulk socket
/// I/O** in the loop: the event-driven mix of [`measure_charge_async`],
/// but the front-end drains each socket with `recv_many` calls of up to
/// `recv_bulk` datagrams (the `recvmmsg` shape; `1` degenerates to the
/// per-datagram transport). The drained datagrams, their dispatch order
/// and the metered charge are identical at every bulk size — only the
/// call count moves, which is exactly why one measured charge replays
/// honestly under every [`endbox_netsim::pipeline::SyscallBatchModel`].
///
/// Returns the charge plus the measured **datagrams-per-call** ratio
/// ([`crate::server::AsyncIngressStats::io_calls`]): the amortisation
/// input to [`endbox_netsim::pipeline::SyscallBatchModel::bulk`]. The
/// queue depth bounds the achievable ratio (a call cannot move more
/// than is waiting), so this mix queues twice as deep per peer as the
/// async mix before each drain.
///
/// # Panics
///
/// Panics if the deployment cannot be constructed.
pub fn measure_charge_wire(
    use_case: UseCase,
    payload_len: usize,
    samples: usize,
    workers: usize,
    rx_shards: usize,
    recv_bulk: usize,
) -> (PacketCharge, f64) {
    measure_charge_transport(
        use_case,
        payload_len,
        samples,
        workers,
        rx_shards,
        recv_bulk,
        TransportKind::Virtual,
    )
}

/// Generalises [`measure_charge_wire`] over the transport backend: the
/// identical bulk small-record mix, but the async wire runs on `kind`
/// and the charge carries that backend's boundary costs.
///
/// Three things move with the backend, nothing else:
///
/// 1. **Metered boundary charges** — the server-side sockets are
///    metered through
///    [`endbox_netsim::net::WireEndpoint::cost_profile`], so ring/XDP
///    receives charge `descriptor_per_frame` (and, for XDP, zero
///    per-byte copy) instead of the socket shape. The measured
///    `server_cycles` reflect this automatically.
/// 2. **The RX-lane boundary share** — the analytic socket share handed
///    to the charge split uses [`TransportKind::profile`], matching
///    what the meter was actually charged.
/// 3. **The in-kernel receive path** — backends with
///    [`TransportKind::bypasses_kernel_rx`] deliver frames by
///    descriptor from the shared arena, shedding the in-kernel share of
///    the per-fragment receive work
///    ([`CostModel::kernel_rx_per_fragment`], a strict part of
///    `vpn_server_per_fragment`). That share is subtracted from both
///    the server total and the RX-lane framing share, keeping
///    `rx_cycles ⊆ server_cycles` consistent.
///
/// Returns the charge plus the measured datagrams-per-call ratio, as
/// [`measure_charge_wire`] does.
///
/// # Panics
///
/// Panics if the deployment cannot be constructed.
pub fn measure_charge_transport(
    use_case: UseCase,
    payload_len: usize,
    samples: usize,
    workers: usize,
    rx_shards: usize,
    recv_bulk: usize,
    kind: TransportKind,
) -> (PacketCharge, f64) {
    const N_PEERS: usize = 8;
    const SINGLES_PER_PEER: usize = 16;
    let mut scenario = Scenario::enterprise(N_PEERS, use_case)
        .trust(TrustLevel::Hardware)
        .seed(0xbe9c)
        .rx_shards(rx_shards)
        .async_ingress(true)
        .transport(kind)
        .build_sharded(workers)
        .expect("sharded deployment must build");
    scenario.set_recv_bulk(recv_bulk);
    // Let one scheduling pass cover a whole bulk batch: the fairness
    // quota must not artificially cap the measured amortisation.
    scenario.set_async_budget(
        recv_bulk.max(crate::server::DEFAULT_DRAIN_QUOTA),
        crate::server::DEFAULT_SHARD_BUDGET,
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let payload = benign_payload(payload_len, &mut rng);
    let client_meters: Vec<CycleMeter> =
        scenario.clients.iter().map(|c| c.meter().clone()).collect();
    let server_meter = scenario.server_meter.clone();

    // One round: peers interleave single-packet records, all datagrams
    // queue in the per-peer sockets, then one event-loop drain moves
    // them with bulk receives.
    let run_round = |scenario: &mut crate::scenario::ShardedScenario, seq: u32| -> (usize, usize) {
        let mut datagrams = 0usize;
        let mut wire_bytes = 0usize;
        for i in 0..SINGLES_PER_PEER {
            for idx in 0..N_PEERS {
                let pkt = Packet::tcp(
                    Scenario::client_addr(idx),
                    Scenario::network_addr(),
                    40_000 + idx as u16,
                    5001,
                    seq + i as u32,
                    &payload,
                );
                let sealed = scenario.clients[idx].send_packet(pkt).expect("send");
                datagrams += sealed.len();
                wire_bytes += sealed.iter().map(Vec::len).sum::<usize>();
                scenario.send_wire_datagrams(idx as u64, sealed);
            }
        }
        for (_, result) in scenario.pump_async() {
            result.expect("deliver");
        }
        (datagrams, wire_bytes)
    };

    // Warm-up round (first-use costs stay out of the steady state).
    run_round(&mut scenario, 0);
    for m in &client_meters {
        m.take();
    }
    server_meter.take();
    let warm_stats = scenario.async_stats();

    let mut wire_bytes_total = 0usize;
    let mut fragments_total = 0usize;
    for r in 1..=samples {
        let (frags, bytes) = run_round(&mut scenario, (r * SINGLES_PER_PEER) as u32);
        fragments_total += frags;
        wire_bytes_total += bytes;
    }
    let stats = scenario.async_stats();
    let io_calls = stats.io_calls - warm_stats.io_calls;
    let drained = stats.datagrams - warm_stats.datagrams;
    assert_eq!(drained as usize, fragments_total, "every datagram drained");
    let datagrams_per_call = drained as f64 / io_calls.max(1) as f64;

    let packets_total = (samples * SINGLES_PER_PEER * N_PEERS) as u64;
    let client_cycles: u64 = client_meters.iter().map(CycleMeter::take).sum::<u64>();
    let cost = CostModel::calibrated();
    let profile = kind.profile(&cost);
    let boundary_rx_cycles = profile.recv_fixed * fragments_total as u64
        + (profile.per_byte * wire_bytes_total as f64) as u64;
    let mut server_cycles_total = server_meter.take();
    if kind.bypasses_kernel_rx() {
        // Descriptor delivery from the shared arena skips the in-kernel
        // receive path; shed its share of the per-fragment receive work
        // from the server total (the framing share is adjusted below).
        server_cycles_total = server_cycles_total
            .saturating_sub(cost.kernel_rx_per_fragment * fragments_total as u64);
    }
    let mut charge = small_record_charge(
        payload_len,
        packets_total,
        wire_bytes_total,
        fragments_total,
        client_cycles,
        server_cycles_total,
        boundary_rx_cycles,
    );
    if kind.bypasses_kernel_rx() {
        // The RX-lane framing share sheds the same in-kernel cycles
        // (kernel_rx_per_fragment < vpn_server_per_fragment is asserted
        // in the cost model, so this never underflows the framing part).
        charge.rx_cycles = charge
            .rx_cycles
            .saturating_sub(cost.kernel_rx_per_fragment * charge.fragments as u64);
    }
    (charge, datagrams_per_call)
}

/// Like [`measure_charge_sharded`], but drives a **heavy-tailed**
/// multi-client load mix (Zipf weights from
/// [`crate::eval::scalability::heavy_tail_weights`]) through a sharded
/// server running the given [`endbox_vpn::shard::DispatchPolicy`] — the
/// real-stack
/// measurement behind the dispatcher comparison. Returned charges are per
/// packet; the throughput difference between the policies is a queueing
/// effect the timing layer reproduces from this charge plus the same load
/// mix.
///
/// # Panics
///
/// Panics if the deployment cannot be constructed.
pub fn measure_charge_sharded_mix(
    use_case: UseCase,
    payload_len: usize,
    samples: usize,
    batch_size: usize,
    workers: usize,
    dispatch: endbox_vpn::shard::DispatchPolicy,
) -> PacketCharge {
    const N_CLIENTS: usize = 8;
    let mut scenario = Scenario::enterprise(N_CLIENTS, use_case)
        .trust(TrustLevel::Hardware)
        .seed(0xbe9c)
        .dispatch(dispatch)
        .build_sharded(workers)
        .expect("sharded deployment must build");
    let weights = crate::eval::scalability::heavy_tail_weights(N_CLIENTS);

    let sizes = crate::scenario::ShardedScenario::heavy_tail_batch_sizes(&weights, batch_size);
    let round_packets: usize = sizes.iter().sum();

    let client_meters: Vec<CycleMeter> =
        scenario.clients.iter().map(|c| c.meter().clone()).collect();
    let server_meter = scenario.server_meter.clone();

    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let payload = benign_payload(payload_len, &mut rng);
    let round_batches = |seq: u32| -> Vec<(usize, Vec<Packet>)> {
        sizes
            .iter()
            .enumerate()
            .map(|(idx, &n)| {
                (
                    idx,
                    (0..n)
                        .map(|i| {
                            Packet::tcp(
                                Scenario::client_addr(idx),
                                Scenario::network_addr(),
                                40_000 + idx as u16,
                                5001,
                                seq + i as u32,
                                &payload,
                            )
                        })
                        .collect(),
                )
            })
            .collect()
    };

    // Warm-up round.
    scenario
        .send_packet_batches_from_all(round_batches(0))
        .expect("warm-up");
    for m in &client_meters {
        m.take();
    }
    server_meter.take();

    // Seal on every client (sized by its weight), then one pipelined
    // dispatch — the same split `send_heavy_tailed_round` performs, done
    // by hand so the real wire datagrams can be measured.
    let mut wire_bytes_total = 0usize;
    let mut fragments_total = 0usize;
    for round in 1..=samples {
        let mut datagrams: Vec<(u64, Vec<u8>)> = Vec::new();
        for (idx, packets) in round_batches((round * batch_size) as u32) {
            for d in scenario.clients[idx].send_batch(packets).expect("send") {
                datagrams.push((idx as u64, d));
            }
        }
        fragments_total += datagrams.len();
        wire_bytes_total += datagrams.iter().map(|(_, d)| d.len()).sum::<usize>();
        for result in scenario.server.receive_datagrams(datagrams) {
            result.expect("deliver");
        }
    }

    let packets_total = (samples * round_packets) as u64;
    let client_cycles: u64 = client_meters.iter().map(CycleMeter::take).sum::<u64>();
    PacketCharge {
        payload_bytes: payload_len + 40, // payload + IP/TCP headers
        wire_bytes: wire_bytes_total / packets_total.max(1) as usize,
        fragments: (fragments_total as u64)
            .div_ceil(packets_total.max(1))
            .max(1) as usize,
        client_cycles: client_cycles / packets_total.max(1),
        server_cycles: server_meter.take() / packets_total.max(1),
        rx_cycles: CostModel::calibrated().vpn_server_per_fragment * fragments_total as u64
            / packets_total.max(1),
        dropped: false,
    }
}

/// Vanilla Click: clients send plain traffic (no VPN); the server runs one
/// Click process that every packet traverses.
fn measure_vanilla_click(use_case: UseCase, payload_len: usize, samples: usize) -> PacketCharge {
    let cost = CostModel::calibrated();
    let meter = CycleMeter::new();
    let env = ElementEnv {
        cost: cost.clone(),
        meter: meter.clone(),
        device_io: true,
        ..ElementEnv::default()
    };
    let mut router =
        Router::from_config(&use_case.server_click_config(), env).expect("use case config");

    let mut rng = rand::rngs::StdRng::seed_from_u64(18);
    let payload = benign_payload(payload_len.min(65_000), &mut rng);
    let pkt = Packet::tcp(
        Scenario::client_addr(0),
        Scenario::network_addr(),
        40_000,
        5001,
        0,
        &payload,
    );
    router.process(pkt.clone()); // warm-up
    meter.take();
    for _ in 0..samples {
        // Kernel hands the packet to the Click process and back.
        meter.add(
            cost.click_fetch_per_packet + (cost.click_fetch_per_byte * pkt.len() as f64) as u64,
        );
        router.process(pkt.clone());
    }
    let server_cycles = meter.take() / samples as u64;

    let wire = pkt.len() + 28; // UDP-less raw Ethernet-ish overhead stand-in
    PacketCharge {
        payload_bytes: pkt.len(),
        wire_bytes: wire,
        fragments: cost.fragments(pkt.len()),
        client_cycles: KERNEL_SEND_FIXED + (KERNEL_SEND_PER_BYTE * pkt.len() as f64) as u64,
        server_cycles,
        rx_cycles: 0,
        dropped: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endbox_sgx_costs_more_than_sim_than_vanilla() {
        let vanilla = measure_charge(Deployment::VanillaOpenVpn, 1500, 8);
        let sim = measure_charge(Deployment::EndBoxSim(UseCase::Nop), 1500, 8);
        let sgx = measure_charge(Deployment::EndBoxSgx(UseCase::Nop), 1500, 8);
        assert!(
            vanilla.client_cycles < sim.client_cycles,
            "vanilla {} < sim {}",
            vanilla.client_cycles,
            sim.client_cycles
        );
        assert!(
            sim.client_cycles < sgx.client_cycles,
            "sim {} < sgx {}",
            sim.client_cycles,
            sgx.client_cycles
        );
        // Server-side work identical for all three (no server Click).
        let tol = vanilla.server_cycles / 5;
        assert!(sgx.server_cycles.abs_diff(vanilla.server_cycles) < tol.max(2000));
    }

    #[test]
    fn openvpn_click_moves_cost_to_server() {
        let vanilla = measure_charge(Deployment::VanillaOpenVpn, 1500, 8);
        let with_click = measure_charge(Deployment::OpenVpnClick(UseCase::Idps), 1500, 8);
        assert!(with_click.server_cycles > vanilla.server_cycles + 3_000);
        // Client side stays vanilla.
        assert!(with_click.client_cycles.abs_diff(vanilla.client_cycles) < 4_000);
    }

    #[test]
    fn idps_costs_more_than_nop_on_endbox() {
        let nop = measure_charge(Deployment::EndBoxSgx(UseCase::Nop), 1500, 8);
        let idps = measure_charge(Deployment::EndBoxSgx(UseCase::Idps), 1500, 8);
        assert!(idps.client_cycles > nop.client_cycles + 10_000);
    }

    #[test]
    fn large_payloads_fragment() {
        let charge = measure_charge(Deployment::VanillaOpenVpn, 32_768, 4);
        assert!(
            charge.fragments >= 4,
            "32KB spans several datagrams: {}",
            charge.fragments
        );
        assert!(charge.wire_bytes > 32_768);
    }

    #[test]
    fn vanilla_click_is_server_bound() {
        let c = measure_charge(Deployment::VanillaClick(UseCase::Nop), 1500, 8);
        assert!(c.server_cycles > c.client_cycles);
    }
}
