//! §V-G: evaluation of the three §IV-A optimisations plus the
//! trusted-time sampling ablation.

use crate::scenario::Scenario;
use crate::use_cases::UseCase;
use endbox_click::element::ElementEnv;
use endbox_click::Router;
use endbox_netsim::pipeline::{run_single_flow, PacketCharge};
use endbox_netsim::resource::{Link, MachineSpec};
use endbox_netsim::traffic::benign_payload;
use endbox_netsim::Packet;
use endbox_vpn::channel::CipherSuite;
use rand::SeedableRng;

const CLASS_A_HZ: u64 = 3_500_000_000;

/// Result of the enclave-transition optimisation ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionAblation {
    /// Throughput with one ecall per packet (Mbps).
    pub batched_mbps: f64,
    /// Throughput with one boundary crossing per crypto op (Mbps).
    pub per_op_mbps: f64,
    /// Relative improvement (paper: +342 %).
    pub improvement_percent: f64,
}

fn measure_with(scenario: &mut Scenario, payload_len: usize, samples: usize) -> PacketCharge {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let payload = benign_payload(payload_len, &mut rng);
    let client_meter = scenario.clients[0].meter().clone();
    let server_meter = scenario.server_meter.clone();
    scenario.send_from_client(0, &payload).expect("warm-up");
    client_meter.take();
    server_meter.take();
    let mut wire = 0usize;
    let mut frags = 0usize;
    for _ in 0..samples {
        let pkt = Packet::tcp(
            Scenario::client_addr(0),
            Scenario::network_addr(),
            40_000,
            5001,
            0,
            &payload,
        );
        let datagrams = scenario.clients[0].send_packet(pkt).expect("send");
        frags += datagrams.len();
        for d in &datagrams {
            wire += d.len();
            scenario.server.receive_datagram(0, d).expect("recv");
        }
    }
    PacketCharge {
        payload_bytes: payload_len + 40,
        wire_bytes: wire / samples,
        fragments: (frags / samples).max(1),
        client_cycles: client_meter.take() / samples as u64,
        server_cycles: server_meter.take() / samples as u64,
        rx_cycles: 0,
        dropped: false,
    }
}

fn replay_mbps(charge: PacketCharge) -> f64 {
    let mut link = Link::ten_gbps();
    run_single_flow(
        MachineSpec::class_a(),
        MachineSpec::class_a(),
        &mut link,
        std::iter::repeat_n(charge, 2_000),
    )
    .mbps
}

/// Ablation 1: one ecall per packet vs one call per crypto operation
/// (paper: "Reducing the number of enclave transitions per packet results
/// in a substantially higher throughput of 342%").
pub fn transition_ablation() -> TransitionAblation {
    let mut batched = Scenario::enterprise(1, UseCase::Nop)
        .batched_ecalls(true)
        .build()
        .unwrap();
    let mut per_op = Scenario::enterprise(1, UseCase::Nop)
        .batched_ecalls(false)
        .build()
        .unwrap();
    let batched_mbps = replay_mbps(measure_with(&mut batched, 1_500, 16));
    let per_op_mbps = replay_mbps(measure_with(&mut per_op, 1_500, 16));
    TransitionAblation {
        batched_mbps,
        per_op_mbps,
        improvement_percent: (batched_mbps / per_op_mbps - 1.0) * 100.0,
    }
}

/// Result of the ISP traffic-protection ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct IspAblation {
    /// Full AES-128-CBC + HMAC throughput (Mbps).
    pub encrypted_mbps: f64,
    /// Integrity-only throughput (Mbps).
    pub integrity_only_mbps: f64,
    /// Relative improvement (paper: +11 %).
    pub improvement_percent: f64,
}

/// Ablation 2: the ISP scenario drops packet encryption, keeping only
/// integrity protection (§IV-A).
pub fn isp_ablation() -> IspAblation {
    let mut enc = Scenario::enterprise(1, UseCase::Nop)
        .suite(CipherSuite::Aes128CbcHmac)
        .build()
        .unwrap();
    let mut int = Scenario::enterprise(1, UseCase::Nop)
        .suite(CipherSuite::IntegrityOnly)
        .build()
        .unwrap();
    let encrypted_mbps = replay_mbps(measure_with(&mut enc, 1_500, 16));
    let integrity_only_mbps = replay_mbps(measure_with(&mut int, 1_500, 16));
    IspAblation {
        encrypted_mbps,
        integrity_only_mbps,
        improvement_percent: (integrity_only_mbps / encrypted_mbps - 1.0) * 100.0,
    }
}

/// Result of the client-to-client flagging ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct C2cAblation {
    /// Client-to-client latency with double Click processing (ms).
    pub without_flag_ms: f64,
    /// Latency with the QoS-flag bypass (ms).
    pub with_flag_ms: f64,
    /// Latency reduction (paper: up to 13 % for IDPS).
    pub reduction_percent: f64,
}

/// Ablation 3: the 0xeb QoS flag lets the receiving client skip Click
/// (§IV-A), measured on the IDPS use case.
pub fn c2c_ablation() -> C2cAblation {
    let latency = |flagging: bool| -> f64 {
        let mut s = Scenario::enterprise(2, UseCase::Idps)
            .c2c_flagging(flagging)
            .build()
            .unwrap();
        let m0 = s.clients[0].meter().clone();
        let m1 = s.clients[1].meter().clone();
        let ms = s.server_meter.clone();
        // MTU-sized payloads: the paper measures IDPS latency on real
        // traffic, and the Aho-Corasick scan cost is per byte.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let payload = benign_payload(1_400, &mut rng);
        s.client_to_client(0, 1, &payload).unwrap();
        m0.take();
        m1.take();
        ms.take();
        let n = 8;
        for _ in 0..n {
            // Request and echo back: four client middlebox traversals
            // without the flag, two with it.
            s.client_to_client(0, 1, &payload).unwrap();
            s.client_to_client(1, 0, &payload).unwrap();
        }
        let client_cycles = (m0.take() + m1.take()) / n;
        let server_cycles = ms.take() / n;
        let net_us = 4.0 * 30.0; // four LAN link traversals
        (client_cycles as f64 / CLASS_A_HZ as f64 * 1e9
            + server_cycles as f64 / 3_300_000_000.0f64 * 1e9
            + net_us * 1e3)
            / 1e6
    };
    let without_flag_ms = latency(false);
    let with_flag_ms = latency(true);
    C2cAblation {
        without_flag_ms,
        with_flag_ms,
        reduction_percent: (1.0 - with_flag_ms / without_flag_ms) * 100.0,
    }
}

/// Result of the batched-datapath ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchingAblation {
    /// Packets per record/enclave transition on the batched path.
    pub batch_size: usize,
    /// Single-packet datapath throughput (Mbps).
    pub single_mbps: f64,
    /// Batched datapath throughput (Mbps).
    pub batched_mbps: f64,
    /// Relative improvement of batching.
    pub improvement_percent: f64,
}

/// Ablation 6: the batched datapath. Where the §IV-A optimisation took
/// EndBox from one enclave transition per *crypto op* to one per
/// *packet*, the batched datapath amortises further: one transition, one
/// Click traversal and one sealed record per **batch**. Measured on
/// EndBox-SGX NOP at 1 500 B, like the transition ablation.
pub fn batching_ablation(batch_size: usize) -> BatchingAblation {
    use crate::eval::deploy::{measure_charge_batched, Deployment};
    let single = replay_mbps(measure_charge_batched(
        Deployment::EndBoxSgx(crate::use_cases::UseCase::Nop),
        1_500,
        16,
        1,
    ));
    let batched = replay_mbps(measure_charge_batched(
        Deployment::EndBoxSgx(crate::use_cases::UseCase::Nop),
        1_500,
        16,
        batch_size,
    ));
    BatchingAblation {
        batch_size,
        single_mbps: single,
        batched_mbps: batched,
        improvement_percent: (batched / single - 1.0) * 100.0,
    }
}

/// One point of the batch-size latency-vs-throughput ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSizePoint {
    /// Packets per record/enclave transition.
    pub batch: usize,
    /// Batched datapath throughput (Mbps).
    pub mbps: f64,
    /// Added latency for the batch's first packet in microseconds: the
    /// time to *fill* the batch at the reference offered load (a packet
    /// held back waits for its batch-mates) plus the batch's processing
    /// time on the client.
    pub added_latency_us: f64,
}

/// Offered load used to convert batch depth into batch-fill latency
/// (the paper's per-client Fig. 10 rate, 200 Mbps).
const BATCH_FILL_REFERENCE_BPS: f64 = 200e6;

/// The adaptive-batch-sizing ablation: sweeps the batch-size knob
/// ([`crate::eval::throughput::batch_size`] defaults to 16) and reports
/// both sides of the trade-off — throughput keeps rising with depth while
/// the batch-fill latency grows linearly, which is why the default stays
/// at a modest 16.
pub fn batch_size_ablation(sizes: &[usize]) -> Vec<BatchSizePoint> {
    use crate::eval::deploy::{measure_charge_batched, Deployment};
    sizes
        .iter()
        .map(|&batch| {
            let charge = measure_charge_batched(
                Deployment::EndBoxSgx(crate::use_cases::UseCase::Nop),
                1_500,
                16,
                batch,
            );
            let mbps = replay_mbps(charge);
            let fill_us =
                (batch.saturating_sub(1) as f64) * 1_500.0 * 8.0 / BATCH_FILL_REFERENCE_BPS * 1e6;
            let processing_us =
                charge.client_cycles as f64 * batch as f64 / CLASS_A_HZ as f64 * 1e6;
            BatchSizePoint {
                batch,
                mbps,
                added_latency_us: fill_us + processing_us,
            }
        })
        .collect()
}

/// One point of the EPC-pressure ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct EpcPoint {
    /// EPC capacity in MiB.
    pub epc_mib: usize,
    /// Page faults charged while building a 48 MiB enclave.
    pub page_faults: u64,
    /// Paging cycles charged.
    pub paging_cycles: u64,
}

/// Ablation 5: EPC pressure. §II-C: "It is possible to create larger
/// enclaves by swapping EPC pages to regular memory, but this results in
/// a substantial performance penalty." The EndBox enclave's resident set
/// (~48 MiB: TaLoS + Click + IDS automaton) fits the 128 MiB EPC; this
/// sweep shows the paging cost that smaller EPCs (or larger rule sets)
/// would incur.
pub fn epc_ablation() -> Vec<EpcPoint> {
    use endbox_netsim::cost::CycleMeter;
    [128usize, 64, 32, 16]
        .into_iter()
        .map(|mib| {
            let meter = CycleMeter::new();
            let mut enclave = endbox_sgx::EnclaveBuilder::new(b"epc-ablation")
                .epc_capacity(mib * 1024 * 1024)
                .meter(meter.clone())
                .declare_ecalls(["touch"])
                .build(|services| {
                    services.epc_alloc(48 * 1024 * 1024);
                });
            let paging_cycles = meter.take();
            let page_faults = enclave
                .ecall("touch", |_, svc| svc.epc().page_faults())
                .unwrap();
            EpcPoint {
                epc_mib: mib,
                page_faults,
                paging_cycles,
            }
        })
        .collect()
}

/// One point of the trusted-time sampling sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingPoint {
    /// Packets per trusted-time read.
    pub sample_interval: u64,
    /// Average cycles per packet spent in the splitter.
    pub cycles_per_packet: f64,
}

/// Ablation 4 (design choice called out in DESIGN.md): the
/// `TrustedSplitter` sampling interval. The paper fixes it at 500 000;
/// this sweep shows why: at small intervals the trusted-time ocall
/// dominates.
pub fn sampling_sweep() -> Vec<SamplingPoint> {
    [1u64, 10, 100, 10_000, 500_000]
        .into_iter()
        .map(|interval| {
            let env = ElementEnv {
                in_enclave: true,
                hardware_mode: true,
                ..ElementEnv::default()
            };
            let meter = env.meter.clone();
            let config = format!(
                "FromDevice(t) -> ts :: TrustedSplitter(RATE 10000000000, SAMPLE {interval}) \
                 -> ToDevice(t); ts[1] -> Discard;"
            );
            let mut router = Router::from_config(&config, env).unwrap();
            let pkt = Packet::udp(
                std::net::Ipv4Addr::new(10, 0, 0, 1),
                std::net::Ipv4Addr::new(10, 0, 1, 1),
                1,
                2,
                &[0u8; 1000],
            );
            let n = 5_000u64;
            meter.take();
            for _ in 0..n {
                router.process(pkt.clone());
            }
            SamplingPoint {
                sample_interval: interval,
                cycles_per_packet: meter.take() as f64 / n as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::deploy::Deployment;
    use crate::eval::throughput::single_flow_mbps;

    #[test]
    fn batching_ecalls_improves_throughput_massively() {
        let r = transition_ablation();
        // Paper: +342%. Shape assertion: at least 2.5x.
        assert!(
            r.improvement_percent > 250.0,
            "batched={} per-op={} (+{:.0}%)",
            r.batched_mbps,
            r.per_op_mbps,
            r.improvement_percent
        );
    }

    #[test]
    fn batched_datapath_beats_single_packet() {
        let r = batching_ablation(16);
        assert!(
            r.improvement_percent > 20.0,
            "batch of 16 must clearly win: single={} batched={} (+{:.0}%)",
            r.single_mbps,
            r.batched_mbps,
            r.improvement_percent
        );
        // Larger batches amortise more.
        let r4 = batching_ablation(4);
        assert!(
            r.batched_mbps > r4.batched_mbps,
            "16={} 4={}",
            r.batched_mbps,
            r4.batched_mbps
        );
    }

    #[test]
    fn batch_size_trades_latency_for_throughput() {
        let sweep = batch_size_ablation(&[1, 8, 32]);
        assert_eq!(sweep.len(), 3);
        // Throughput rises with depth …
        assert!(sweep[1].mbps > sweep[0].mbps, "{sweep:?}");
        assert!(sweep[2].mbps > sweep[1].mbps, "{sweep:?}");
        // … and so does the latency cost of filling the batch.
        assert!(sweep[1].added_latency_us > sweep[0].added_latency_us);
        assert!(sweep[2].added_latency_us > sweep[1].added_latency_us);
        // A batch of one adds no fill latency at all.
        assert!(sweep[0].added_latency_us < 100.0, "{sweep:?}");
    }

    #[test]
    fn integrity_only_helps_moderately() {
        let r = isp_ablation();
        // Paper: +11%. Accept 4%..20%.
        assert!(
            r.improvement_percent > 4.0 && r.improvement_percent < 20.0,
            "+{:.1}%",
            r.improvement_percent
        );
    }

    #[test]
    fn c2c_flag_reduces_latency() {
        let r = c2c_ablation();
        // Paper: up to 13% for IDPS. Accept 3%..25%.
        assert!(
            r.reduction_percent > 3.0 && r.reduction_percent < 25.0,
            "-{:.1}% ({} -> {} ms)",
            r.reduction_percent,
            r.without_flag_ms,
            r.with_flag_ms
        );
    }

    #[test]
    fn sampling_interval_amortises_trusted_time() {
        let sweep = sampling_sweep();
        let per_packet = |interval: u64| {
            sweep
                .iter()
                .find(|p| p.sample_interval == interval)
                .unwrap()
                .cycles_per_packet
        };
        // Reading time every packet is dramatically more expensive than
        // the paper's 500k interval.
        assert!(per_packet(1) > 5.0 * per_packet(500_000));
        // Monotone decrease.
        assert!(per_packet(1) > per_packet(100));
        assert!(per_packet(100) >= per_packet(10_000));
    }

    #[test]
    fn epc_pressure_grows_below_the_working_set() {
        let sweep = epc_ablation();
        let at = |mib: usize| sweep.iter().find(|p| p.epc_mib == mib).unwrap();
        assert_eq!(
            at(128).page_faults,
            0,
            "48 MiB enclave fits the 128 MiB EPC"
        );
        assert_eq!(at(64).page_faults, 0);
        assert!(
            at(32).page_faults > 0,
            "paging starts below the working set"
        );
        assert!(at(16).page_faults > at(32).page_faults);
        assert!(at(16).paging_cycles > at(32).paging_cycles);
    }

    #[test]
    fn fig9_consistency_with_deploy_api() {
        // The ablation helpers agree with the general deployment path.
        let via_deploy = single_flow_mbps(Deployment::EndBoxSgx(UseCase::Nop), 1_500);
        let mut s = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
        let via_scenario = replay_mbps(measure_with(&mut s, 1_500, 16));
        let diff = (via_deploy - via_scenario).abs() / via_deploy;
        assert!(diff < 0.1, "deploy={via_deploy} scenario={via_scenario}");
    }
}
