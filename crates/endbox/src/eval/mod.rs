//! Evaluation harness: deployments, per-packet charge measurement on the
//! real code paths, and runners regenerating every table and figure of
//! §V. The `endbox-bench` crate contains one binary per experiment that
//! prints these results in the paper's format.

pub mod deploy;
pub mod latency;
pub mod nf_catalogue;
pub mod optimizations;
pub mod reconfig;
pub mod scalability;
pub mod throughput;

pub use deploy::{measure_charge, Deployment};
