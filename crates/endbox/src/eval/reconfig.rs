//! Table II: breakdown of a configuration update — fetch, decrypt,
//! hot-swap — for vanilla Click vs EndBox.

use crate::scenario::Scenario;
use crate::use_cases::UseCase;
use endbox_netsim::pipeline::{unloaded_latency, Leg};
use endbox_netsim::time::SimDuration;
use endbox_netsim::CostModel;

const CLASS_A_HZ: u64 = 3_500_000_000;
const CLASS_B_HZ: u64 = 3_300_000_000;

/// Table II row: phase timings in milliseconds (`None` = phase does not
/// exist for that system).
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigBreakdown {
    /// System name.
    pub system: &'static str,
    /// Fetching the new configuration from the config server.
    pub fetch_ms: Option<f64>,
    /// Verifying + decrypting it inside the enclave.
    pub decrypt_ms: Option<f64>,
    /// Hot-swapping the Click graph.
    pub hotswap_ms: f64,
    /// Total.
    pub total_ms: f64,
}

/// The minimal configuration of the paper's measurement (tens of bytes).
pub fn minimal_config() -> &'static str {
    "FromDevice(tun0) -> ToDevice(tun0);"
}

/// EndBox's fetch phase: an HTTP GET against the config file server
/// inside the managed network (request + response over the LAN, server
/// handling, client socket work). Fits the paper's 0.86 ms.
pub fn fetch_latency(config_bytes: usize) -> SimDuration {
    unloaded_latency(&[
        // Request out, response back.
        Leg::Wire {
            bytes: 200,
            rate_bps: 10_000_000_000,
            delay: SimDuration::from_micros(30),
        },
        Leg::Wire {
            bytes: config_bytes + 300,
            rate_bps: 10_000_000_000,
            delay: SimDuration::from_micros(30),
        },
        // Config server request handling (file lookup + HTTP).
        Leg::Cycles {
            cycles: 2_200_000,
            freq_hz: CLASS_B_HZ,
        },
        // Client-side socket + buffer handling.
        Leg::Cycles {
            cycles: 450_000,
            freq_hz: CLASS_A_HZ,
        },
    ])
}

/// Runs the real EndBox update cycle and splits the measured cycle charge
/// into the Table II phases.
pub fn endbox_breakdown() -> ReconfigBreakdown {
    let cost = CostModel::calibrated();
    let mut scenario = Scenario::enterprise(1, UseCase::Nop)
        .build()
        .expect("scenario");
    let meter = scenario.clients[0].meter().clone();

    // Run the genuine Fig. 5 cycle against the real enclave and verify the
    // charge matches the analytic phase split.
    meter.take();
    scenario.update_config(minimal_config(), 0).expect("update");
    let measured_cycles = meter.take();

    let config_bytes = scenario.config_server.config_size(2).unwrap_or(64);
    let fetch = fetch_latency(config_bytes);
    // Decrypt phase: signature verification + AES-CBC decryption +
    // the apply ecall transition.
    let decrypt_cycles = cost.sig_verify + cost.crypto_cycles(config_bytes) + cost.ecall_hw;
    let decrypt = SimDuration::from_cycles(decrypt_cycles, CLASS_A_HZ);
    // Hot swap: parse + instantiate (2 elements), no device setup.
    let hotswap_cycles = cost.hotswap_base + 2 * cost.element_instantiate;
    let hotswap = SimDuration::from_cycles(hotswap_cycles, CLASS_A_HZ);

    // Consistency: the real run must have charged at least the analytic
    // decrypt+hotswap work (it also includes ping records).
    debug_assert!(measured_cycles >= decrypt_cycles + hotswap_cycles);

    let fetch_ms = fetch.as_millis_f64();
    let decrypt_ms = decrypt.as_millis_f64();
    let hotswap_ms = hotswap.as_millis_f64();
    ReconfigBreakdown {
        system: "EndBox",
        fetch_ms: Some(fetch_ms),
        decrypt_ms: Some(decrypt_ms),
        hotswap_ms,
        total_ms: fetch_ms + decrypt_ms + hotswap_ms,
    }
}

/// Vanilla Click: no fetch or decrypt phases, but hot-swapping must set up
/// the `FromDevice`/`ToDevice` file descriptors (§V-F), measured on the
/// real router with `device_io` enabled.
pub fn vanilla_click_breakdown() -> ReconfigBreakdown {
    use endbox_click::element::ElementEnv;
    use endbox_click::Router;

    let env = ElementEnv {
        device_io: true,
        ..ElementEnv::default()
    };
    let meter = env.meter.clone();
    let mut router = Router::from_config(minimal_config(), env).expect("config");
    meter.take();
    router.hot_swap(minimal_config()).expect("hotswap");
    let cycles = meter.take();
    let hotswap_ms = SimDuration::from_cycles(cycles, CLASS_B_HZ).as_millis_f64();
    ReconfigBreakdown {
        system: "vanilla Click",
        fetch_ms: None,
        decrypt_ms: None,
        hotswap_ms,
        total_ms: hotswap_ms,
    }
}

/// Table II, both rows.
pub fn table2() -> Vec<ReconfigBreakdown> {
    vec![vanilla_click_breakdown(), endbox_breakdown()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endbox_hotswap_is_faster_than_vanilla() {
        let rows = table2();
        let vanilla = &rows[0];
        let endbox = &rows[1];
        // Paper: EndBox needs only ~30% of vanilla's hot-swap time.
        let ratio = endbox.hotswap_ms / vanilla.hotswap_ms;
        assert!(ratio < 0.45, "hot-swap ratio {ratio:.2} (paper ~0.31)");
        // Paper magnitudes: vanilla 2.4 ms, EndBox phases 0.86/0.07/0.74.
        assert!(
            (vanilla.hotswap_ms - 2.4).abs() < 0.4,
            "{}",
            vanilla.hotswap_ms
        );
        assert!(
            (endbox.fetch_ms.unwrap() - 0.86).abs() < 0.2,
            "{:?}",
            endbox.fetch_ms
        );
        assert!(
            (endbox.decrypt_ms.unwrap() - 0.07).abs() < 0.04,
            "{:?}",
            endbox.decrypt_ms
        );
        assert!(
            (endbox.hotswap_ms - 0.74).abs() < 0.15,
            "{}",
            endbox.hotswap_ms
        );
    }

    #[test]
    fn fetch_and_decrypt_do_not_block_traffic() {
        // The fetch/decrypt phases happen in the background (§V-F); only
        // the hot swap itself pauses packet processing. Verified by the
        // update cycle leaving traffic working immediately after.
        let mut s = Scenario::enterprise(1, UseCase::Nop).build().unwrap();
        s.update_config(minimal_config(), 0).unwrap();
        s.send_from_client(0, b"right after reconfig").unwrap();
    }
}
