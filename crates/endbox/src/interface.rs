//! The EndBox enclave interface declaration.
//!
//! §IV-B: "The enclave interface of ENDBOX consists of 90 calls: 70 ecalls
//! and 20 ocalls. Most of the ecalls are called only during initialisation
//! of OpenVPN and Click. ENDBOX defines only 4 ecalls that are executed
//! during normal operation: (i) packet en- and decryption; and
//! (ii) message authentication code (MAC) generation and verification."
//!
//! The name lists below reproduce that interface shape. The
//! [`endbox_sgx`] enclave rejects any call not declared here, which is the
//! defence against interface attacks evaluated in §V-A.

/// The four hot-path ecalls (§IV-B).
pub const RUNTIME_ECALLS: [&str; 4] = [
    "ecall_packet_encrypt", // egress: Click + seal, one call per packet
    "ecall_packet_decrypt", // ingress: open + Click, one call per packet
    "ecall_mac_generate",   // control-channel MAC
    "ecall_mac_verify",     // control-channel MAC check
];

/// Initialisation-time ecalls (OpenVPN + Click + TaLoS-style library
/// surface), 66 calls so that the total interface matches the paper's 70.
pub const INIT_ECALLS: [&str; 66] = [
    // --- enclave / OpenVPN bring-up ---
    "ecall_openvpn_init",
    "ecall_openvpn_set_options",
    "ecall_openvpn_set_remote",
    "ecall_openvpn_set_mtu",
    "ecall_openvpn_set_keepalive",
    "ecall_openvpn_set_cipher",
    "ecall_openvpn_set_min_tls_version",
    "ecall_crypto_self_test",
    "ecall_entropy_seed",
    "ecall_time_sync",
    // --- attestation & key management (Fig. 4) ---
    "ecall_keypair_generate",
    "ecall_report_create",
    "ecall_enrollment_finish",
    "ecall_sealed_state_store",
    "ecall_sealed_state_restore",
    "ecall_certificate_install",
    "ecall_certificate_read",
    "ecall_config_key_install",
    // --- control channel / handshake ---
    "ecall_handshake_start",
    "ecall_handshake_complete",
    "ecall_session_reset",
    "ecall_session_teardown",
    "ecall_ping_build",
    "ecall_ping_process",
    // --- Click life cycle ---
    "ecall_click_init",
    "ecall_click_configure",
    "ecall_click_hotswap",
    "ecall_click_read_handler",
    "ecall_click_write_handler",
    "ecall_click_element_count",
    "ecall_click_reset_counters",
    // --- configuration updates (Fig. 5) ---
    "ecall_config_verify",
    "ecall_config_decrypt",
    "ecall_config_apply",
    "ecall_config_version_read",
    // --- TLS key forwarding (§III-D) ---
    "ecall_tls_key_register",
    "ecall_tls_key_flush",
    "ecall_tls_session_count",
    // --- TaLoS/LibreSSL-style library calls (subset EndBox uses) ---
    "ecall_ssl_library_init",
    "ecall_ssl_ctx_new",
    "ecall_ssl_ctx_free",
    "ecall_ssl_ctx_set_verify",
    "ecall_ssl_ctx_use_certificate",
    "ecall_ssl_ctx_use_private_key",
    "ecall_ssl_ctx_set_cipher_list",
    "ecall_ssl_new",
    "ecall_ssl_free",
    "ecall_ssl_set_fd",
    "ecall_ssl_connect",
    "ecall_ssl_accept",
    "ecall_ssl_read",
    "ecall_ssl_write",
    "ecall_ssl_shutdown",
    "ecall_ssl_get_error",
    "ecall_ssl_pending",
    "ecall_ssl_get_peer_certificate",
    "ecall_ssl_get_version",
    "ecall_bio_new",
    "ecall_bio_free",
    "ecall_bio_read",
    "ecall_bio_write",
    "ecall_evp_cleanup",
    "ecall_rand_status",
    "ecall_x509_verify",
    "ecall_x509_free",
    "ecall_x509_get_subject",
];

/// The 20 declared ocalls (§IV-B: "The ocalls perform different tasks,
/// among them managing untrusted memory and accessing (encrypted)
/// configuration files").
pub const OCALLS: [&str; 20] = [
    "ocall_untrusted_alloc",
    "ocall_untrusted_free",
    "ocall_config_file_read",
    "ocall_config_file_stat",
    "ocall_log_write",
    "ocall_clock_gettime",
    "ocall_socket_send",
    "ocall_socket_recv",
    "ocall_socket_select",
    "ocall_tun_write",
    "ocall_tun_read",
    "ocall_management_notify",
    "ocall_sealed_blob_store",
    "ocall_sealed_blob_load",
    "ocall_quote_request",
    "ocall_dns_resolve",
    "ocall_random_bytes",
    "ocall_getpid",
    "ocall_sleep",
    "ocall_abort",
];

/// Every declared ecall name (70 total).
pub fn all_ecalls() -> Vec<&'static str> {
    RUNTIME_ECALLS
        .iter()
        .chain(INIT_ECALLS.iter())
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn interface_matches_paper_counts() {
        assert_eq!(all_ecalls().len(), 70, "paper: 70 ecalls");
        assert_eq!(OCALLS.len(), 20, "paper: 20 ocalls");
        assert_eq!(all_ecalls().len() + OCALLS.len(), 90, "paper: 90 calls");
        assert_eq!(RUNTIME_ECALLS.len(), 4, "paper: 4 runtime ecalls");
    }

    #[test]
    fn no_duplicate_names() {
        let ecalls: HashSet<&str> = all_ecalls().into_iter().collect();
        assert_eq!(ecalls.len(), 70);
        let ocalls: HashSet<&str> = OCALLS.iter().copied().collect();
        assert_eq!(ocalls.len(), 20);
    }
}
