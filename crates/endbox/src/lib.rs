//! # EndBox — scalable middlebox functions using client-side trusted execution
//!
//! A full reproduction of *EndBox* (Goltzsche et al., DSN 2018): middlebox
//! functions (firewall, IDPS, load balancing, DDoS prevention, …) execute
//! on **untrusted client machines**, protected by an SGX enclave, instead
//! of on centralised middlebox hardware. The enclave holds the VPN
//! connection endpoint, so every packet that reaches the managed network
//! provably passed through the client-side Click middlebox.
//!
//! The crate composes the substrates of this workspace:
//!
//! * [`enclave_app`] — the trusted half of the client: the Click router,
//!   the VPN data channel and all keys live inside an [`endbox_sgx`]
//!   enclave; exactly **one ecall per packet** on the data path (§IV-A).
//! * [`client`] — the partitioned EndBox client (Fig. 3): untrusted
//!   fragmentation/encapsulation around the trusted core.
//! * [`server`] — the EndBox VPN server: sole entry point to the managed
//!   network, certificate gatekeeping, config-version enforcement, QoS
//!   flag sanitisation.
//! * [`ca`] — the certificate authority and the remote-attestation
//!   enrollment workflow of Fig. 4.
//! * [`config_update`] — signed (optionally encrypted) Click
//!   configurations with versioning and grace periods (Fig. 5).
//! * [`tls_shim`] — the patched-TLS-library simulation that forwards
//!   session keys into the enclave for encrypted-traffic DPI (§III-D).
//! * [`use_cases`] — the five evaluation middlebox functions (§V-B).
//! * [`attacks`] — the §V-A attack battery, each returning an outcome that
//!   the tests assert is `Defended`.
//! * [`scenario`] — enterprise and ISP scenario builders (§II-A).
//! * [`eval`] — deployments and experiment runners regenerating every
//!   table and figure of §V.
//!
//! The repository-level `README.md` carries the crate map and datapath
//! diagram; `docs/architecture.md` carries the per-subsystem invariants
//! and the map from each invariant to the test that pins it.
//!
//! ## Quickstart
//!
//! ```
//! use endbox::scenario::Scenario;
//! use endbox::use_cases::UseCase;
//!
//! // One client, firewall middlebox, hardware-mode enclave.
//! let mut scenario = Scenario::enterprise(1, UseCase::Firewall).build().unwrap();
//! let delivered = scenario.send_from_client(0, b"hello network").unwrap();
//! assert_eq!(delivered.app_payload(), b"hello network");
//! ```

pub mod attacks;
pub mod ca;
pub mod client;
pub mod config_update;
pub mod enclave_app;
pub mod error;
pub mod eval;
pub mod interface;
pub mod scenario;
pub mod server;
pub mod tls_shim;
pub mod use_cases;

pub use ca::CertificateAuthority;
pub use client::{EndBoxClient, EndBoxClientConfig, TrustLevel};
pub use error::EndBoxError;
pub use server::{EndBoxServer, ShardedEndBoxServer};
