//! A software model of Intel SGX for the EndBox reproduction.
//!
//! The paper's security and performance arguments rest on specific SGX
//! mechanisms; this crate reproduces each one explicitly instead of relying
//! on SGX hardware (unavailable here):
//!
//! * [`enclave`] — enclave life cycle, a *named* ecall/ocall interface
//!   (EndBox exposes 70 ecalls + 20 ocalls, §IV-B) with input sanitisation
//!   hooks, and per-transition cycle accounting.
//! * [`epc`] — the 128 MB enclave page cache with paging penalties (§II-C).
//! * [`measurement`] — MRENCLAVE-style code measurements.
//! * [`sealing`] — sealed storage keyed by CPU fuse key + measurement.
//! * [`trusted_time`] — the trusted time source used by `TrustedSplitter`.
//! * [`attestation`] — reports, the Quoting Enclave, and a simulated Intel
//!   Attestation Service (Fig. 4).
//!
//! Modes: [`SgxMode::Hardware`] charges real transition/EPC costs;
//! [`SgxMode::Simulation`] models the SDK's simulation mode (cheap guarded
//! calls, no memory-encryption overhead) — the paper evaluates both
//! (EndBox-SGX vs EndBox-SIM).

pub mod attestation;
pub mod enclave;
pub mod epc;
pub mod error;
pub mod measurement;
pub mod sealing;
pub mod trusted_time;

pub use enclave::{Enclave, EnclaveBuilder, EnclaveServices};
pub use error::EnclaveError;
pub use measurement::Measurement;

/// Whether the enclave runs with hardware protection or in the SDK's
/// simulation mode (§IV: "the SDK offers a simulation mode that allows the
/// execution of SGX applications on unsupported hardware").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SgxMode {
    /// Real SGX instructions: full transition and EPC costs.
    #[default]
    Hardware,
    /// SDK simulation mode: same behaviour, reduced costs, no hardware
    /// security guarantees.
    Simulation,
}

impl SgxMode {
    /// Cycle cost of one ecall/ocall transition pair in this mode.
    pub fn transition_cycles(self, cost: &endbox_netsim::CostModel) -> u64 {
        match self {
            SgxMode::Hardware => cost.ecall_hw,
            SgxMode::Simulation => cost.ecall_sim,
        }
    }
}
