//! Errors raised by the SGX model.

use std::error::Error;
use std::fmt;

/// Errors from enclave operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnclaveError {
    /// The enclave has not been initialised yet.
    NotInitialized,
    /// The enclave was destroyed.
    Destroyed,
    /// An ecall/ocall name not present in the declared interface was
    /// invoked (interface attacks, §V-A, are rejected here).
    UndeclaredCall(String),
    /// An interface sanity check on call parameters failed (Iago-style
    /// attack rejected, §IV-B).
    ParameterCheckFailed(String),
    /// EPC allocation failed outright (beyond even paging).
    EpcExhausted,
    /// Sealed blob failed authentication or was sealed by another enclave.
    UnsealFailed,
    /// Attestation verification failed.
    AttestationFailed(&'static str),
}

impl fmt::Display for EnclaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnclaveError::NotInitialized => f.write_str("enclave not initialised"),
            EnclaveError::Destroyed => f.write_str("enclave destroyed"),
            EnclaveError::UndeclaredCall(name) => {
                write!(f, "call `{name}` is not part of the enclave interface")
            }
            EnclaveError::ParameterCheckFailed(what) => {
                write!(f, "interface parameter check failed: {what}")
            }
            EnclaveError::EpcExhausted => f.write_str("enclave page cache exhausted"),
            EnclaveError::UnsealFailed => f.write_str("sealed data failed authentication"),
            EnclaveError::AttestationFailed(why) => write!(f, "attestation failed: {why}"),
        }
    }
}

impl Error for EnclaveError {}
