//! SGX sealing: encrypt-then-MAC storage bound to the CPU fuse key and the
//! enclave measurement (§III-C step 7: "the enclave persistently stores the
//! generated key pair as well as the certificate using the SGX sealing
//! feature").

use crate::error::EnclaveError;
use crate::measurement::Measurement;
use endbox_crypto::aes::Aes128;
use endbox_crypto::hmac::{hkdf, hmac_sha256, HmacSha256};
use endbox_crypto::modes::{cbc_decrypt, cbc_encrypt};

const TAG_LEN: usize = 32;
const IV_LEN: usize = 16;

/// Derives the per-enclave sealing keys (MRENCLAVE policy: only the same
/// enclave code on the same CPU can unseal).
fn sealing_keys(fuse_seed: &[u8; 32], measurement: &Measurement) -> ([u8; 16], [u8; 32]) {
    let base = hmac_sha256(fuse_seed, measurement.as_bytes());
    let enc: [u8; 16] = hkdf(&base, b"seal-enc", b"endbox-sgx");
    let mac: [u8; 32] = hkdf(&base, b"seal-mac", b"endbox-sgx");
    (enc, mac)
}

/// Seals `plaintext`. Output layout: `iv || ciphertext || tag`.
pub fn seal(
    fuse_seed: &[u8; 32],
    measurement: &Measurement,
    plaintext: &[u8],
    rng: &mut impl rand::RngCore,
) -> Vec<u8> {
    let (enc_key, mac_key) = sealing_keys(fuse_seed, measurement);
    let mut iv = [0u8; IV_LEN];
    rng.fill_bytes(&mut iv);
    let aes = Aes128::new(&enc_key);
    let ct = cbc_encrypt(&aes, &iv, plaintext);
    let mut out = Vec::with_capacity(IV_LEN + ct.len() + TAG_LEN);
    out.extend_from_slice(&iv);
    out.extend_from_slice(&ct);
    let mut mac = HmacSha256::new(&mac_key);
    mac.update(&out);
    out.extend_from_slice(&mac.finalize());
    out
}

/// Unseals a blob produced by [`seal`] with the same CPU + measurement.
///
/// # Errors
///
/// Returns [`EnclaveError::UnsealFailed`] if the blob is malformed, was
/// sealed by a different enclave/CPU, or was tampered with.
pub fn unseal(
    fuse_seed: &[u8; 32],
    measurement: &Measurement,
    blob: &[u8],
) -> Result<Vec<u8>, EnclaveError> {
    if blob.len() < IV_LEN + 16 + TAG_LEN {
        return Err(EnclaveError::UnsealFailed);
    }
    let (enc_key, mac_key) = sealing_keys(fuse_seed, measurement);
    let (body, tag) = blob.split_at(blob.len() - TAG_LEN);
    let mut mac = HmacSha256::new(&mac_key);
    mac.update(body);
    if !mac.verify(tag) {
        return Err(EnclaveError::UnsealFailed);
    }
    let iv: [u8; IV_LEN] = body[..IV_LEN].try_into().unwrap();
    let aes = Aes128::new(&enc_key);
    cbc_decrypt(&aes, &iv, &body[IV_LEN..]).map_err(|_| EnclaveError::UnsealFailed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    fn mr(tag: &str) -> Measurement {
        Measurement::of(tag.as_bytes(), b"")
    }

    #[test]
    fn roundtrip() {
        let mut rng = rng();
        let fuse = [1u8; 32];
        let blob = seal(&fuse, &mr("enclave-a"), b"vpn private key", &mut rng);
        assert_eq!(
            unseal(&fuse, &mr("enclave-a"), &blob).unwrap(),
            b"vpn private key"
        );
    }

    #[test]
    fn different_enclave_cannot_unseal() {
        let mut rng = rng();
        let fuse = [1u8; 32];
        let blob = seal(&fuse, &mr("enclave-a"), b"secret", &mut rng);
        assert_eq!(
            unseal(&fuse, &mr("enclave-b"), &blob),
            Err(EnclaveError::UnsealFailed)
        );
    }

    #[test]
    fn different_cpu_cannot_unseal() {
        let mut rng = rng();
        let blob = seal(&[1u8; 32], &mr("enclave-a"), b"secret", &mut rng);
        assert_eq!(
            unseal(&[2u8; 32], &mr("enclave-a"), &blob),
            Err(EnclaveError::UnsealFailed)
        );
    }

    #[test]
    fn tampering_detected() {
        let mut rng = rng();
        let fuse = [1u8; 32];
        let mut blob = seal(&fuse, &mr("e"), b"secret", &mut rng);
        for i in [0, IV_LEN + 1, 40] {
            let mut t = blob.clone();
            t[i] ^= 0x80;
            assert!(unseal(&fuse, &mr("e"), &t).is_err(), "tamper at {i}");
        }
        blob.truncate(10);
        assert!(unseal(&fuse, &mr("e"), &blob).is_err());
    }

    #[test]
    fn empty_plaintext_roundtrips() {
        let mut rng = rng();
        let fuse = [9u8; 32];
        let blob = seal(&fuse, &mr("e"), b"", &mut rng);
        assert_eq!(unseal(&fuse, &mr("e"), &blob).unwrap(), Vec::<u8>::new());
    }
}
