//! The enclave container: life cycle, named ecall/ocall interface with
//! transition accounting, and the in-enclave service surface (sealing,
//! reports, trusted time, EPC).
//!
//! EndBox "defines only 4 ecalls that are executed during normal
//! operation" out of a 90-call interface (§IV-B); this module enforces
//! that the interface is *closed*: invoking an undeclared call fails, and
//! every call charges its transition cost to the shared [`CycleMeter`].

use crate::attestation::{CpuIdentity, Report, USER_DATA_LEN};
use crate::epc::EpcAllocator;
use crate::error::EnclaveError;
use crate::measurement::Measurement;
use crate::sealing;
use crate::trusted_time::TrustedTime;
use crate::SgxMode;
use endbox_netsim::cost::{CostModel, CycleMeter};
use endbox_netsim::time::{SharedClock, SimTime};
use rand::SeedableRng;
use std::collections::HashSet;

/// Transition counters for the enclave interface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CallCounters {
    /// Number of ecalls executed.
    pub ecalls: u64,
    /// Number of ocalls executed.
    pub ocalls: u64,
}

/// Services available to code running *inside* the enclave.
#[derive(Debug)]
pub struct EnclaveServices {
    measurement: Measurement,
    mode: SgxMode,
    cost: CostModel,
    meter: CycleMeter,
    epc: EpcAllocator,
    cpu: CpuIdentity,
    trusted_time: TrustedTime,
    declared_ocalls: HashSet<String>,
    counters: CallCounters,
    rng: rand::rngs::StdRng,
}

impl EnclaveServices {
    /// The enclave's measurement.
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// The execution mode.
    pub fn mode(&self) -> SgxMode {
        self.mode
    }

    /// Charges in-enclave computation to the cycle meter.
    pub fn charge(&self, cycles: u64) {
        self.meter.add(cycles);
    }

    /// Charges the EPC memory-encryption cost for touching `bytes` inside
    /// the enclave (hardware mode only).
    pub fn charge_epc_traffic(&self, bytes: usize) {
        if self.mode == SgxMode::Hardware {
            self.meter
                .add((self.cost.epc_per_byte * bytes as f64) as u64);
        }
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// A handle to the machine's cycle meter (for in-enclave components
    /// that charge costs themselves, e.g. the VPN data channel).
    pub fn meter_handle(&self) -> CycleMeter {
        self.meter.clone()
    }

    /// Performs an ocall: leaves the enclave, runs `f` untrusted, returns.
    /// Charges one transition and counts it.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::UndeclaredCall`] for names missing from the
    /// interface declaration.
    pub fn ocall<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> Result<R, EnclaveError> {
        if !self.declared_ocalls.contains(name) {
            return Err(EnclaveError::UndeclaredCall(name.to_string()));
        }
        self.counters.ocalls += 1;
        self.meter.add(self.mode.transition_cycles(&self.cost));
        Ok(f())
    }

    /// Creates a local-attestation report binding `user_data` to this
    /// enclave's measurement (Fig. 4 step 2).
    pub fn create_report(&self, user_data: [u8; USER_DATA_LEN]) -> Report {
        Report::create(&self.cpu, self.measurement, user_data)
    }

    /// Seals data to this enclave identity.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        self.charge(self.cost.crypto_cycles(plaintext.len()));
        sealing::seal(
            self.cpu.fuse_seed(),
            &self.measurement,
            plaintext,
            &mut self.rng,
        )
    }

    /// Unseals data previously sealed by this enclave identity.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::UnsealFailed`] on authentication failure.
    pub fn unseal(&mut self, blob: &[u8]) -> Result<Vec<u8>, EnclaveError> {
        self.charge(self.cost.crypto_cycles(blob.len()));
        sealing::unseal(self.cpu.fuse_seed(), &self.measurement, blob)
    }

    /// Reads SGX trusted time (expensive; see
    /// [`crate::trusted_time::TrustedTime`]).
    pub fn trusted_now(&self) -> SimTime {
        self.trusted_time.now()
    }

    /// Number of trusted-time reads so far.
    pub fn trusted_time_reads(&self) -> u64 {
        self.trusted_time.read_count()
    }

    /// Allocates enclave memory (EPC-accounted).
    pub fn epc_alloc(&mut self, bytes: usize) {
        self.epc.alloc(bytes);
    }

    /// Frees enclave memory.
    pub fn epc_free(&mut self, bytes: usize) {
        self.epc.free(bytes);
    }

    /// EPC accounting snapshot.
    pub fn epc(&self) -> &EpcAllocator {
        &self.epc
    }

    /// In-enclave RNG (seeded deterministically per enclave for the
    /// simulation).
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        &mut self.rng
    }
}

/// Life-cycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LifeCycle {
    Alive,
    Destroyed,
}

/// An enclave holding trusted state `T`, reachable only through declared
/// ecalls.
#[derive(Debug)]
pub struct Enclave<T> {
    state: T,
    services: EnclaveServices,
    declared_ecalls: HashSet<String>,
    life: LifeCycle,
}

impl<T> Enclave<T> {
    /// Invokes the ecall `name`, giving `f` access to the trusted state and
    /// the in-enclave services. Charges one transition.
    ///
    /// # Errors
    ///
    /// * [`EnclaveError::Destroyed`] after [`Enclave::destroy`].
    /// * [`EnclaveError::UndeclaredCall`] for unknown ecall names — the
    ///   closed-interface defence of §IV-B.
    pub fn ecall<R>(
        &mut self,
        name: &str,
        f: impl FnOnce(&mut T, &mut EnclaveServices) -> R,
    ) -> Result<R, EnclaveError> {
        if self.life == LifeCycle::Destroyed {
            return Err(EnclaveError::Destroyed);
        }
        if !self.declared_ecalls.contains(name) {
            return Err(EnclaveError::UndeclaredCall(name.to_string()));
        }
        self.services.counters.ecalls += 1;
        self.services
            .meter
            .add(self.services.mode.transition_cycles(&self.services.cost));
        Ok(f(&mut self.state, &mut self.services))
    }

    /// Destroys the enclave; further ecalls fail. (An attacker controlling
    /// the untrusted host can always do this — a DoS that only hurts the
    /// client itself, §V-A.)
    pub fn destroy(&mut self) {
        self.life = LifeCycle::Destroyed;
    }

    /// The enclave measurement.
    pub fn measurement(&self) -> Measurement {
        self.services.measurement
    }

    /// The execution mode.
    pub fn mode(&self) -> SgxMode {
        self.services.mode
    }

    /// Transition counters.
    pub fn counters(&self) -> CallCounters {
        self.services.counters
    }

    /// Number of declared ecalls (paper: 70).
    pub fn declared_ecall_count(&self) -> usize {
        self.declared_ecalls.len()
    }

    /// Read-only access to the in-enclave services (EPC stats etc.).
    pub fn services(&self) -> &EnclaveServices {
        &self.services
    }
}

/// Builder for [`Enclave`].
#[derive(Debug)]
pub struct EnclaveBuilder {
    code_identity: Vec<u8>,
    embedded_config: Vec<u8>,
    mode: SgxMode,
    declared_ecalls: Vec<String>,
    declared_ocalls: Vec<String>,
    cost: CostModel,
    meter: CycleMeter,
    epc_capacity: usize,
    cpu: CpuIdentity,
    clock: SharedClock,
    rng_seed: u64,
}

impl EnclaveBuilder {
    /// Starts building an enclave whose measurement derives from
    /// `code_identity`.
    pub fn new(code_identity: &[u8]) -> Self {
        EnclaveBuilder {
            code_identity: code_identity.to_vec(),
            embedded_config: Vec::new(),
            mode: SgxMode::Hardware,
            declared_ecalls: Vec::new(),
            declared_ocalls: Vec::new(),
            cost: CostModel::calibrated(),
            meter: CycleMeter::new(),
            epc_capacity: crate::epc::DEFAULT_CAPACITY,
            cpu: CpuIdentity::from_seed([0u8; 32]),
            clock: SharedClock::new(),
            rng_seed: 0x5eed,
        }
    }

    /// Data baked into the binary at build time and covered by the
    /// measurement (EndBox: the CA public key, §III-C).
    pub fn embedded_config(mut self, config: &[u8]) -> Self {
        self.embedded_config = config.to_vec();
        self
    }

    /// Execution mode.
    pub fn mode(mut self, mode: SgxMode) -> Self {
        self.mode = mode;
        self
    }

    /// Declares the ecall interface.
    pub fn declare_ecalls<'a>(mut self, names: impl IntoIterator<Item = &'a str>) -> Self {
        self.declared_ecalls
            .extend(names.into_iter().map(str::to_string));
        self
    }

    /// Declares the ocall interface.
    pub fn declare_ocalls<'a>(mut self, names: impl IntoIterator<Item = &'a str>) -> Self {
        self.declared_ocalls
            .extend(names.into_iter().map(str::to_string));
        self
    }

    /// Cost model to charge against.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Cycle meter shared with the rest of the machine's components.
    pub fn meter(mut self, meter: CycleMeter) -> Self {
        self.meter = meter;
        self
    }

    /// EPC capacity override (default 128 MB).
    pub fn epc_capacity(mut self, bytes: usize) -> Self {
        self.epc_capacity = bytes;
        self
    }

    /// The platform this enclave runs on.
    pub fn cpu(mut self, cpu: CpuIdentity) -> Self {
        self.cpu = cpu;
        self
    }

    /// Simulation clock backing trusted time.
    pub fn clock(mut self, clock: SharedClock) -> Self {
        self.clock = clock;
        self
    }

    /// Deterministic seed for the in-enclave RNG.
    pub fn rng_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Creates and initialises the enclave; `init` runs inside and builds
    /// the trusted state.
    pub fn build<T>(self, init: impl FnOnce(&mut EnclaveServices) -> T) -> Enclave<T> {
        let measurement = Measurement::of(&self.code_identity, &self.embedded_config);
        let epc = EpcAllocator::new(
            self.epc_capacity,
            self.cost.epc_page_fault,
            self.meter.clone(),
        );
        let trusted_time =
            TrustedTime::new(self.clock, self.cost.trusted_time_read, self.meter.clone());
        let mut services = EnclaveServices {
            measurement,
            mode: self.mode,
            cost: self.cost,
            meter: self.meter,
            epc,
            cpu: self.cpu,
            trusted_time,
            declared_ocalls: self.declared_ocalls.into_iter().collect(),
            counters: CallCounters::default(),
            rng: rand::rngs::StdRng::seed_from_u64(self.rng_seed),
        };
        let state = init(&mut services);
        Enclave {
            state,
            services,
            declared_ecalls: self.declared_ecalls.into_iter().collect(),
            life: LifeCycle::Alive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enclave() -> (Enclave<u64>, CycleMeter) {
        let meter = CycleMeter::new();
        let e = EnclaveBuilder::new(b"test-enclave")
            .declare_ecalls(["increment", "get"])
            .declare_ocalls(["log"])
            .meter(meter.clone())
            .build(|_| 0u64);
        (e, meter)
    }

    #[test]
    fn ecalls_run_and_charge() {
        let (mut e, meter) = enclave();
        let cost = CostModel::calibrated();
        e.ecall("increment", |s, _| *s += 1).unwrap();
        let v = e.ecall("get", |s, _| *s).unwrap();
        assert_eq!(v, 1);
        assert_eq!(e.counters().ecalls, 2);
        assert_eq!(meter.read(), 2 * cost.ecall_hw);
    }

    #[test]
    fn undeclared_ecall_rejected() {
        let (mut e, _) = enclave();
        let err = e.ecall("read_arbitrary_memory", |_, _| ()).unwrap_err();
        assert!(matches!(err, EnclaveError::UndeclaredCall(_)));
        assert_eq!(e.counters().ecalls, 0);
    }

    #[test]
    fn undeclared_ocall_rejected() {
        let (mut e, _) = enclave();
        let res = e
            .ecall("increment", |_, svc| {
                svc.ocall("exfiltrate", || ()).is_err()
            })
            .unwrap();
        assert!(res);
    }

    #[test]
    fn declared_ocall_charges_transition() {
        let (mut e, meter) = enclave();
        meter.take();
        e.ecall("increment", |_, svc| svc.ocall("log", || 42).unwrap())
            .unwrap();
        let cost = CostModel::calibrated();
        assert_eq!(meter.read(), 2 * cost.ecall_hw); // 1 ecall + 1 ocall
        assert_eq!(e.counters().ocalls, 1);
    }

    #[test]
    fn simulation_mode_is_cheaper() {
        let meter = CycleMeter::new();
        let mut e = EnclaveBuilder::new(b"test")
            .mode(SgxMode::Simulation)
            .declare_ecalls(["f"])
            .meter(meter.clone())
            .build(|_| ());
        e.ecall("f", |_, _| ()).unwrap();
        let cost = CostModel::calibrated();
        assert_eq!(meter.read(), cost.ecall_sim);
        assert!(cost.ecall_sim < cost.ecall_hw);
    }

    #[test]
    fn destroyed_enclave_rejects_ecalls() {
        let (mut e, _) = enclave();
        e.destroy();
        assert_eq!(e.ecall("get", |s, _| *s), Err(EnclaveError::Destroyed));
    }

    #[test]
    fn seal_unseal_through_services() {
        let (mut e, _) = enclave();
        let blob = e
            .ecall("increment", |_, svc| svc.seal(b"key material"))
            .unwrap();
        let out = e.ecall("get", |_, svc| svc.unseal(&blob)).unwrap().unwrap();
        assert_eq!(out, b"key material");
    }

    #[test]
    fn measurement_depends_on_embedded_config() {
        let a = EnclaveBuilder::new(b"code")
            .embedded_config(b"ca1")
            .build(|_| ());
        let b = EnclaveBuilder::new(b"code")
            .embedded_config(b"ca2")
            .build(|_| ());
        assert_ne!(a.measurement(), b.measurement());
    }

    #[test]
    fn report_carries_measurement() {
        let (mut e, _) = enclave();
        let mr = e.measurement();
        let rep = e
            .ecall("get", |_, svc| svc.create_report([5u8; 64]))
            .unwrap();
        assert_eq!(rep.measurement, mr);
    }

    #[test]
    fn epc_traffic_charged_only_in_hardware_mode() {
        let meter_hw = CycleMeter::new();
        let mut hw = EnclaveBuilder::new(b"x")
            .declare_ecalls(["f"])
            .meter(meter_hw.clone())
            .build(|_| ());
        meter_hw.take();
        hw.ecall("f", |_, svc| svc.charge_epc_traffic(100_000))
            .unwrap();
        let cost = CostModel::calibrated();
        assert_eq!(
            meter_hw.read(),
            cost.ecall_hw + (cost.epc_per_byte * 100_000.0) as u64
        );

        let meter_sim = CycleMeter::new();
        let mut sim = EnclaveBuilder::new(b"x")
            .mode(SgxMode::Simulation)
            .declare_ecalls(["f"])
            .meter(meter_sim.clone())
            .build(|_| ());
        meter_sim.take();
        sim.ecall("f", |_, svc| svc.charge_epc_traffic(100_000))
            .unwrap();
        assert_eq!(meter_sim.read(), cost.ecall_sim);
    }
}
