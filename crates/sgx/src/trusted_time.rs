//! SGX trusted time: a tamper-resistant (but expensive) time source.
//!
//! "The ENDBOX implementation also utilises the SDK support for trusted
//! time in order to implement traffic shaping" (§IV). Reading trusted time
//! costs an ocall to the platform service — which is exactly why the
//! paper's `TrustedSplitter` samples it only every 500 000 packets.

use endbox_netsim::cost::CycleMeter;
use endbox_netsim::time::{SharedClock, SimTime};

/// A handle to the platform's trusted time service.
#[derive(Debug, Clone)]
pub struct TrustedTime {
    clock: SharedClock,
    read_cycles: u64,
    meter: CycleMeter,
    reads: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl TrustedTime {
    /// Creates a trusted time source backed by the simulation clock.
    pub fn new(clock: SharedClock, read_cycles: u64, meter: CycleMeter) -> Self {
        TrustedTime {
            clock,
            read_cycles,
            meter,
            reads: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Reads trusted time, charging the (expensive) platform-service cost.
    pub fn now(&self) -> SimTime {
        self.meter.add(self.read_cycles);
        self.reads
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.clock.now()
    }

    /// Number of trusted reads performed (for the sampling-interval
    /// ablation).
    pub fn read_count(&self) -> u64 {
        self.reads.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use endbox_netsim::time::SimDuration;

    #[test]
    fn reads_charge_cycles() {
        let clock = SharedClock::new();
        let meter = CycleMeter::new();
        let t = TrustedTime::new(clock.clone(), 40_000, meter.clone());
        clock.advance(SimDuration::from_millis(5));
        assert_eq!(t.now(), SimTime::from_millis(5));
        assert_eq!(meter.read(), 40_000);
        t.now();
        assert_eq!(meter.read(), 80_000);
        assert_eq!(t.read_count(), 2);
    }
}
