//! MRENCLAVE-style enclave measurements.

use endbox_crypto::sha256::Sha256;
use std::fmt;

/// An enclave measurement: the hash of the enclave's code and initial
/// configuration ("measurements, which basically are hashes of the
/// enclaves", §II-C).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement([u8; 32]);

impl Measurement {
    /// Measures enclave code identity plus build-time configuration (e.g.
    /// the CA public key pre-deployed into the binary, §III-C).
    pub fn of(code_identity: &[u8], embedded_config: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"mrenclave");
        h.update(&(code_identity.len() as u64).to_be_bytes());
        h.update(code_identity);
        h.update(embedded_config);
        Measurement(h.finalize())
    }

    /// Raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// From raw bytes (e.g. parsed from a quote).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Measurement(bytes)
    }
}

impl fmt::Debug for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mr:{}", &endbox_crypto::hex::encode(&self.0)[..16])
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mr:{}", &endbox_crypto::hex::encode(&self.0)[..16])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        let a = Measurement::of(b"endbox-client-v1", b"ca-key-1");
        let b = Measurement::of(b"endbox-client-v1", b"ca-key-1");
        let c = Measurement::of(b"endbox-client-v2", b"ca-key-1");
        let d = Measurement::of(b"endbox-client-v1", b"ca-key-2");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn length_prefix_prevents_ambiguity() {
        let a = Measurement::of(b"ab", b"c");
        let b = Measurement::of(b"a", b"bc");
        assert_ne!(a, b);
    }

    #[test]
    fn display_is_short_hex() {
        let m = Measurement::of(b"x", b"y");
        let s = format!("{m}");
        assert!(s.starts_with("mr:"));
        assert_eq!(s.len(), 3 + 16);
    }
}
