//! The enclave page cache (EPC): a 128 MB protected memory budget.
//!
//! "The EPC size in the current version of SGX is limited to 128 MB per
//! machine. It is possible to create larger enclaves by swapping EPC pages
//! to regular memory, but this results in a substantial performance
//! penalty" (§II-C). This module models exactly that: allocations beyond
//! the budget succeed but charge a per-page paging penalty to the cycle
//! meter.

use endbox_netsim::cost::CycleMeter;

/// EPC page size.
pub const PAGE_SIZE: usize = 4096;
/// Default EPC capacity (SGXv1): 128 MB.
pub const DEFAULT_CAPACITY: usize = 128 * 1024 * 1024;

/// Tracks enclave memory consumption against the EPC budget.
#[derive(Debug, Clone)]
pub struct EpcAllocator {
    capacity: usize,
    used: usize,
    peak: usize,
    page_faults: u64,
    page_fault_cycles: u64,
    meter: CycleMeter,
}

impl EpcAllocator {
    /// New allocator with the given capacity.
    pub fn new(capacity: usize, page_fault_cycles: u64, meter: CycleMeter) -> Self {
        EpcAllocator {
            capacity,
            used: 0,
            peak: 0,
            page_faults: 0,
            page_fault_cycles,
            meter,
        }
    }

    /// New allocator with the SGXv1 default capacity.
    pub fn with_default_capacity(page_fault_cycles: u64, meter: CycleMeter) -> Self {
        Self::new(DEFAULT_CAPACITY, page_fault_cycles, meter)
    }

    /// Allocates `bytes`; pages beyond capacity charge the paging penalty.
    pub fn alloc(&mut self, bytes: usize) {
        let before_pages_over = self.pages_over_capacity();
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        let after_pages_over = self.pages_over_capacity();
        let new_faults = (after_pages_over - before_pages_over) as u64;
        if new_faults > 0 {
            self.page_faults += new_faults;
            self.meter.add(new_faults * self.page_fault_cycles);
        }
    }

    /// Frees `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if more is freed than was allocated (an accounting bug in the
    /// caller).
    pub fn free(&mut self, bytes: usize) {
        assert!(bytes <= self.used, "EPC accounting underflow");
        self.used -= bytes;
    }

    fn pages_over_capacity(&self) -> usize {
        self.used.saturating_sub(self.capacity).div_ceil(PAGE_SIZE)
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used
    }

    /// High-water mark.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Total paging events so far.
    pub fn page_faults(&self) -> u64 {
        self.page_faults
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_budget_is_free() {
        let meter = CycleMeter::new();
        let mut epc = EpcAllocator::new(1 << 20, 1000, meter.clone());
        epc.alloc(512 * 1024);
        epc.alloc(512 * 1024);
        assert_eq!(epc.page_faults(), 0);
        assert_eq!(meter.read(), 0);
        assert_eq!(epc.used(), 1 << 20);
    }

    #[test]
    fn overflow_charges_paging() {
        let meter = CycleMeter::new();
        let mut epc = EpcAllocator::new(1 << 20, 1000, meter.clone());
        epc.alloc(1 << 20);
        epc.alloc(2 * PAGE_SIZE); // two pages over
        assert_eq!(epc.page_faults(), 2);
        assert_eq!(meter.read(), 2000);
    }

    #[test]
    fn free_then_realloc_faults_again() {
        let meter = CycleMeter::new();
        let mut epc = EpcAllocator::new(PAGE_SIZE, 10, meter.clone());
        epc.alloc(2 * PAGE_SIZE); // 1 page over
        assert_eq!(epc.page_faults(), 1);
        epc.free(PAGE_SIZE);
        epc.alloc(PAGE_SIZE); // over again
        assert_eq!(epc.page_faults(), 2);
        assert_eq!(epc.peak(), 2 * PAGE_SIZE);
    }

    #[test]
    #[should_panic(expected = "EPC accounting underflow")]
    fn underflow_panics() {
        let mut epc = EpcAllocator::new(PAGE_SIZE, 10, CycleMeter::new());
        epc.free(1);
    }
}
