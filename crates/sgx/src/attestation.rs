//! Remote attestation: reports, the Quoting Enclave and a simulated Intel
//! Attestation Service (IAS).
//!
//! Reproduces the message flow of Fig. 4: an enclave creates a *report*
//! binding user data (the enclave's fresh public key) to its measurement;
//! the Quoting Enclave converts the report into a *quote* signed with the
//! platform's attestation key (fused into the CPU at manufacturing,
//! §II-C); the IAS verifies the quote and answers with a signed
//! attestation verification report the CA can check.

use crate::error::EnclaveError;
use crate::measurement::Measurement;
use endbox_crypto::hmac::hmac_sha256;
use endbox_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use std::collections::HashSet;

/// Size of the user-data field in reports and quotes.
pub const USER_DATA_LEN: usize = 64;

/// A per-CPU identity holding the keys "fused into the CPU during
/// manufacturing" (§II-C).
#[derive(Clone)]
pub struct CpuIdentity {
    fuse_seed: [u8; 32],
}

impl std::fmt::Debug for CpuIdentity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CpuIdentity { fuse_seed: <redacted> }")
    }
}

impl CpuIdentity {
    /// Creates a CPU identity from a manufacturing seed.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        CpuIdentity { fuse_seed: seed }
    }

    /// The fuse seed (only the SGX model itself should use this).
    pub(crate) fn fuse_seed(&self) -> &[u8; 32] {
        &self.fuse_seed
    }

    /// Key used to MAC local-attestation reports.
    fn report_key(&self) -> [u8; 32] {
        hmac_sha256(&self.fuse_seed, b"sgx-report-key")
    }

    /// The EPID-stand-in attestation signing key.
    fn attestation_key(&self) -> SigningKey {
        SigningKey::from_seed(&hmac_sha256(&self.fuse_seed, b"sgx-attestation-key"))
    }

    /// Public half of the attestation key, as provisioned to Intel (here:
    /// registered with the [`IasSimulator`]).
    pub fn attestation_public(&self) -> VerifyingKey {
        self.attestation_key().verifying_key()
    }
}

/// A local-attestation report: measurement + user data, MACed with the
/// CPU's report key so only enclaves on the same platform (here: the
/// Quoting Enclave) can verify it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Measurement of the reporting enclave.
    pub measurement: Measurement,
    /// Caller-chosen binding data (EndBox: the enclave's public key hash).
    pub user_data: [u8; USER_DATA_LEN],
    mac: [u8; 32],
}

impl Report {
    /// Creates a report. Internal: called via
    /// [`crate::EnclaveServices::create_report`] so that only enclave code
    /// can bind its own measurement.
    pub(crate) fn create(
        cpu: &CpuIdentity,
        measurement: Measurement,
        user_data: [u8; USER_DATA_LEN],
    ) -> Report {
        let mac = report_mac(cpu, &measurement, &user_data);
        Report {
            measurement,
            user_data,
            mac,
        }
    }

    /// Verifies the MAC against the platform's report key.
    fn verify(&self, cpu: &CpuIdentity) -> bool {
        endbox_crypto::ct_eq(
            &report_mac(cpu, &self.measurement, &self.user_data),
            &self.mac,
        )
    }
}

fn report_mac(
    cpu: &CpuIdentity,
    measurement: &Measurement,
    user_data: &[u8; USER_DATA_LEN],
) -> [u8; 32] {
    let mut msg = Vec::with_capacity(32 + USER_DATA_LEN);
    msg.extend_from_slice(measurement.as_bytes());
    msg.extend_from_slice(user_data);
    hmac_sha256(&cpu.report_key(), &msg)
}

/// A quote: a report countersigned with the platform attestation key, fit
/// for remote verification.
#[derive(Debug, Clone, PartialEq)]
pub struct Quote {
    /// Measurement of the quoted enclave.
    pub measurement: Measurement,
    /// User data carried over from the report.
    pub user_data: [u8; USER_DATA_LEN],
    /// Platform attestation public key (identifies the signing platform).
    pub platform_key: VerifyingKey,
    signature: Signature,
}

fn quote_message(measurement: &Measurement, user_data: &[u8; USER_DATA_LEN]) -> Vec<u8> {
    let mut msg = Vec::with_capacity(9 + 32 + USER_DATA_LEN);
    msg.extend_from_slice(b"sgx-quote");
    msg.extend_from_slice(measurement.as_bytes());
    msg.extend_from_slice(user_data);
    msg
}

/// The Quoting Enclave: verifies local reports and produces quotes.
#[derive(Debug, Clone)]
pub struct QuotingEnclave {
    cpu: CpuIdentity,
}

impl QuotingEnclave {
    /// Instantiates the QE on a platform.
    pub fn new(cpu: CpuIdentity) -> Self {
        QuotingEnclave { cpu }
    }

    /// Converts a report into a quote.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveError::AttestationFailed`] if the report was not
    /// produced on this platform (bad MAC).
    pub fn quote(
        &self,
        report: &Report,
        rng: &mut impl rand::RngCore,
    ) -> Result<Quote, EnclaveError> {
        if !report.verify(&self.cpu) {
            return Err(EnclaveError::AttestationFailed("report MAC invalid"));
        }
        let msg = quote_message(&report.measurement, &report.user_data);
        let signature = self.cpu.attestation_key().sign(&msg, rng);
        Ok(Quote {
            measurement: report.measurement,
            user_data: report.user_data,
            platform_key: self.cpu.attestation_public(),
            signature,
        })
    }
}

/// Verdict carried in an IAS attestation verification report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuoteStatus {
    /// Quote verified against a registered, non-revoked platform.
    Ok,
    /// Signature did not verify.
    SignatureInvalid,
    /// Platform key unknown to the attestation service.
    UnknownPlatform,
    /// Platform key has been revoked.
    PlatformRevoked,
}

/// A signed attestation verification report from the (simulated) IAS.
#[derive(Debug, Clone, PartialEq)]
pub struct IasReport {
    /// Verification verdict.
    pub status: QuoteStatus,
    /// Measurement from the verified quote.
    pub measurement: Measurement,
    /// User data from the verified quote.
    pub user_data: [u8; USER_DATA_LEN],
    signature: Signature,
}

impl IasReport {
    /// Verifies the IAS signature with the service's public key.
    pub fn verify(&self, ias_key: &VerifyingKey) -> Result<(), EnclaveError> {
        ias_key
            .verify(
                &ias_report_message(self.status, &self.measurement, &self.user_data),
                &self.signature,
            )
            .map_err(|_| EnclaveError::AttestationFailed("IAS report signature invalid"))
    }
}

fn ias_report_message(
    status: QuoteStatus,
    measurement: &Measurement,
    user_data: &[u8; USER_DATA_LEN],
) -> Vec<u8> {
    let status_byte = match status {
        QuoteStatus::Ok => 0u8,
        QuoteStatus::SignatureInvalid => 1,
        QuoteStatus::UnknownPlatform => 2,
        QuoteStatus::PlatformRevoked => 3,
    };
    let mut msg = Vec::with_capacity(8 + 1 + 32 + USER_DATA_LEN);
    msg.extend_from_slice(b"ias-avr");
    msg.push(status_byte);
    msg.extend_from_slice(measurement.as_bytes());
    msg.extend_from_slice(user_data);
    msg
}

/// Simulated web-based Intel Attestation Service (§II-C: "Using the
/// web-based Intel Attestation Service, quotes can be remotely verified to
/// originate from a genuine SGX CPU").
#[derive(Debug)]
pub struct IasSimulator {
    signing: SigningKey,
    registered: HashSet<[u8; 32]>,
    revoked: HashSet<[u8; 32]>,
}

impl IasSimulator {
    /// Creates the service with a fresh signing key.
    pub fn new(rng: &mut impl rand::RngCore) -> Self {
        IasSimulator {
            signing: SigningKey::generate(rng),
            registered: HashSet::new(),
            revoked: HashSet::new(),
        }
    }

    /// The service's report-signing public key (relying parties pin this).
    pub fn public_key(&self) -> VerifyingKey {
        self.signing.verifying_key()
    }

    /// Registers a genuine platform (models Intel's manufacturing-time key
    /// provisioning).
    pub fn register_platform(&mut self, key: VerifyingKey) {
        self.registered.insert(key.to_bytes());
    }

    /// Revokes a platform.
    pub fn revoke_platform(&mut self, key: &VerifyingKey) {
        self.revoked.insert(key.to_bytes());
    }

    /// Verifies a quote, returning a signed verification report.
    pub fn verify_quote(&self, quote: &Quote, rng: &mut impl rand::RngCore) -> IasReport {
        let key_bytes = quote.platform_key.to_bytes();
        let status = if self.revoked.contains(&key_bytes) {
            QuoteStatus::PlatformRevoked
        } else if !self.registered.contains(&key_bytes) {
            QuoteStatus::UnknownPlatform
        } else {
            let msg = quote_message(&quote.measurement, &quote.user_data);
            match quote.platform_key.verify(&msg, &quote.signature) {
                Ok(()) => QuoteStatus::Ok,
                Err(_) => QuoteStatus::SignatureInvalid,
            }
        };
        let signature = self.signing.sign(
            &ias_report_message(status, &quote.measurement, &quote.user_data),
            rng,
        );
        IasReport {
            status,
            measurement: quote.measurement,
            user_data: quote.user_data,
            signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    fn setup() -> (
        CpuIdentity,
        QuotingEnclave,
        IasSimulator,
        rand::rngs::StdRng,
    ) {
        let mut r = rng();
        let cpu = CpuIdentity::from_seed([3u8; 32]);
        let qe = QuotingEnclave::new(cpu.clone());
        let mut ias = IasSimulator::new(&mut r);
        ias.register_platform(cpu.attestation_public());
        (cpu, qe, ias, r)
    }

    fn report(cpu: &CpuIdentity, mr: &str, data: u8) -> Report {
        Report::create(
            cpu,
            Measurement::of(mr.as_bytes(), b""),
            [data; USER_DATA_LEN],
        )
    }

    #[test]
    fn full_flow_succeeds() {
        let (cpu, qe, ias, mut r) = setup();
        let rep = report(&cpu, "endbox", 7);
        let quote = qe.quote(&rep, &mut r).unwrap();
        let avr = ias.verify_quote(&quote, &mut r);
        assert_eq!(avr.status, QuoteStatus::Ok);
        avr.verify(&ias.public_key()).unwrap();
        assert_eq!(avr.user_data, [7u8; USER_DATA_LEN]);
    }

    #[test]
    fn qe_rejects_foreign_report() {
        let (_, qe, _, mut r) = setup();
        let other_cpu = CpuIdentity::from_seed([99u8; 32]);
        let rep = report(&other_cpu, "endbox", 7);
        assert!(qe.quote(&rep, &mut r).is_err());
    }

    #[test]
    fn ias_rejects_unknown_platform() {
        let mut r = rng();
        let cpu = CpuIdentity::from_seed([4u8; 32]);
        let qe = QuotingEnclave::new(cpu.clone());
        let ias = IasSimulator::new(&mut r); // platform never registered
        let quote = qe.quote(&report(&cpu, "e", 1), &mut r).unwrap();
        assert_eq!(
            ias.verify_quote(&quote, &mut r).status,
            QuoteStatus::UnknownPlatform
        );
    }

    #[test]
    fn ias_rejects_revoked_platform() {
        let (cpu, qe, mut ias, mut r) = setup();
        ias.revoke_platform(&cpu.attestation_public());
        let quote = qe.quote(&report(&cpu, "e", 1), &mut r).unwrap();
        assert_eq!(
            ias.verify_quote(&quote, &mut r).status,
            QuoteStatus::PlatformRevoked
        );
    }

    #[test]
    fn tampered_quote_flagged() {
        let (cpu, qe, ias, mut r) = setup();
        let mut quote = qe.quote(&report(&cpu, "e", 1), &mut r).unwrap();
        quote.user_data[0] ^= 1; // tamper after signing
        assert_eq!(
            ias.verify_quote(&quote, &mut r).status,
            QuoteStatus::SignatureInvalid
        );
    }

    #[test]
    fn forged_ias_report_rejected() {
        let (cpu, qe, ias, mut r) = setup();
        let quote = qe.quote(&report(&cpu, "e", 1), &mut r).unwrap();
        let avr = ias.verify_quote(&quote, &mut r);
        // Verify against the wrong IAS key (attacker-run service).
        let fake_ias = IasSimulator::new(&mut r);
        assert!(avr.verify(&fake_ias.public_key()).is_err());
    }

    #[test]
    fn report_binds_user_data() {
        let (cpu, qe, ias, mut r) = setup();
        let quote = qe.quote(&report(&cpu, "e", 42), &mut r).unwrap();
        let avr = ias.verify_quote(&quote, &mut r);
        // User data (the enclave public key in EndBox) survives the chain.
        assert_eq!(avr.user_data, [42u8; USER_DATA_LEN]);
        assert_eq!(avr.measurement, Measurement::of(b"e", b""));
    }
}
