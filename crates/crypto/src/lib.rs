//! Cryptographic primitives for the EndBox reproduction, implemented from
//! scratch.
//!
//! The EndBox paper links OpenVPN against TaLoS (a LibreSSL port running
//! inside SGX enclaves). This crate provides the same primitives in pure
//! Rust so they can run inside the simulated enclave of the `endbox-sgx` crate:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4), streaming and one-shot.
//! * [`hmac`] — HMAC-SHA256 (RFC 2104) and a small HKDF (RFC 5869).
//! * [`aes`] / [`modes`] — AES-128 (FIPS 197) with CBC (PKCS#7) and CTR.
//! * [`x25519`] — Diffie-Hellman over Curve25519 (RFC 7748).
//! * [`schnorr`] — Schnorr signatures over the multiplicative group of
//!   GF(2^255 − 19); used for the certificate authority, quote signing and
//!   configuration-file signing. (The real system used RSA/ECDSA via
//!   LibreSSL; Schnorr keeps the same protocol shape with far less code.)
//! * [`u256`] — fixed-width 256-bit arithmetic shared by the two previous
//!   modules.
//!
//! All primitives are deterministic and dependency-free; randomness is
//! always passed in by the caller (`rand::RngCore`), which keeps the whole
//! EndBox simulation reproducible from a seed.
//!
//! # Example
//!
//! ```
//! use endbox_crypto::{sha256::sha256, hmac::hmac_sha256};
//!
//! let digest = sha256(b"abc");
//! assert_eq!(digest[0], 0xba);
//! let tag = hmac_sha256(b"key", b"message");
//! assert_eq!(tag.len(), 32);
//! ```

pub mod aes;
pub mod error;
pub mod hex;
pub mod hmac;
pub mod modes;
pub mod schnorr;
pub mod sha256;
pub mod u256;
pub mod x25519;

pub use error::CryptoError;

/// Compares two byte slices in time independent of their contents
/// (lengths are still revealed).
///
/// ```
/// assert!(endbox_crypto::ct_eq(b"abc", b"abc"));
/// assert!(!endbox_crypto::ct_eq(b"abc", b"abd"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"hello", b"hello"));
        assert!(!ct_eq(b"hello", b"hellO"));
        assert!(!ct_eq(b"hello", b"hell"));
    }
}
