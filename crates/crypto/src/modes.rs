//! Block cipher modes for AES-128: CBC with PKCS#7 padding, and CTR.
//!
//! EndBox's data channel uses AES-128-CBC with an HMAC-SHA256 tag (matching
//! OpenVPN's default static configuration in the paper); the TLS shim uses
//! CTR for application-record protection.

use crate::aes::{Aes128, BLOCK_LEN};
use crate::CryptoError;

/// Encrypts `plaintext` with AES-128-CBC and PKCS#7 padding.
///
/// The output is always a non-zero multiple of the block size.
///
/// ```
/// use endbox_crypto::{aes::Aes128, modes};
/// let aes = Aes128::new(&[7u8; 16]);
/// let iv = [9u8; 16];
/// let ct = modes::cbc_encrypt(&aes, &iv, b"attack at dawn");
/// let pt = modes::cbc_decrypt(&aes, &iv, &ct).unwrap();
/// assert_eq!(pt, b"attack at dawn");
/// ```
pub fn cbc_encrypt(aes: &Aes128, iv: &[u8; BLOCK_LEN], plaintext: &[u8]) -> Vec<u8> {
    let pad = BLOCK_LEN - (plaintext.len() % BLOCK_LEN);
    let mut data = Vec::with_capacity(plaintext.len() + pad);
    data.extend_from_slice(plaintext);
    data.extend(std::iter::repeat_n(pad as u8, pad));

    let mut prev = *iv;
    for chunk in data.chunks_exact_mut(BLOCK_LEN) {
        for i in 0..BLOCK_LEN {
            chunk[i] ^= prev[i];
        }
        let block: [u8; BLOCK_LEN] = (&*chunk).try_into().unwrap();
        let ct = aes.encrypt_block(&block);
        chunk.copy_from_slice(&ct);
        prev = ct;
    }
    data
}

/// Decrypts AES-128-CBC ciphertext and strips PKCS#7 padding.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidLength`] if `ciphertext` is empty or not a
/// multiple of the block size, and [`CryptoError::InvalidPadding`] if the
/// padding is malformed.
pub fn cbc_decrypt(
    aes: &Aes128,
    iv: &[u8; BLOCK_LEN],
    ciphertext: &[u8],
) -> Result<Vec<u8>, CryptoError> {
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK_LEN) {
        return Err(CryptoError::InvalidLength);
    }
    let mut out = Vec::with_capacity(ciphertext.len());
    let mut prev = *iv;
    for chunk in ciphertext.chunks_exact(BLOCK_LEN) {
        let block: [u8; BLOCK_LEN] = chunk.try_into().unwrap();
        let mut pt = aes.decrypt_block(&block);
        for i in 0..BLOCK_LEN {
            pt[i] ^= prev[i];
        }
        prev = block;
        out.extend_from_slice(&pt);
    }
    let pad = *out.last().unwrap() as usize;
    if pad == 0 || pad > BLOCK_LEN || pad > out.len() {
        return Err(CryptoError::InvalidPadding);
    }
    if !out[out.len() - pad..].iter().all(|&b| b as usize == pad) {
        return Err(CryptoError::InvalidPadding);
    }
    out.truncate(out.len() - pad);
    Ok(out)
}

/// Applies AES-128-CTR keystream to `data` in place (encrypt == decrypt).
///
/// `nonce` provides the initial counter block; the low 32 bits are
/// incremented big-endian per block.
pub fn ctr_xor(aes: &Aes128, nonce: &[u8; BLOCK_LEN], data: &mut [u8]) {
    let mut counter = *nonce;
    for chunk in data.chunks_mut(BLOCK_LEN) {
        let keystream = aes.encrypt_block(&counter);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
        // Increment the final 32-bit word (big-endian), carrying upward.
        for i in (0..BLOCK_LEN).rev() {
            counter[i] = counter[i].wrapping_add(1);
            if counter[i] != 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn nist_key() -> Aes128 {
        Aes128::new(&hex::decode_array::<16>("2b7e151628aed2a6abf7158809cf4f3c").unwrap())
    }

    #[test]
    fn sp800_38a_cbc() {
        let aes = nist_key();
        let iv = hex::decode_array::<16>("000102030405060708090a0b0c0d0e0f").unwrap();
        let pt = hex::decode("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51")
            .unwrap();
        let ct = cbc_encrypt(&aes, &iv, &pt);
        // First two blocks match the NIST vector; the third is our padding.
        assert_eq!(
            hex::encode(&ct[..32]),
            "7649abac8119b246cee98e9b12e9197d5086cb9b507219ee95db113a917678b2"
        );
        assert_eq!(ct.len(), 48);
        assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), pt);
    }

    #[test]
    fn sp800_38a_ctr() {
        let aes = nist_key();
        let nonce = hex::decode_array::<16>("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").unwrap();
        let mut data =
            hex::decode("6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51")
                .unwrap();
        ctr_xor(&aes, &nonce, &mut data);
        assert_eq!(
            hex::encode(&data),
            "874d6191b620e3261bef6864990db6ce9806f66b7970fdff8617187bb9fffdff"
        );
    }

    #[test]
    fn cbc_rejects_bad_lengths() {
        let aes = nist_key();
        let iv = [0u8; 16];
        assert_eq!(cbc_decrypt(&aes, &iv, &[]), Err(CryptoError::InvalidLength));
        assert_eq!(
            cbc_decrypt(&aes, &iv, &[0u8; 17]),
            Err(CryptoError::InvalidLength)
        );
    }

    #[test]
    fn cbc_rejects_corrupt_padding() {
        let aes = nist_key();
        let iv = [3u8; 16];
        let mut ct = cbc_encrypt(&aes, &iv, b"hello world");
        let n = ct.len();
        ct[n - 1] ^= 0xff; // garble last block -> padding check must fail
        assert!(cbc_decrypt(&aes, &iv, &ct).is_err());
    }

    #[test]
    fn cbc_all_plaintext_lengths() {
        let aes = nist_key();
        let iv = [0x42u8; 16];
        for len in 0..=48 {
            let pt: Vec<u8> = (0..len as u8).collect();
            let ct = cbc_encrypt(&aes, &iv, &pt);
            assert_eq!(ct.len() % 16, 0);
            assert!(ct.len() > pt.len(), "padding always added");
            assert_eq!(cbc_decrypt(&aes, &iv, &ct).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn ctr_roundtrip_and_counter_carry() {
        let aes = nist_key();
        // Nonce that forces a carry out of the low byte after one block.
        let nonce = hex::decode_array::<16>("000000000000000000000000000000ff").unwrap();
        let original: Vec<u8> = (0..100).collect();
        let mut data = original.clone();
        ctr_xor(&aes, &nonce, &mut data);
        assert_ne!(data, original);
        ctr_xor(&aes, &nonce, &mut data);
        assert_eq!(data, original);
    }
}
