//! Schnorr signatures over the multiplicative group of GF(2^255 − 19).
//!
//! The EndBox certificate authority, Quoting Enclave and configuration
//! signing all need an asymmetric signature. The real system used the
//! LibreSSL stack (RSA/ECDSA certificates); this reproduction uses textbook
//! Schnorr in `Z_p^*` with `p = 2^255 − 19` and generator `g = 2`, which
//! keeps the protocol shape (sign/verify with public-key certificates) while
//! staying within the from-scratch big-integer code of [`crate::u256`].
//!
//! This is a *simulation-grade* scheme: `p − 1` is not prime, so the group
//! has small subgroups and the scheme must not be used outside this
//! reproduction.

use crate::sha256::Sha256;
use crate::u256::{P25519, P25519_MINUS_1, U256};
use crate::CryptoError;

/// Generator of the group.
fn g() -> U256 {
    U256::from(2u64)
}

/// A Schnorr signing key.
#[derive(Clone)]
pub struct SigningKey {
    sk: U256,
    vk: VerifyingKey,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SigningKey {{ vk: {:?}, sk: <redacted> }}", self.vk)
    }
}

/// A Schnorr verifying (public) key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey(U256);

/// A Schnorr signature `(r, s)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    r: U256,
    s: U256,
}

/// Serialised signature length in bytes.
pub const SIGNATURE_LEN: usize = 64;
/// Serialised public key length in bytes.
pub const PUBLIC_KEY_LEN: usize = 32;

impl SigningKey {
    /// Generates a fresh key pair.
    pub fn generate(rng: &mut impl rand::RngCore) -> Self {
        let q = P25519_MINUS_1;
        let sk = loop {
            let candidate = q.random(rng);
            if !candidate.is_zero() {
                break candidate;
            }
        };
        let vk = VerifyingKey(P25519.pow(g(), sk));
        SigningKey { sk, vk }
    }

    /// Deterministically derives a key pair from a 32-byte seed
    /// (used for the simulated CPU-fused attestation keys).
    pub fn from_seed(seed: &[u8; 32]) -> Self {
        let q = P25519_MINUS_1;
        let mut h = Sha256::new();
        h.update(b"endbox-schnorr-key");
        h.update(seed);
        let digest = h.finalize();
        let mut sk = q.reduce(U256::from_bytes_be(&digest));
        if sk.is_zero() {
            sk = U256::ONE;
        }
        let vk = VerifyingKey(P25519.pow(g(), sk));
        SigningKey { sk, vk }
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.vk
    }

    /// Serialises the secret scalar (for sealed storage only — never send
    /// this anywhere unprotected).
    pub fn to_bytes(&self) -> [u8; 32] {
        self.sk.to_bytes_be()
    }

    /// Restores a signing key from [`SigningKey::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] for out-of-range scalars.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<Self, CryptoError> {
        let sk = U256::from_bytes_be(bytes);
        if sk.is_zero() || sk >= P25519_MINUS_1.modulus() {
            return Err(CryptoError::InvalidKey);
        }
        let vk = VerifyingKey(P25519.pow(g(), sk));
        Ok(SigningKey { sk, vk })
    }

    /// Signs `msg`.
    pub fn sign(&self, msg: &[u8], rng: &mut impl rand::RngCore) -> Signature {
        let p = P25519;
        let q = P25519_MINUS_1;
        let k = loop {
            let candidate = q.random(rng);
            if !candidate.is_zero() {
                break candidate;
            }
        };
        let r = p.pow(g(), k);
        let e = challenge(&r, &self.vk, msg);
        let s = q.add(k, q.mul(e, self.sk));
        Signature { r, s }
    }
}

impl VerifyingKey {
    /// Verifies `sig` over `msg`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidSignature`] if verification fails.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> Result<(), CryptoError> {
        let p = P25519;
        if sig.r.is_zero() || sig.r >= p.modulus() || sig.s >= P25519_MINUS_1.modulus() {
            return Err(CryptoError::InvalidSignature);
        }
        let e = challenge(&sig.r, self, msg);
        let lhs = p.pow(g(), sig.s);
        let rhs = p.mul(sig.r, p.pow(self.0, e));
        if lhs == rhs {
            Ok(())
        } else {
            Err(CryptoError::InvalidSignature)
        }
    }

    /// Serialises to 32 bytes.
    pub fn to_bytes(self) -> [u8; PUBLIC_KEY_LEN] {
        self.0.to_bytes_be()
    }

    /// Parses from 32 bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidKey`] if the value is not a valid group
    /// element (zero or ≥ p).
    pub fn from_bytes(bytes: &[u8; PUBLIC_KEY_LEN]) -> Result<Self, CryptoError> {
        let v = U256::from_bytes_be(bytes);
        if v.is_zero() || v >= P25519.modulus() {
            return Err(CryptoError::InvalidKey);
        }
        Ok(VerifyingKey(v))
    }
}

impl Signature {
    /// Serialises to 64 bytes (`r || s`, big-endian).
    pub fn to_bytes(self) -> [u8; SIGNATURE_LEN] {
        let mut out = [0u8; SIGNATURE_LEN];
        out[..32].copy_from_slice(&self.r.to_bytes_be());
        out[32..].copy_from_slice(&self.s.to_bytes_be());
        out
    }

    /// Parses from 64 bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidSignature`] on out-of-range components.
    pub fn from_bytes(bytes: &[u8; SIGNATURE_LEN]) -> Result<Self, CryptoError> {
        let r = U256::from_bytes_be(bytes[..32].try_into().unwrap());
        let s = U256::from_bytes_be(bytes[32..].try_into().unwrap());
        if r.is_zero() || r >= P25519.modulus() || s >= P25519_MINUS_1.modulus() {
            return Err(CryptoError::InvalidSignature);
        }
        Ok(Signature { r, s })
    }
}

/// Fiat-Shamir challenge `e = H(r || pk || msg) mod (p-1)`.
fn challenge(r: &U256, vk: &VerifyingKey, msg: &[u8]) -> U256 {
    let mut h = Sha256::new();
    h.update(b"endbox-schnorr-sig");
    h.update(&r.to_bytes_be());
    h.update(&vk.0.to_bytes_be());
    h.update(msg);
    P25519_MINUS_1.reduce(U256::from_bytes_be(&h.finalize()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = rng();
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"hello middleboxes", &mut rng);
        key.verifying_key()
            .verify(b"hello middleboxes", &sig)
            .unwrap();
    }

    #[test]
    fn rejects_tampered_message() {
        let mut rng = rng();
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"config v1", &mut rng);
        assert_eq!(
            key.verifying_key().verify(b"config v2", &sig),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn rejects_wrong_key() {
        let mut rng = rng();
        let key1 = SigningKey::generate(&mut rng);
        let key2 = SigningKey::generate(&mut rng);
        let sig = key1.sign(b"msg", &mut rng);
        assert!(key2.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn rejects_tampered_signature() {
        let mut rng = rng();
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"msg", &mut rng);
        let mut bytes = sig.to_bytes();
        bytes[40] ^= 1;
        if let Ok(bad) = Signature::from_bytes(&bytes) {
            assert!(key.verifying_key().verify(b"msg", &bad).is_err());
        }
    }

    #[test]
    fn signature_serialisation_roundtrip() {
        let mut rng = rng();
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"serialise me", &mut rng);
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(parsed, sig);
        let vk = VerifyingKey::from_bytes(&key.verifying_key().to_bytes()).unwrap();
        vk.verify(b"serialise me", &parsed).unwrap();
    }

    #[test]
    fn signing_key_serialisation_roundtrip() {
        let mut rng = rng();
        let key = SigningKey::generate(&mut rng);
        let restored = SigningKey::from_bytes(&key.to_bytes()).unwrap();
        assert_eq!(restored.verifying_key(), key.verifying_key());
        let sig = restored.sign(b"signed by the restored key", &mut rng);
        key.verifying_key()
            .verify(b"signed by the restored key", &sig)
            .unwrap();
        assert!(SigningKey::from_bytes(&[0u8; 32]).is_err());
        assert!(SigningKey::from_bytes(&[0xff; 32]).is_err());
    }

    #[test]
    fn from_seed_is_deterministic() {
        let k1 = SigningKey::from_seed(&[7u8; 32]);
        let k2 = SigningKey::from_seed(&[7u8; 32]);
        assert_eq!(k1.verifying_key(), k2.verifying_key());
        let k3 = SigningKey::from_seed(&[8u8; 32]);
        assert_ne!(k1.verifying_key(), k3.verifying_key());
    }

    #[test]
    fn rejects_out_of_range_encodings() {
        assert!(VerifyingKey::from_bytes(&[0u8; 32]).is_err());
        assert!(VerifyingKey::from_bytes(&[0xff; 32]).is_err());
        assert!(Signature::from_bytes(&[0xff; 64]).is_err());
        assert!(Signature::from_bytes(&[0u8; 64]).is_err());
    }

    #[test]
    fn distinct_messages_have_distinct_signatures() {
        let mut rng = rng();
        let key = SigningKey::generate(&mut rng);
        let s1 = key.sign(b"a", &mut rng);
        let s2 = key.sign(b"b", &mut rng);
        assert_ne!(s1, s2);
    }
}
