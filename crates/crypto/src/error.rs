//! Error type shared by all primitives in this crate.

use std::error::Error;
use std::fmt;

/// Errors produced by cryptographic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// An input had a length the primitive cannot accept (e.g. a ciphertext
    /// that is not a multiple of the block size).
    InvalidLength,
    /// CBC padding was malformed during decryption.
    InvalidPadding,
    /// A MAC or AEAD tag did not verify.
    AuthenticationFailed,
    /// A signature did not verify.
    InvalidSignature,
    /// A key or public value was out of range or otherwise malformed.
    InvalidKey,
    /// Hex input contained a non-hex character or had odd length.
    InvalidHex,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            CryptoError::InvalidLength => "input has invalid length",
            CryptoError::InvalidPadding => "invalid padding",
            CryptoError::AuthenticationFailed => "authentication failed",
            CryptoError::InvalidSignature => "invalid signature",
            CryptoError::InvalidKey => "invalid key material",
            CryptoError::InvalidHex => "invalid hex encoding",
        };
        f.write_str(msg)
    }
}

impl Error for CryptoError {}
