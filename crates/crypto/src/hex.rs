//! Minimal hex encoding/decoding used by tests and wire-format debugging.

use crate::CryptoError;

/// Encodes bytes as a lowercase hex string.
///
/// ```
/// assert_eq!(endbox_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    s
}

/// Decodes a hex string (upper- or lowercase, no separators).
///
/// # Errors
///
/// Returns [`CryptoError::InvalidHex`] on odd length or non-hex characters.
///
/// ```
/// let v = endbox_crypto::hex::decode("00ff").unwrap();
/// assert_eq!(v, vec![0x00, 0xff]);
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, CryptoError> {
    let s = s.as_bytes();
    if !s.len().is_multiple_of(2) {
        return Err(CryptoError::InvalidHex);
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for chunk in s.chunks(2) {
        let hi = (chunk[0] as char)
            .to_digit(16)
            .ok_or(CryptoError::InvalidHex)?;
        let lo = (chunk[1] as char)
            .to_digit(16)
            .ok_or(CryptoError::InvalidHex)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

/// Decodes a hex string into a fixed-size array.
///
/// # Errors
///
/// Returns [`CryptoError::InvalidHex`] if decoding fails and
/// [`CryptoError::InvalidLength`] if the decoded length is not `N`.
pub fn decode_array<const N: usize>(s: &str) -> Result<[u8; N], CryptoError> {
    let v = decode(s)?;
    v.try_into().map_err(|_| CryptoError::InvalidLength)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(decode("0"), Err(CryptoError::InvalidHex));
        assert_eq!(decode("0g"), Err(CryptoError::InvalidHex));
        assert_eq!(decode_array::<4>("0011"), Err(CryptoError::InvalidLength));
    }

    #[test]
    fn uppercase_ok() {
        assert_eq!(decode("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }
}
