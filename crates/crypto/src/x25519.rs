//! X25519 Diffie-Hellman (RFC 7748), built on the Montgomery ladder.
//!
//! Used by the EndBox control channel (VPN handshake) and by the TLS shim
//! that forwards session keys into the enclave.

use crate::u256::{P25519, U256};

/// Length of scalars, coordinates and shared secrets.
pub const KEY_LEN: usize = 32;

/// The standard base point `u = 9`.
pub const BASE_POINT: [u8; 32] = {
    let mut b = [0u8; 32];
    b[0] = 9;
    b
};

const A24: u64 = 121665; // (486662 - 2) / 4

/// Clamps a 32-byte scalar per RFC 7748 §5.
pub fn clamp_scalar(mut k: [u8; 32]) -> [u8; 32] {
    k[0] &= 248;
    k[31] &= 127;
    k[31] |= 64;
    k
}

/// Scalar multiplication on Curve25519: computes `k * u`.
///
/// `k` is clamped internally; `u` has its top bit masked, both per RFC 7748.
pub fn x25519(k: &[u8; 32], u: &[u8; 32]) -> [u8; 32] {
    let k = clamp_scalar(*k);
    let mut u = *u;
    u[31] &= 0x7f;
    let x1 = P25519.reduce(U256::from_bytes_le(&u));

    let f = P25519;
    let mut x2 = U256::ONE;
    let mut z2 = U256::ZERO;
    let mut x3 = x1;
    let mut z3 = U256::ONE;
    let mut swap = false;

    for t in (0..255).rev() {
        let kt = (k[t / 8] >> (t % 8)) & 1 == 1;
        swap ^= kt;
        if swap {
            std::mem::swap(&mut x2, &mut x3);
            std::mem::swap(&mut z2, &mut z3);
        }
        swap = kt;

        let a = f.add(x2, z2);
        let aa = f.square(a);
        let b = f.sub(x2, z2);
        let bb = f.square(b);
        let e = f.sub(aa, bb);
        let c = f.add(x3, z3);
        let d = f.sub(x3, z3);
        let da = f.mul(d, a);
        let cb = f.mul(c, b);
        x3 = f.square(f.add(da, cb));
        z3 = f.mul(x1, f.square(f.sub(da, cb)));
        x2 = f.mul(aa, bb);
        z2 = f.mul(e, f.add(aa, f.mul(U256::from(A24), e)));
    }
    if swap {
        std::mem::swap(&mut x2, &mut x3);
        std::mem::swap(&mut z2, &mut z3);
    }
    f.mul(x2, f.invert(z2)).to_bytes_le()
}

/// Computes the public key for a secret scalar.
pub fn public_key(secret: &[u8; 32]) -> [u8; 32] {
    x25519(secret, &BASE_POINT)
}

/// Generates an (unclamped secret, public key) pair from `rng`.
pub fn keypair(rng: &mut impl rand::RngCore) -> ([u8; 32], [u8; 32]) {
    let mut sk = [0u8; 32];
    rng.fill_bytes(&mut sk);
    let pk = public_key(&sk);
    (sk, pk)
}

/// Computes the shared secret between `secret` and a peer's `public`.
pub fn shared_secret(secret: &[u8; 32], public: &[u8; 32]) -> [u8; 32] {
    x25519(secret, public)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;
    use rand::SeedableRng;

    #[test]
    fn rfc7748_vector_1() {
        let k = hex::decode_array::<32>(
            "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4",
        )
        .unwrap();
        let u = hex::decode_array::<32>(
            "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c",
        )
        .unwrap();
        assert_eq!(
            hex::encode(&x25519(&k, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    #[test]
    fn rfc7748_dh_section_6_1() {
        let alice_sk = hex::decode_array::<32>(
            "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a",
        )
        .unwrap();
        let bob_sk = hex::decode_array::<32>(
            "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb",
        )
        .unwrap();
        let alice_pk = public_key(&alice_sk);
        let bob_pk = public_key(&bob_sk);
        assert_eq!(
            hex::encode(&alice_pk),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a"
        );
        assert_eq!(
            hex::encode(&bob_pk),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f"
        );
        let s1 = shared_secret(&alice_sk, &bob_pk);
        let s2 = shared_secret(&bob_sk, &alice_pk);
        assert_eq!(s1, s2);
        assert_eq!(
            hex::encode(&s1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742"
        );
    }

    #[test]
    fn dh_commutes_for_random_keys() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..8 {
            let (a_sk, a_pk) = keypair(&mut rng);
            let (b_sk, b_pk) = keypair(&mut rng);
            assert_eq!(shared_secret(&a_sk, &b_pk), shared_secret(&b_sk, &a_pk));
        }
    }

    #[test]
    fn clamping_is_idempotent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut k = [0u8; 32];
        rand::RngCore::fill_bytes(&mut rng, &mut k);
        let once = clamp_scalar(k);
        assert_eq!(clamp_scalar(once), once);
        assert_eq!(once[0] & 7, 0);
        assert_eq!(once[31] & 0x80, 0);
        assert_eq!(once[31] & 0x40, 0x40);
    }
}
