//! Fixed-width 256-bit unsigned arithmetic with fast reduction modulo
//! pseudo-Mersenne primes of the form `2^255 - c`.
//!
//! [`x25519`](crate::x25519) uses `c = 19` (the Curve25519 field) and
//! [`schnorr`](crate::schnorr) uses `c = 19` for the group and `c = 20`
//! (= p − 1) for the exponents.

use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer, little-endian `u64` limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{})", crate::hex::encode(&self.to_bytes_be()))
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", crate::hex::encode(&self.to_bytes_be()))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u64> for U256 {
    fn from(x: u64) -> Self {
        U256([x, 0, 0, 0])
    }
}

impl U256 {
    /// The value 0.
    pub const ZERO: U256 = U256([0; 4]);
    /// The value 1.
    pub const ONE: U256 = U256([1, 0, 0, 0]);

    /// Parses from 32 big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let chunk: [u8; 8] = bytes[i * 8..(i + 1) * 8].try_into().unwrap();
            limbs[3 - i] = u64::from_be_bytes(chunk);
        }
        U256(limbs)
    }

    /// Serialises to 32 big-endian bytes.
    pub fn to_bytes_be(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..(i + 1) * 8].copy_from_slice(&self.0[3 - i].to_be_bytes());
        }
        out
    }

    /// Parses from 32 little-endian bytes (the X25519 wire order).
    pub fn from_bytes_le(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let chunk: [u8; 8] = bytes[i * 8..(i + 1) * 8].try_into().unwrap();
            limbs[i] = u64::from_le_bytes(chunk);
        }
        U256(limbs)
    }

    /// Serialises to 32 little-endian bytes.
    pub fn to_bytes_le(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..(i + 1) * 8].copy_from_slice(&self.0[i].to_le_bytes());
        }
        out
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Returns bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 256);
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Index of the highest set bit, or `None` for zero.
    pub fn highest_bit(&self) -> Option<usize> {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return Some(i * 64 + 63 - self.0[i].leading_zeros() as usize);
            }
        }
        None
    }

    /// Addition with carry-out.
    pub fn overflowing_add(self, other: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for (i, limb) in out.iter_mut().enumerate() {
            let (s1, c1) = self.0[i].overflowing_add(other.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        (U256(out), carry != 0)
    }

    /// Subtraction with borrow-out.
    pub fn overflowing_sub(self, other: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for (i, limb) in out.iter_mut().enumerate() {
            let (d1, b1) = self.0[i].overflowing_sub(other.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (U256(out), borrow != 0)
    }

    /// Wrapping subtraction (used only when `self >= other` is known).
    pub fn wrapping_sub(self, other: U256) -> U256 {
        self.overflowing_sub(other).0
    }

    /// Full 256×256 → 512-bit multiplication, little-endian limbs.
    pub fn widening_mul(self, other: U256) -> [u64; 8] {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let t = out[i + j] as u128 + self.0[i] as u128 * other.0[j] as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + 4;
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        out
    }
}

/// Arithmetic modulo `m = 2^255 - c` for small `c`.
///
/// Reduction uses the pseudo-Mersenne fold `2^255 ≡ c (mod m)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecialModulus {
    c: u64,
    modulus: U256,
}

/// The Curve25519 base field prime, `p = 2^255 − 19`.
pub const P25519: SpecialModulus = SpecialModulus::new(19);
/// The Schnorr exponent modulus, `p − 1 = 2^255 − 20`.
pub const P25519_MINUS_1: SpecialModulus = SpecialModulus::new(20);

impl SpecialModulus {
    /// Creates the modulus `2^255 - c`. `c` must be small (< 2^32) so that
    /// at most three folds reduce any 512-bit value.
    pub const fn new(c: u64) -> Self {
        assert!(c > 0 && c < (1 << 32));
        // 2^255 - c: low limb underflows from 0 - c with the 2^255 bit set
        // at limb 3.
        let low = 0u64.wrapping_sub(c);
        SpecialModulus {
            c,
            modulus: U256([low, u64::MAX, u64::MAX, (1u64 << 63) - 1]),
        }
    }

    /// The modulus value `2^255 - c`.
    pub fn modulus(&self) -> U256 {
        self.modulus
    }

    /// Reduces a 256-bit value (folds the top bit, then subtracts).
    pub fn reduce(&self, x: U256) -> U256 {
        let mut v = x;
        // Fold bit 255: x = hi * 2^255 + lo ≡ hi * c + lo.
        loop {
            let hi = v.0[3] >> 63;
            if hi == 0 {
                break;
            }
            let lo = U256([v.0[0], v.0[1], v.0[2], v.0[3] & ((1u64 << 63) - 1)]);
            let (sum, overflow) = lo.overflowing_add(U256::from(hi * self.c));
            debug_assert!(!overflow);
            v = sum;
        }
        while v >= self.modulus {
            v = v.wrapping_sub(self.modulus);
        }
        v
    }

    /// Reduces a 512-bit product.
    pub fn reduce_wide(&self, mut w: [u64; 8]) -> U256 {
        // While bits at or above 255 are present, fold them down.
        loop {
            let has_high = w[4] != 0 || w[5] != 0 || w[6] != 0 || w[7] != 0 || (w[3] >> 63) != 0;
            if !has_high {
                break;
            }
            // hi = w >> 255 (shift right 3 limbs + 63 bits).
            let mut hi = [0u64; 8];
            for (i, limb) in hi.iter_mut().enumerate().take(5) {
                let lo_part = w.get(i + 3).copied().unwrap_or(0) >> 63;
                let hi_part = w.get(i + 4).copied().unwrap_or(0) << 1;
                *limb = lo_part | hi_part;
            }
            // lo = w & (2^255 - 1).
            let lo = [w[0], w[1], w[2], w[3] & ((1u64 << 63) - 1), 0, 0, 0, 0];
            // w = hi * c + lo.
            let mut carry = 0u128;
            for i in 0..8 {
                let t = hi[i] as u128 * self.c as u128 + lo[i] as u128 + carry;
                w[i] = t as u64;
                carry = t >> 64;
            }
            debug_assert_eq!(carry, 0);
        }
        let mut v = U256([w[0], w[1], w[2], w[3]]);
        while v >= self.modulus {
            v = v.wrapping_sub(self.modulus);
        }
        v
    }

    /// `(a + b) mod m`; inputs must already be reduced.
    pub fn add(&self, a: U256, b: U256) -> U256 {
        debug_assert!(a < self.modulus && b < self.modulus);
        let (sum, overflow) = a.overflowing_add(b);
        if overflow {
            // sum = a + b - 2^256; 2^256 ≡ 2c (mod m).
            let (fixed, _) = sum.overflowing_add(U256::from(2 * self.c));
            self.reduce(fixed)
        } else {
            self.reduce(sum)
        }
    }

    /// `(a - b) mod m`; inputs must already be reduced.
    pub fn sub(&self, a: U256, b: U256) -> U256 {
        debug_assert!(a < self.modulus && b < self.modulus);
        if a >= b {
            a.wrapping_sub(b)
        } else {
            self.modulus.wrapping_sub(b).overflowing_add(a).0
        }
    }

    /// `(a * b) mod m`; inputs must already be reduced.
    pub fn mul(&self, a: U256, b: U256) -> U256 {
        self.reduce_wide(a.widening_mul(b))
    }

    /// `a^2 mod m`.
    pub fn square(&self, a: U256) -> U256 {
        self.mul(a, a)
    }

    /// `base^exp mod m` by square-and-multiply.
    pub fn pow(&self, base: U256, exp: U256) -> U256 {
        let base = self.reduce(base);
        let mut acc = U256::ONE;
        let Some(top) = exp.highest_bit() else {
            return U256::ONE;
        };
        for i in (0..=top).rev() {
            acc = self.square(acc);
            if exp.bit(i) {
                acc = self.mul(acc, base);
            }
        }
        acc
    }

    /// Multiplicative inverse via Fermat: `a^(m-2) mod m` (m must be prime).
    pub fn invert(&self, a: U256) -> U256 {
        let exp = self.modulus.wrapping_sub(U256::from(2));
        self.pow(a, exp)
    }

    /// Samples a uniformly random value in `[0, m)`.
    pub fn random(&self, rng: &mut impl rand::RngCore) -> U256 {
        loop {
            let mut bytes = [0u8; 32];
            rng.fill_bytes(&mut bytes);
            bytes[31] &= 0x7f; // restrict to 255 bits
            let v = U256::from_bytes_le(&bytes);
            if v < self.modulus {
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Naive bit-by-bit long division reduction used as an oracle.
    fn naive_reduce_wide(w: [u64; 8], m: U256) -> U256 {
        let mut rem = U256::ZERO;
        for bit in (0..512).rev() {
            // rem = rem * 2 + bit
            let carry_out = rem.0[3] >> 63;
            let mut r = U256([rem.0[0] << 1, 0, 0, 0]);
            for i in 1..4 {
                r.0[i] = (rem.0[i] << 1) | (rem.0[i - 1] >> 63);
            }
            let b = (w[bit / 64] >> (bit % 64)) & 1;
            r.0[0] |= b;
            rem = r;
            if carry_out != 0 || rem >= m {
                rem = rem.wrapping_sub(m);
            }
        }
        rem
    }

    #[test]
    fn modulus_constants() {
        // 2^255 - 19 ends in ...ffed little-endian.
        let p = P25519.modulus().to_bytes_le();
        assert_eq!(p[0], 0xed);
        assert_eq!(p[31], 0x7f);
        let q = P25519_MINUS_1.modulus().to_bytes_le();
        assert_eq!(q[0], 0xec);
    }

    #[test]
    fn byte_roundtrips() {
        let v = U256([1, 2, 3, 4]);
        assert_eq!(U256::from_bytes_be(&v.to_bytes_be()), v);
        assert_eq!(U256::from_bytes_le(&v.to_bytes_le()), v);
    }

    #[test]
    fn add_sub_small() {
        let m = P25519;
        let a = U256::from(5u64);
        let b = U256::from(7u64);
        assert_eq!(m.add(a, b), U256::from(12u64));
        assert_eq!(m.sub(a, b), m.modulus().wrapping_sub(U256::from(2u64)));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let m = P25519;
        let g = U256::from(3u64);
        let mut acc = U256::ONE;
        for e in 0..20u64 {
            assert_eq!(m.pow(g, U256::from(e)), acc);
            acc = m.mul(acc, g);
        }
    }

    #[test]
    fn fermat_inverse() {
        let m = P25519;
        for x in [2u64, 3, 12345, 0xffff_ffff] {
            let x = U256::from(x);
            let inv = m.invert(x);
            assert_eq!(m.mul(x, inv), U256::ONE);
        }
    }

    fn arb_u256() -> impl Strategy<Value = U256> {
        prop::array::uniform4(any::<u64>()).prop_map(U256)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn fold_reduction_matches_long_division(a in arb_u256(), b in arb_u256()) {
            let w = a.widening_mul(b);
            for m in [P25519, P25519_MINUS_1] {
                prop_assert_eq!(m.reduce_wide(w), naive_reduce_wide(w, m.modulus()));
            }
        }

        #[test]
        fn mul_commutes(a in arb_u256(), b in arb_u256()) {
            let m = P25519;
            let (a, b) = (m.reduce(a), m.reduce(b));
            prop_assert_eq!(m.mul(a, b), m.mul(b, a));
        }

        #[test]
        fn add_sub_inverse(a in arb_u256(), b in arb_u256()) {
            let m = P25519;
            let (a, b) = (m.reduce(a), m.reduce(b));
            prop_assert_eq!(m.sub(m.add(a, b), b), a);
        }

        #[test]
        fn mul_distributes(a in arb_u256(), b in arb_u256(), c in arb_u256()) {
            let m = P25519_MINUS_1;
            let (a, b, c) = (m.reduce(a), m.reduce(b), m.reduce(c));
            prop_assert_eq!(m.mul(a, m.add(b, c)), m.add(m.mul(a, b), m.mul(a, c)));
        }

        #[test]
        fn ord_consistent_with_sub(a in arb_u256(), b in arb_u256()) {
            let (_, borrow) = a.overflowing_sub(b);
            prop_assert_eq!(borrow, a < b);
        }
    }
}
