//! HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).

use crate::sha256::{sha256, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Streaming HMAC-SHA256.
///
/// ```
/// use endbox_crypto::hmac::HmacSha256;
/// let mut m = HmacSha256::new(b"key");
/// m.update(b"msg");
/// let tag = m.finalize();
/// assert_eq!(tag, endbox_crypto::hmac::hmac_sha256(b"key", b"msg"));
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            k[..DIGEST_LEN].copy_from_slice(&sha256(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Returns the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Verifies `tag` against the absorbed message in constant time.
    pub fn verify(self, tag: &[u8]) -> bool {
        crate::ct_eq(&self.finalize(), tag)
    }
}

/// One-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut m = HmacSha256::new(key);
    m.update(data);
    m.finalize()
}

/// HKDF-Extract: derives a pseudorandom key from input keying material.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: expands `prk` into `out.len()` bytes bound to `info`.
///
/// # Panics
///
/// Panics if more than `255 * 32` bytes are requested (RFC 5869 limit).
pub fn hkdf_expand(prk: &[u8; DIGEST_LEN], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * DIGEST_LEN, "HKDF output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut written = 0;
    let mut counter = 1u8;
    while written < out.len() {
        let mut m = HmacSha256::new(prk);
        m.update(&t);
        m.update(info);
        m.update(&[counter]);
        let block = m.finalize();
        let take = (out.len() - written).min(DIGEST_LEN);
        out[written..written + take].copy_from_slice(&block[..take]);
        written += take;
        t = block.to_vec();
        counter = counter.wrapping_add(1);
    }
}

/// Convenience: full HKDF returning a fixed-size key.
pub fn hkdf<const N: usize>(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; N] {
    let prk = hkdf_extract(salt, ikm);
    let mut out = [0u8; N];
    hkdf_expand(&prk, info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex::encode(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex::encode(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex::encode(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        let mut m = HmacSha256::new(b"k");
        m.update(b"m");
        assert!(m.verify(&tag));
        let mut m = HmacSha256::new(b"k");
        m.update(b"m2");
        assert!(!m.verify(&tag));
    }

    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = hex::decode("000102030405060708090a0b0c").unwrap();
        let info = hex::decode("f0f1f2f3f4f5f6f7f8f9").unwrap();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex::encode(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        hkdf_expand(&prk, &info, &mut okm);
        assert_eq!(
            hex::encode(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn hkdf_output_sizes() {
        for n in [1usize, 31, 32, 33, 64, 100] {
            let prk = hkdf_extract(b"salt", b"ikm");
            let mut out = vec![0u8; n];
            hkdf_expand(&prk, b"info", &mut out);
            // Prefix property: shorter outputs are prefixes of longer ones.
            let mut long = vec![0u8; n + 7];
            hkdf_expand(&prk, b"info", &mut long);
            assert_eq!(&long[..n], &out[..]);
        }
    }
}
