//! The matching engine: compiles a rule set into Aho–Corasick automatons
//! plus header predicates, and scans packets.

use crate::aho::AhoCorasick;
use crate::rule::{ContentPattern, ProtoPattern, Rule, RuleAction};
use std::net::Ipv4Addr;

/// Packet fields the engine needs (kept independent of the packet crate so
/// this substrate has no simulator dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketView<'a> {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// IP protocol number.
    pub protocol: u8,
    /// Source port (TCP/UDP only).
    pub src_port: Option<u16>,
    /// Destination port (TCP/UDP only).
    pub dst_port: Option<u16>,
    /// Application payload to scan.
    pub payload: &'a [u8],
}

/// One fired rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// Snort rule id.
    pub sid: u32,
    /// Rule message.
    pub msg: String,
    /// Action requested by the rule.
    pub action: RuleAction,
}

/// Result of scanning one packet.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScanOutcome {
    /// All rules that fired.
    pub alerts: Vec<Alert>,
    /// True if any fired rule requests a drop.
    pub drop: bool,
}

/// A compiled rule set ready for per-packet scanning.
#[derive(Debug, Clone)]
pub struct CompiledRules {
    rules: Vec<Rule>,
    /// Case-sensitive automaton over all case-sensitive contents.
    exact: Option<AhoCorasick>,
    /// Case-insensitive automaton over all `nocase` contents.
    nocase: Option<AhoCorasick>,
    /// Maps exact-automaton pattern id -> (rule idx, content idx).
    exact_map: Vec<(usize, usize)>,
    /// Maps nocase-automaton pattern id -> (rule idx, content idx).
    nocase_map: Vec<(usize, usize)>,
}

impl CompiledRules {
    /// Compiles `rules` into scanning automatons.
    pub fn compile(rules: &[Rule]) -> Self {
        let mut exact_patterns: Vec<Vec<u8>> = Vec::new();
        let mut nocase_patterns: Vec<Vec<u8>> = Vec::new();
        let mut exact_map = Vec::new();
        let mut nocase_map = Vec::new();
        for (ri, rule) in rules.iter().enumerate() {
            for (ci, ContentPattern { bytes, nocase }) in rule.contents.iter().enumerate() {
                if *nocase {
                    nocase_patterns.push(bytes.clone());
                    nocase_map.push((ri, ci));
                } else {
                    exact_patterns.push(bytes.clone());
                    exact_map.push((ri, ci));
                }
            }
        }
        CompiledRules {
            rules: rules.to_vec(),
            exact: (!exact_patterns.is_empty()).then(|| AhoCorasick::new(&exact_patterns, false)),
            nocase: (!nocase_patterns.is_empty()).then(|| AhoCorasick::new(&nocase_patterns, true)),
            exact_map,
            nocase_map,
        }
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Total automaton memory (for EPC accounting inside the enclave).
    pub fn memory_bytes(&self) -> usize {
        self.exact.as_ref().map_or(0, AhoCorasick::memory_bytes)
            + self.nocase.as_ref().map_or(0, AhoCorasick::memory_bytes)
    }

    fn header_matches(rule: &Rule, pkt: &PacketView<'_>) -> bool {
        let proto_ok = match rule.proto {
            ProtoPattern::Ip => true,
            ProtoPattern::Tcp => pkt.protocol == 6,
            ProtoPattern::Udp => pkt.protocol == 17,
            ProtoPattern::Icmp => pkt.protocol == 1,
        };
        if !proto_ok {
            return false;
        }
        let forward = rule.src.matches(pkt.src)
            && rule.dst.matches(pkt.dst)
            && rule.src_port.matches(pkt.src_port)
            && rule.dst_port.matches(pkt.dst_port);
        if forward {
            return true;
        }
        rule.bidirectional
            && rule.src.matches(pkt.dst)
            && rule.dst.matches(pkt.src)
            && rule.src_port.matches(pkt.dst_port)
            && rule.dst_port.matches(pkt.src_port)
    }

    /// Scans one packet: a rule fires when its header predicates match and
    /// *all* of its content patterns occur in the payload (content-less
    /// rules fire on header match alone).
    pub fn scan(&self, pkt: &PacketView<'_>) -> ScanOutcome {
        // Which (rule, content) pairs were seen in the payload?
        let mut seen: Vec<u64> = vec![0; self.rules.len()]; // bitmap per rule (≤64 contents)
        if let Some(exact) = &self.exact {
            for pid in exact.distinct_patterns(pkt.payload) {
                let (ri, ci) = self.exact_map[pid];
                seen[ri] |= 1 << ci.min(63);
            }
        }
        if let Some(nocase) = &self.nocase {
            for pid in nocase.distinct_patterns(pkt.payload) {
                let (ri, ci) = self.nocase_map[pid];
                seen[ri] |= 1 << ci.min(63);
            }
        }

        let mut outcome = ScanOutcome::default();
        for (ri, rule) in self.rules.iter().enumerate() {
            let needed = rule.contents.len();
            let have = seen[ri].count_ones() as usize;
            if have < needed {
                continue;
            }
            if !Self::header_matches(rule, pkt) {
                continue;
            }
            if rule.action == RuleAction::Pass {
                // Snort pass rules short-circuit subsequent matches.
                return ScanOutcome::default();
            }
            if rule.action == RuleAction::Drop {
                outcome.drop = true;
            }
            if rule.action != RuleAction::Log {
                outcome.alerts.push(Alert {
                    sid: rule.sid,
                    msg: rule.msg.clone(),
                    action: rule.action,
                });
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::parse_rules;

    fn view<'a>(payload: &'a [u8], dst_port: u16) -> PacketView<'a> {
        PacketView {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 1, 1),
            protocol: 6,
            src_port: Some(40000),
            dst_port: Some(dst_port),
            payload,
        }
    }

    fn compile(text: &str) -> CompiledRules {
        CompiledRules::compile(&parse_rules(text).unwrap())
    }

    #[test]
    fn content_and_header_must_both_match() {
        let c = compile(r#"alert tcp any any -> any 80 (msg:"evil"; content:"evil"; sid:1;)"#);
        assert_eq!(c.scan(&view(b"an evil payload", 80)).alerts.len(), 1);
        assert!(c.scan(&view(b"an evil payload", 81)).alerts.is_empty()); // wrong port
        assert!(c.scan(&view(b"a benign payload", 80)).alerts.is_empty()); // no content
    }

    #[test]
    fn all_contents_required() {
        let c = compile(
            r#"alert tcp any any -> any any (msg:"two"; content:"aaa"; content:"bbb"; sid:2;)"#,
        );
        assert!(c.scan(&view(b"aaa only", 80)).alerts.is_empty());
        assert!(c.scan(&view(b"bbb only", 80)).alerts.is_empty());
        assert_eq!(c.scan(&view(b"aaa and bbb", 80)).alerts.len(), 1);
    }

    #[test]
    fn drop_action_sets_drop_flag() {
        let c = compile(r#"drop tcp any any -> any any (msg:"bad"; content:"bad"; sid:3;)"#);
        let out = c.scan(&view(b"bad stuff", 80));
        assert!(out.drop);
        assert_eq!(out.alerts[0].action, RuleAction::Drop);
    }

    #[test]
    fn alert_does_not_drop() {
        let c = compile(r#"alert tcp any any -> any any (msg:"sus"; content:"sus"; sid:4;)"#);
        let out = c.scan(&view(b"sus payload", 80));
        assert!(!out.drop);
        assert_eq!(out.alerts.len(), 1);
    }

    #[test]
    fn nocase_rules_match_any_case() {
        let c =
            compile(r#"alert tcp any any -> any any (msg:"nc"; content:"EVIL"; nocase; sid:5;)"#);
        assert_eq!(c.scan(&view(b"some eViL here", 80)).alerts.len(), 1);
    }

    #[test]
    fn pass_rule_short_circuits() {
        let c = compile(
            "pass tcp any any -> any 22 (msg:\"ssh ok\"; sid:6;)\n\
             alert tcp any any -> any any (msg:\"all\"; content:\"x\"; sid:7;)\n",
        );
        assert!(c.scan(&view(b"x", 22)).alerts.is_empty()); // pass wins
        assert_eq!(c.scan(&view(b"x", 23)).alerts.len(), 1);
    }

    #[test]
    fn bidirectional_matches_reverse() {
        let c = compile(r#"alert tcp any any <> any 80 (msg:"bi"; content:"q"; sid:8;)"#);
        // Reverse direction: src_port = 80.
        let pkt = PacketView {
            src: Ipv4Addr::new(10, 0, 1, 1),
            dst: Ipv4Addr::new(10, 0, 0, 1),
            protocol: 6,
            src_port: Some(80),
            dst_port: Some(40000),
            payload: b"q",
        };
        assert_eq!(c.scan(&pkt).alerts.len(), 1);
    }

    #[test]
    fn icmp_rules_ignore_ports() {
        let c = compile(r#"alert icmp any any -> any any (msg:"ping"; sid:9;)"#);
        let pkt = PacketView {
            src: Ipv4Addr::new(1, 1, 1, 1),
            dst: Ipv4Addr::new(2, 2, 2, 2),
            protocol: 1,
            src_port: None,
            dst_port: None,
            payload: b"",
        };
        assert_eq!(c.scan(&pkt).alerts.len(), 1);
    }

    #[test]
    fn multiple_rules_can_fire() {
        let c = compile(
            "alert tcp any any -> any any (msg:\"a\"; content:\"aa\"; sid:10;)\n\
             drop tcp any any -> any any (msg:\"b\"; content:\"bb\"; sid:11;)\n",
        );
        let out = c.scan(&view(b"aa bb", 80));
        assert_eq!(out.alerts.len(), 2);
        assert!(out.drop);
    }

    #[test]
    fn content_less_rule_fires_on_header() {
        let c = compile(r#"alert tcp any any -> any 23 (msg:"telnet"; sid:12;)"#);
        assert_eq!(c.scan(&view(b"whatever", 23)).alerts.len(), 1);
    }
}
