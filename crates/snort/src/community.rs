//! Deterministic synthetic stand-in for the Snort community rule set.
//!
//! The paper evaluates with "a subset of 377 rules of the Snort community
//! rule set" whose rules "do not match packets generated for our
//! evaluation" (§V-B). The licensed rule set is not vendored; this
//! generator produces a structurally equivalent set: a mix of protocols,
//! port predicates, single- and multi-content rules and `nocase`
//! modifiers. Every content pattern carries the prefix `EB-` followed by
//! uppercase/digit characters, so the all-lowercase benign traffic of
//! `endbox-netsim`'s generators can never match — the same no-match
//! property the paper relies on.

use crate::rule::{parse_rules, Rule};

/// Number of rules the paper's evaluation subset uses.
pub const PAPER_RULE_COUNT: usize = 377;

/// Generates `n` synthetic rules as Snort rule text.
pub fn synthetic_rules_text(n: usize) -> String {
    let mut out = String::with_capacity(n * 96);
    out.push_str("# Synthetic EndBox community rule set (deterministic)\n");
    for i in 0..n {
        let sid = 1_000_000 + i as u32;
        let proto = match i % 4 {
            0 => "tcp",
            1 => "udp",
            2 => "tcp",
            _ => "ip",
        };
        let dst_port = match i % 5 {
            0 => "80".to_string(),
            1 => "443".to_string(),
            2 => "any".to_string(),
            3 => format!("{}:{}", 1000 + (i % 50) * 10, 1000 + (i % 50) * 10 + 9),
            _ => format!("{}", 1024 + (i * 7) % 40000),
        };
        let action = if i % 11 == 0 { "drop" } else { "alert" };
        let primary = format!("EB-MAL-{i:04}");
        match i % 3 {
            0 => {
                out.push_str(&format!(
                    "{action} {proto} any any -> any {dst_port} (msg:\"synthetic rule {i}\"; \
                     content:\"{primary}\"; sid:{sid}; rev:1;)\n"
                ));
            }
            1 => {
                out.push_str(&format!(
                    "{action} {proto} any any -> any {dst_port} (msg:\"synthetic rule {i}\"; \
                     content:\"{primary}\"; nocase; sid:{sid}; rev:1;)\n"
                ));
            }
            _ => {
                let secondary = format!("EB-2ND-{:04}|0d 0a|", i);
                out.push_str(&format!(
                    "{action} {proto} any any -> any {dst_port} (msg:\"synthetic rule {i}\"; \
                     content:\"{primary}\"; content:\"{secondary}\"; sid:{sid}; rev:1;)\n"
                ));
            }
        }
    }
    out
}

/// Generates and parses the synthetic rule set.
///
/// # Panics
///
/// Panics if the generator emits unparsable rules (a bug caught by tests).
pub fn synthetic_rules(n: usize) -> Vec<Rule> {
    parse_rules(&synthetic_rules_text(n)).expect("generator emits valid rules")
}

/// The paper-sized 377-rule set.
pub fn paper_rules() -> Vec<Rule> {
    synthetic_rules(PAPER_RULE_COUNT)
}

/// A pattern guaranteed to trigger rule `i` of the synthetic set (for
/// detection tests). For multi-content rules, returns a payload containing
/// all required contents.
pub fn triggering_payload(i: usize) -> Vec<u8> {
    let mut payload = format!("xxxx EB-MAL-{i:04} yyyy").into_bytes();
    if i % 3 == 2 {
        payload.extend_from_slice(format!(" EB-2ND-{i:04}").as_bytes());
        payload.extend_from_slice(b"\r\n tail");
    }
    payload
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CompiledRules, PacketView};
    use crate::rule::RuleAction;
    use std::net::Ipv4Addr;

    fn view(payload: &[u8]) -> PacketView<'_> {
        PacketView {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 1, 1),
            protocol: 6,
            src_port: Some(40000),
            dst_port: Some(80),
            payload,
        }
    }

    #[test]
    fn generates_exactly_paper_count() {
        let rules = paper_rules();
        assert_eq!(rules.len(), PAPER_RULE_COUNT);
        // Mix of actions present.
        assert!(rules.iter().any(|r| r.action == RuleAction::Drop));
        assert!(rules.iter().any(|r| r.action == RuleAction::Alert));
        // Multi-content and nocase rules present.
        assert!(rules.iter().any(|r| r.contents.len() == 2));
        assert!(rules.iter().any(|r| r.contents.iter().any(|c| c.nocase)));
    }

    #[test]
    fn benign_lowercase_traffic_never_matches() {
        let compiled = CompiledRules::compile(&paper_rules());
        let payload: Vec<u8> = (0..1500).map(|i| b'a' + (i % 26) as u8).collect();
        let out = compiled.scan(&view(&payload));
        assert!(out.alerts.is_empty());
        assert!(!out.drop);
    }

    #[test]
    fn triggering_payloads_fire_their_rule() {
        let compiled = CompiledRules::compile(&paper_rules());
        for i in [0usize, 1, 2, 5, 33, 101, 376] {
            let payload = triggering_payload(i);
            let out = compiled.scan(&view(&payload));
            let sid = 1_000_000 + i as u32;
            // Port predicates may filter some rules out on port 80; rule 0,
            // 5, … target port 80/any. Only assert for rules whose header
            // matches port 80 or any.
            let rule = &paper_rules()[i];
            if rule.dst_port.matches(Some(80)) && rule.proto == crate::rule::ProtoPattern::Tcp
                || rule.proto == crate::rule::ProtoPattern::Ip
            {
                assert!(
                    out.alerts.iter().any(|a| a.sid == sid),
                    "rule {i} should fire: {out:?}"
                );
            }
        }
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(synthetic_rules_text(50), synthetic_rules_text(50));
    }
}
