//! Aho–Corasick multi-pattern string matching, built from scratch
//! (Aho & Corasick, CACM 1975 — the paper's reference \[41\]).
//!
//! The automaton is built with a dense goto table and BFS-resolved failure
//! transitions, yielding a deterministic automaton with O(1) per-byte
//! scanning — the property that makes IDS scanning cost linear in payload
//! size (which the EndBox cost model depends on).

/// A match: pattern `pattern` ends at byte offset `end` (exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Index of the matched pattern (insertion order).
    pub pattern: usize,
    /// Exclusive end offset in the haystack.
    pub end: usize,
}

const NONE: u32 = u32::MAX;

/// A compiled Aho–Corasick automaton.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// Dense transition table: `delta[state * 256 + byte]`.
    delta: Vec<u32>,
    /// Pattern indices terminating at each state (flattened).
    out_start: Vec<u32>,
    out_items: Vec<u32>,
    pattern_lens: Vec<usize>,
    case_insensitive: bool,
}

impl AhoCorasick {
    /// Builds an automaton over `patterns`. Empty patterns are rejected.
    ///
    /// # Panics
    ///
    /// Panics if any pattern is empty or if there are ≥ `u32::MAX` states.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P], case_insensitive: bool) -> Self {
        assert!(
            patterns.iter().all(|p| !p.as_ref().is_empty()),
            "empty patterns are not allowed"
        );

        // --- Trie construction -------------------------------------------
        let mut goto: Vec<[u32; 256]> = vec![[NONE; 256]];
        let mut outputs: Vec<Vec<u32>> = vec![Vec::new()];
        let norm = |b: u8| {
            if case_insensitive {
                b.to_ascii_lowercase()
            } else {
                b
            }
        };

        for (pid, pat) in patterns.iter().enumerate() {
            let mut state = 0usize;
            for &b in pat.as_ref() {
                let b = norm(b) as usize;
                if goto[state][b] == NONE {
                    goto.push([NONE; 256]);
                    outputs.push(Vec::new());
                    let new_state = (goto.len() - 1) as u32;
                    goto[state][b] = new_state;
                }
                state = goto[state][b] as usize;
            }
            outputs[state].push(pid as u32);
        }

        // --- BFS: failure links and automaton completion ------------------
        let n = goto.len();
        let mut fail = vec![0u32; n];
        let mut queue = std::collections::VecDeque::new();
        for slot in goto[0].iter_mut() {
            match *slot {
                NONE => *slot = 0,
                s => {
                    fail[s as usize] = 0;
                    queue.push_back(s);
                }
            }
        }
        while let Some(s) = queue.pop_front() {
            let s = s as usize;
            // Indexing two rows of `goto` (the state's and its failure
            // target's) at once; iter_mut cannot borrow both.
            #[allow(clippy::needless_range_loop)]
            for b in 0..256 {
                let t = goto[s][b];
                if t == NONE {
                    goto[s][b] = goto[fail[s] as usize][b];
                } else {
                    fail[t as usize] = goto[fail[s] as usize][b];
                    // Merge outputs from the failure target.
                    let inherited = outputs[fail[t as usize] as usize].clone();
                    outputs[t as usize].extend(inherited);
                    queue.push_back(t);
                }
            }
        }

        // --- Flatten ------------------------------------------------------
        let mut delta = Vec::with_capacity(n * 256);
        for row in &goto {
            delta.extend_from_slice(row);
        }
        let mut out_start = Vec::with_capacity(n + 1);
        let mut out_items = Vec::new();
        out_start.push(0u32);
        for o in &outputs {
            out_items.extend_from_slice(o);
            out_start.push(out_items.len() as u32);
        }

        AhoCorasick {
            delta,
            out_start,
            out_items,
            pattern_lens: patterns.iter().map(|p| p.as_ref().len()).collect(),
            case_insensitive,
        }
    }

    /// Number of patterns.
    pub fn pattern_count(&self) -> usize {
        self.pattern_lens.len()
    }

    /// Number of automaton states.
    pub fn state_count(&self) -> usize {
        self.delta.len() / 256
    }

    /// Approximate heap footprint in bytes (for EPC accounting).
    pub fn memory_bytes(&self) -> usize {
        self.delta.len() * 4 + self.out_start.len() * 4 + self.out_items.len() * 4
    }

    #[inline]
    fn step(&self, state: u32, byte: u8) -> u32 {
        let b = if self.case_insensitive {
            byte.to_ascii_lowercase()
        } else {
            byte
        };
        self.delta[state as usize * 256 + b as usize]
    }

    /// Finds all matches in `haystack`.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut state = 0u32;
        let mut matches = Vec::new();
        for (i, &b) in haystack.iter().enumerate() {
            state = self.step(state, b);
            let (lo, hi) = (
                self.out_start[state as usize] as usize,
                self.out_start[state as usize + 1] as usize,
            );
            for &pid in &self.out_items[lo..hi] {
                matches.push(Match {
                    pattern: pid as usize,
                    end: i + 1,
                });
            }
        }
        matches
    }

    /// Returns the set of distinct patterns occurring in `haystack`
    /// (deduplicated, sorted).
    pub fn distinct_patterns(&self, haystack: &[u8]) -> Vec<usize> {
        let mut seen = vec![false; self.pattern_count()];
        let mut state = 0u32;
        for &b in haystack {
            state = self.step(state, b);
            let (lo, hi) = (
                self.out_start[state as usize] as usize,
                self.out_start[state as usize + 1] as usize,
            );
            for &pid in &self.out_items[lo..hi] {
                seen[pid as usize] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| i)
            .collect()
    }

    /// True if any pattern occurs.
    pub fn matches_any(&self, haystack: &[u8]) -> bool {
        let mut state = 0u32;
        for &b in haystack {
            state = self.step(state, b);
            if self.out_start[state as usize] != self.out_start[state as usize + 1] {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_example() {
        // The canonical {he, she, his, hers} example from the 1975 paper.
        let ac = AhoCorasick::new(&["he", "she", "his", "hers"], false);
        let m = ac.find_all(b"ushers");
        let found: Vec<(usize, usize)> = m.iter().map(|m| (m.pattern, m.end)).collect();
        assert!(found.contains(&(1, 4))); // she @ 4
        assert!(found.contains(&(0, 4))); // he @ 4
        assert!(found.contains(&(3, 6))); // hers @ 6
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn overlapping_and_nested() {
        let ac = AhoCorasick::new(&["aa", "aaa"], false);
        let m = ac.find_all(b"aaaa");
        // aa at 2,3,4; aaa at 3,4
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn case_insensitive_matching() {
        let ac = AhoCorasick::new(&["Attack"], true);
        assert!(ac.matches_any(b"aTTaCK at dawn"));
        let exact = AhoCorasick::new(&["Attack"], false);
        assert!(!exact.matches_any(b"aTTaCK at dawn"));
        assert!(exact.matches_any(b"Attack at dawn"));
    }

    #[test]
    fn no_match() {
        let ac = AhoCorasick::new(&["xyz", "evil"], false);
        assert!(!ac.matches_any(b"perfectly benign payload"));
        assert!(ac.find_all(b"perfectly benign payload").is_empty());
    }

    #[test]
    fn distinct_patterns_dedupes() {
        let ac = AhoCorasick::new(&["ab", "cd"], false);
        assert_eq!(ac.distinct_patterns(b"ab ab cd ab"), vec![0, 1]);
    }

    #[test]
    fn binary_patterns() {
        let ac = AhoCorasick::new(&[&[0x00u8, 0xff, 0x00][..], &[0xeb, 0xfe][..]], false);
        assert!(ac.matches_any(&[1, 2, 0x00, 0xff, 0x00, 3]));
        assert!(ac.matches_any(&[0xeb, 0xfe]));
        assert!(!ac.matches_any(&[0xff, 0x00, 0xfe]));
    }

    #[test]
    #[should_panic(expected = "empty patterns")]
    fn empty_pattern_rejected() {
        AhoCorasick::new(&[""], false);
    }

    /// Naive oracle: all (pattern, end) pairs by brute force.
    fn naive_find_all(patterns: &[Vec<u8>], haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        for (pid, p) in patterns.iter().enumerate() {
            if p.is_empty() || p.len() > haystack.len() {
                continue;
            }
            for end in p.len()..=haystack.len() {
                if &haystack[end - p.len()..end] == p.as_slice() {
                    out.push(Match { pattern: pid, end });
                }
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn matches_naive_oracle(
            patterns in prop::collection::vec(
                prop::collection::vec(0u8..4, 1..5), 1..6),
            haystack in prop::collection::vec(0u8..4, 0..60),
        ) {
            let ac = AhoCorasick::new(&patterns, false);
            let mut got = ac.find_all(&haystack);
            let mut want = naive_find_all(&patterns, &haystack);
            got.sort_by_key(|m| (m.end, m.pattern));
            want.sort_by_key(|m| (m.end, m.pattern));
            prop_assert_eq!(got, want);
        }

        #[test]
        fn matches_any_agrees_with_find_all(
            patterns in prop::collection::vec(
                prop::collection::vec(any::<u8>(), 1..4), 1..5),
            haystack in prop::collection::vec(any::<u8>(), 0..40),
        ) {
            let ac = AhoCorasick::new(&patterns, false);
            prop_assert_eq!(ac.matches_any(&haystack), !ac.find_all(&haystack).is_empty());
        }
    }
}
