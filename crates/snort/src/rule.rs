//! Parser for a practical subset of the Snort rule language.
//!
//! Supported: `alert|drop|pass|log <proto> <src> <sport> -> <dst> <dport>
//! (msg:"..."; content:"..."; content:"|AB CD|..."; nocase; sid:N; rev:N;
//! classtype:...;)`. This covers the header predicates and content
//! matching that the paper's `IDSMatcher` element needs; unsupported
//! option keywords are preserved but ignored by the engine.

use std::error::Error;
use std::fmt;
use std::net::Ipv4Addr;

/// Action taken when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleAction {
    /// Report the match, let the packet pass (IDS mode).
    Alert,
    /// Report and drop the packet (IPS mode).
    Drop,
    /// Explicitly allow.
    Pass,
    /// Log only.
    Log,
}

/// Protocol selector in a rule header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtoPattern {
    /// Matches TCP.
    Tcp,
    /// Matches UDP.
    Udp,
    /// Matches ICMP.
    Icmp,
    /// Matches any IP packet.
    Ip,
}

/// Address selector: `any`, a host, or a CIDR network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrPattern {
    /// Matches every address.
    Any,
    /// Matches one host.
    Host(Ipv4Addr),
    /// Matches a network: (base, prefix length).
    Net(Ipv4Addr, u8),
}

impl AddrPattern {
    /// Tests an address against the pattern.
    pub fn matches(&self, addr: Ipv4Addr) -> bool {
        match *self {
            AddrPattern::Any => true,
            AddrPattern::Host(h) => addr == h,
            AddrPattern::Net(base, prefix) => {
                let mask = if prefix == 0 {
                    0
                } else {
                    u32::MAX << (32 - prefix as u32)
                };
                (u32::from(addr) & mask) == (u32::from(base) & mask)
            }
        }
    }
}

/// Port selector: `any`, one port, or an inclusive range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortPattern {
    /// Every port.
    Any,
    /// Exactly one port.
    Port(u16),
    /// An inclusive range (Snort `lo:hi`, `:hi`, `lo:`).
    Range(u16, u16),
}

impl PortPattern {
    /// Tests a port. `None` (non-TCP/UDP packet) only matches `Any`.
    pub fn matches(&self, port: Option<u16>) -> bool {
        match (*self, port) {
            (PortPattern::Any, _) => true,
            (PortPattern::Port(p), Some(q)) => p == q,
            (PortPattern::Range(lo, hi), Some(q)) => (lo..=hi).contains(&q),
            (_, None) => false,
        }
    }
}

/// One `content:"..."` pattern with its modifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentPattern {
    /// Raw bytes to search for (hex escapes already decoded).
    pub bytes: Vec<u8>,
    /// Case-insensitive matching (`nocase` modifier).
    pub nocase: bool,
}

/// A parsed rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Action on match.
    pub action: RuleAction,
    /// Protocol selector.
    pub proto: ProtoPattern,
    /// Source address selector.
    pub src: AddrPattern,
    /// Source port selector.
    pub src_port: PortPattern,
    /// Destination address selector.
    pub dst: AddrPattern,
    /// Destination port selector.
    pub dst_port: PortPattern,
    /// Bidirectional (`<>`) rule.
    pub bidirectional: bool,
    /// Human-readable message.
    pub msg: String,
    /// Snort rule id.
    pub sid: u32,
    /// Content patterns; a rule fires only if *all* are present.
    pub contents: Vec<ContentPattern>,
}

/// Errors from rule parsing, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleParseError {
    /// Line the error occurred on.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rule parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for RuleParseError {}

fn err(line: usize, message: impl Into<String>) -> RuleParseError {
    RuleParseError {
        line,
        message: message.into(),
    }
}

/// Parses a rule file: one rule per line, `#` comments, blank lines
/// ignored.
///
/// # Errors
///
/// Returns the first [`RuleParseError`] encountered.
pub fn parse_rules(text: &str) -> Result<Vec<Rule>, RuleParseError> {
    let mut rules = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        rules.push(parse_rule_line(trimmed, line_no)?);
    }
    Ok(rules)
}

/// Parses a single rule.
///
/// # Errors
///
/// Returns a [`RuleParseError`] (line number 1) on malformed input.
pub fn parse_rule(line: &str) -> Result<Rule, RuleParseError> {
    parse_rule_line(line.trim(), 1)
}

fn parse_rule_line(line: &str, line_no: usize) -> Result<Rule, RuleParseError> {
    let open = line
        .find('(')
        .ok_or_else(|| err(line_no, "missing option block '('"))?;
    if !line.trim_end().ends_with(')') {
        return Err(err(line_no, "missing closing ')'"));
    }
    let header = &line[..open];
    let options = &line.trim_end()[open + 1..line.trim_end().len() - 1];

    let toks: Vec<&str> = header.split_whitespace().collect();
    if toks.len() != 7 {
        return Err(err(
            line_no,
            format!(
                "header must have 7 fields (action proto src sport dir dst dport), got {}",
                toks.len()
            ),
        ));
    }
    let action = match toks[0] {
        "alert" => RuleAction::Alert,
        "drop" | "reject" => RuleAction::Drop,
        "pass" => RuleAction::Pass,
        "log" => RuleAction::Log,
        other => return Err(err(line_no, format!("unknown action `{other}`"))),
    };
    let proto = match toks[1] {
        "tcp" => ProtoPattern::Tcp,
        "udp" => ProtoPattern::Udp,
        "icmp" => ProtoPattern::Icmp,
        "ip" => ProtoPattern::Ip,
        other => return Err(err(line_no, format!("unknown protocol `{other}`"))),
    };
    let src = parse_addr(toks[2], line_no)?;
    let src_port = parse_port(toks[3], line_no)?;
    let bidirectional = match toks[4] {
        "->" => false,
        "<>" => true,
        other => return Err(err(line_no, format!("bad direction `{other}`"))),
    };
    let dst = parse_addr(toks[5], line_no)?;
    let dst_port = parse_port(toks[6], line_no)?;

    let mut msg = String::new();
    let mut sid = 0u32;
    let mut contents: Vec<ContentPattern> = Vec::new();
    for raw_opt in split_options(options) {
        let opt = raw_opt.trim();
        if opt.is_empty() {
            continue;
        }
        if let Some((key, value)) = opt.split_once(':') {
            let key = key.trim();
            let value = value.trim();
            match key {
                "msg" => msg = unquote(value, line_no)?,
                "sid" => {
                    sid = value
                        .parse()
                        .map_err(|_| err(line_no, format!("bad sid `{value}`")))?
                }
                "content" => {
                    let text = unquote(value, line_no)?;
                    let bytes = decode_content(&text, line_no)?;
                    if bytes.is_empty() {
                        return Err(err(line_no, "empty content pattern"));
                    }
                    contents.push(ContentPattern {
                        bytes,
                        nocase: false,
                    });
                }
                // Recognised but ignored modifiers/metadata.
                "rev" | "classtype" | "reference" | "metadata" | "depth" | "offset"
                | "distance" | "within" | "flow" | "priority" => {}
                other => return Err(err(line_no, format!("unsupported option `{other}`"))),
            }
        } else {
            match opt {
                "nocase" => {
                    let last = contents
                        .last_mut()
                        .ok_or_else(|| err(line_no, "`nocase` before any content"))?;
                    last.nocase = true;
                }
                other => return Err(err(line_no, format!("unsupported flag `{other}`"))),
            }
        }
    }
    if sid == 0 {
        return Err(err(line_no, "rule requires a non-zero sid"));
    }
    Ok(Rule {
        action,
        proto,
        src,
        src_port,
        dst,
        dst_port,
        bidirectional,
        msg,
        sid,
        contents,
    })
}

/// Splits the option block on `;`, respecting quoted strings.
fn split_options(options: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in options.chars() {
        if escaped {
            current.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                current.push(c);
                escaped = true;
            }
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            ';' if !in_quotes => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

fn unquote(value: &str, line_no: usize) -> Result<String, RuleParseError> {
    let v = value.trim();
    if v.len() < 2 || !v.starts_with('"') || !v.ends_with('"') {
        return Err(err(line_no, format!("expected quoted string, got `{v}`")));
    }
    let inner = &v[1..v.len() - 1];
    let mut out = String::with_capacity(inner.len());
    let mut escaped = false;
    for c in inner.chars() {
        if escaped {
            out.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Decodes Snort content syntax: literal text with `|AB CD|` hex islands.
fn decode_content(text: &str, line_no: usize) -> Result<Vec<u8>, RuleParseError> {
    let mut out = Vec::new();
    let mut rest = text;
    loop {
        match rest.find('|') {
            None => {
                out.extend_from_slice(rest.as_bytes());
                return Ok(out);
            }
            Some(start) => {
                out.extend_from_slice(&rest.as_bytes()[..start]);
                let after = &rest[start + 1..];
                let end = after
                    .find('|')
                    .ok_or_else(|| err(line_no, "unterminated hex block in content"))?;
                for hexbyte in after[..end].split_whitespace() {
                    let b = u8::from_str_radix(hexbyte, 16)
                        .map_err(|_| err(line_no, format!("bad hex byte `{hexbyte}`")))?;
                    out.push(b);
                }
                rest = &after[end + 1..];
            }
        }
    }
}

fn parse_addr(tok: &str, line_no: usize) -> Result<AddrPattern, RuleParseError> {
    if tok == "any" {
        return Ok(AddrPattern::Any);
    }
    if let Some((base, prefix)) = tok.split_once('/') {
        let base: Ipv4Addr = base
            .parse()
            .map_err(|_| err(line_no, format!("bad address `{tok}`")))?;
        let prefix: u8 = prefix
            .parse()
            .map_err(|_| err(line_no, format!("bad prefix `{tok}`")))?;
        if prefix > 32 {
            return Err(err(line_no, format!("prefix out of range `{tok}`")));
        }
        return Ok(AddrPattern::Net(base, prefix));
    }
    let host: Ipv4Addr = tok
        .parse()
        .map_err(|_| err(line_no, format!("bad address `{tok}`")))?;
    Ok(AddrPattern::Host(host))
}

fn parse_port(tok: &str, line_no: usize) -> Result<PortPattern, RuleParseError> {
    if tok == "any" {
        return Ok(PortPattern::Any);
    }
    if let Some((lo, hi)) = tok.split_once(':') {
        let lo: u16 = if lo.is_empty() {
            0
        } else {
            lo.parse()
                .map_err(|_| err(line_no, format!("bad port `{tok}`")))?
        };
        let hi: u16 = if hi.is_empty() {
            u16::MAX
        } else {
            hi.parse()
                .map_err(|_| err(line_no, format!("bad port `{tok}`")))?
        };
        if lo > hi {
            return Err(err(line_no, format!("inverted port range `{tok}`")));
        }
        return Ok(PortPattern::Range(lo, hi));
    }
    let p: u16 = tok
        .parse()
        .map_err(|_| err(line_no, format!("bad port `{tok}`")))?;
    Ok(PortPattern::Port(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_rule() {
        let r = parse_rule(
            r#"alert tcp any any -> 10.0.0.0/8 80 (msg:"http attack"; content:"evil"; sid:1001; rev:2;)"#,
        )
        .unwrap();
        assert_eq!(r.action, RuleAction::Alert);
        assert_eq!(r.proto, ProtoPattern::Tcp);
        assert_eq!(r.src, AddrPattern::Any);
        assert_eq!(r.dst, AddrPattern::Net(Ipv4Addr::new(10, 0, 0, 0), 8));
        assert_eq!(r.dst_port, PortPattern::Port(80));
        assert_eq!(r.msg, "http attack");
        assert_eq!(r.sid, 1001);
        assert_eq!(r.contents.len(), 1);
        assert_eq!(r.contents[0].bytes, b"evil");
    }

    #[test]
    fn parses_hex_content() {
        let r = parse_rule(
            r#"drop udp any any -> any 53 (msg:"dns"; content:"abc|00 01|def|ff|"; sid:2;)"#,
        )
        .unwrap();
        assert_eq!(r.action, RuleAction::Drop);
        assert_eq!(r.contents[0].bytes, b"abc\x00\x01def\xff");
    }

    #[test]
    fn parses_nocase_and_multiple_contents() {
        let r = parse_rule(
            r#"alert tcp any any -> any any (msg:"m"; content:"AAA"; nocase; content:"bbb"; sid:3;)"#,
        )
        .unwrap();
        assert_eq!(r.contents.len(), 2);
        assert!(r.contents[0].nocase);
        assert!(!r.contents[1].nocase);
    }

    #[test]
    fn parses_port_ranges_and_bidirectional() {
        let r = parse_rule(r#"alert tcp any 1024: <> any :80 (msg:"m"; sid:4;)"#).unwrap();
        assert!(r.bidirectional);
        assert_eq!(r.src_port, PortPattern::Range(1024, u16::MAX));
        assert_eq!(r.dst_port, PortPattern::Range(0, 80));
    }

    #[test]
    fn escaped_quotes_and_semicolons_in_msg() {
        let r =
            parse_rule(r#"alert ip any any -> any any (msg:"say \"hi\"; ok"; sid:5;)"#).unwrap();
        assert_eq!(r.msg, r#"say "hi"; ok"#);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let rules =
            parse_rules("# comment\n\nalert ip any any -> any any (msg:\"a\"; sid:1;)\n# more\n")
                .unwrap();
        assert_eq!(rules.len(), 1);
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_rules("# fine\nbogus tcp any any -> any any (sid:1;)\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown action"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_rule("alert tcp any any -> any any").is_err()); // no options
        assert!(parse_rule("alert tcp any -> any any (sid:1;)").is_err()); // bad header
        assert!(parse_rule(r#"alert tcp any any -> any any (content:"x"; sid:0;)"#).is_err()); // sid 0
        assert!(parse_rule(r#"alert tcp any any -> any any (content:""; sid:1;)"#).is_err()); // empty content
        assert!(parse_rule(r#"alert tcp any any -> any 99999 (sid:1;)"#).is_err()); // bad port
        assert!(parse_rule(r#"alert tcp any/40 any -> any any (sid:1;)"#).is_err()); // bad addr
        assert!(parse_rule(r#"alert tcp 10.0.0.0/33 any -> any any (sid:1;)"#).is_err());
        assert!(parse_rule(r#"alert tcp any 90:80 -> any any (sid:1;)"#).is_err()); // inverted
        assert!(parse_rule(r#"alert tcp any any -> any any (content:"|zz|"; sid:1;)"#).is_err());
        assert!(parse_rule(r#"alert tcp any any -> any any (nocase; sid:1;)"#).is_err());
    }

    #[test]
    fn addr_pattern_matching() {
        let net = AddrPattern::Net(Ipv4Addr::new(192, 168, 0, 0), 16);
        assert!(net.matches(Ipv4Addr::new(192, 168, 55, 1)));
        assert!(!net.matches(Ipv4Addr::new(192, 169, 0, 1)));
        assert!(AddrPattern::Any.matches(Ipv4Addr::new(1, 2, 3, 4)));
        let zero = AddrPattern::Net(Ipv4Addr::new(0, 0, 0, 0), 0);
        assert!(zero.matches(Ipv4Addr::new(255, 255, 255, 255)));
    }

    #[test]
    fn port_pattern_matching() {
        assert!(PortPattern::Any.matches(None));
        assert!(!PortPattern::Port(80).matches(None));
        assert!(PortPattern::Range(10, 20).matches(Some(15)));
        assert!(!PortPattern::Range(10, 20).matches(Some(21)));
    }
}
