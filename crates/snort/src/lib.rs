//! IDPS substrate for the EndBox reproduction: a Snort-subset rule parser,
//! a from-scratch Aho–Corasick multi-pattern matcher, and a matching
//! engine.
//!
//! The paper's IDPS use case "support\[s\] Snort rule sets and execute\[s\] its
//! string matching algorithm \[Aho–Corasick\]" with "a subset of 377 rules
//! of the Snort community rule set" that do not match the generated
//! traffic (§V-B). The community rule set itself is licensed content and
//! not vendored here; [`community::synthetic_rules`] generates a
//! deterministic 377-rule stand-in with the same structure (header
//! predicates + content patterns) and the same no-match property against
//! the benign traffic generator.
//!
//! ```
//! use endbox_snort::{engine::CompiledRules, rule::parse_rules};
//!
//! let rules = parse_rules(
//!     r#"alert tcp any any -> any 80 (msg:"demo"; content:"attack"; sid:1;)"#,
//! ).unwrap();
//! let compiled = CompiledRules::compile(&rules);
//! assert_eq!(compiled.rule_count(), 1);
//! ```

pub mod aho;
pub mod community;
pub mod engine;
pub mod rule;

pub use aho::AhoCorasick;
pub use engine::{CompiledRules, ScanOutcome};
pub use rule::{parse_rules, Rule, RuleAction};
