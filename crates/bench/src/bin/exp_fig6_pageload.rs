//! Fig. 6: CDF of HTTP page load times for 1 000 (synthetic) popular
//! websites with and without EndBox.
//!
//! Paper reference: the two CDFs are nearly indistinguishable — EndBox's
//! latency overhead is not user-perceivable.

use endbox::eval::latency::fig6;

fn main() {
    println!("=== Fig. 6: page-load time CDF (1000 synthetic pages) ===\n");
    let (endbox, direct) = fig6(1000);
    println!("{:>10}{:>16}{:>16}", "fraction", "EndBox [s]", "direct [s]");
    for i in (4..=99).step_by(5) {
        let (e, frac) = endbox[i];
        let (d, _) = direct[i];
        println!("{frac:>10.2}{e:>16.2}{d:>16.2}");
    }
    let median_gap = (endbox[49].0 - direct[49].0) / direct[49].0 * 100.0;
    println!("\nMedian load-time gap: {median_gap:.2}% (paper: 'very similar').");
}
