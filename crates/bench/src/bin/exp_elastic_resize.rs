//! Structural elasticity: grow/shrink RX framing shards and worker
//! shards online vs fixed capacity ladders (beyond the paper).
//!
//! PR 8's controller re-homes peers and re-splits budgets, but capacity
//! itself stayed whatever the operator picked up front — while the
//! diurnal trace swings offered load 3x within a run. This experiment
//! lets the control plane resize the pools themselves: a resize law on
//! the per-group demand EWMAs (hysteresis + cooldown) grows and shrinks
//! the RX shard pool and the worker pool online, rehashing every peer's
//! reassembly state to its home under the new modulus with the same
//! quiesce/drain/install discipline as the remap path.
//!
//! The real stack first demonstrates the law end to end (a flood grows
//! the pool, sustained idleness shrinks it back — the demo asserts both
//! fired). Then each fixed rung of the capacity ladder is measured on
//! the real stack and replayed over the diurnal trace, against an
//! elastic row whose per-step geometry follows the law. The acceptance
//! bars: elastic stays within 10% of the *best* fixed (K, N) rung at
//! every diurnal step, and beats the smallest fixed rung by at least
//! 1.3x at the peak.
//!
//! Emits the grid as machine-readable `BENCH_elastic.json`. Pass
//! `--smoke` for a CI-sized run (shorter trace).

use endbox::eval::scalability::{
    elastic_capacity_demo, elastic_margins, fig_elastic_resize, ElasticResizePoint,
    ADAPTIVE_TRACE_BASE, ADAPTIVE_TRACE_PEAK, ELASTIC_LADDER, RX_MIX_PAYLOAD,
    RX_MIX_PER_CLIENT_BPS,
};

fn print_points(points: &[ElasticResizePoint], steps: usize) {
    println!("--- diurnal trace ---");
    print!("{:<26}", "config \\ step");
    for s in 0..steps {
        print!("{s:>8}");
    }
    println!();
    print!("{:<26}", "  clients");
    for s in 0..steps {
        let p = points.iter().find(|p| p.step == s).unwrap();
        print!(
            "{:>8}",
            format!("{}{}", p.clients, if p.crowd { "*" } else { "" })
        );
    }
    println!("   (* = crowd phase)");
    let rows: Vec<&'static str> = ELASTIC_LADDER
        .iter()
        .map(|c| c.name)
        .chain(std::iter::once("elastic"))
        .collect();
    for config in rows {
        print!("{:<26}", format!("{config} [Gbps]"));
        for s in 0..steps {
            let p = points
                .iter()
                .find(|p| p.config == config && p.step == s)
                .unwrap();
            print!("{:>8.2}", p.gbps);
        }
        println!();
    }
    print!("{:<26}", "  elastic (K,N)");
    for s in 0..steps {
        let p = points
            .iter()
            .find(|p| p.config == "elastic" && p.step == s)
            .unwrap();
        print!("{:>8}", format!("{},{}", p.rx_shards, p.workers));
    }
    println!("   (geometry the resize law holds)");
}

/// Hand-rolled JSON (no serde in the offline build environment).
fn elastic_json(points: &[ElasticResizePoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"config\": \"{}\", \"step\": {}, \"clients\": {}, \"crowd\": {}, \
             \"rx_shards\": {}, \"workers\": {}, \"gbps\": {:.4}, \"mpps\": {:.5}, \
             \"server_cpu\": {:.4}}}{}\n",
            p.config,
            p.step,
            p.clients,
            p.crowd,
            p.rx_shards,
            p.workers,
            p.gbps,
            p.mpps,
            p.server_cpu,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let steps = if smoke { 6 } else { 12 };

    println!(
        "=== Structural elasticity over the diurnal trace ({} B payloads, {} Mbps/peer): \
         online RX/worker resizing vs fixed capacity rungs ===\n    batched EndBox SGX[NOP] \
         stack; ladder (K,N) in {{(1,1), (2,4), (4,8)}}; diurnal trace {} -> {} clients over \
         {} steps; crowd-phase steps carry the Zipf skew\n",
        RX_MIX_PAYLOAD,
        RX_MIX_PER_CLIENT_BPS / 1_000_000,
        ADAPTIVE_TRACE_BASE,
        ADAPTIVE_TRACE_PEAK,
        steps,
    );

    // The law itself, live: the replayed elastic row below is only an
    // honest model if the real stack both grows and shrinks.
    let demo = elastic_capacity_demo();
    println!(
        "real-stack demo: rx_grows={} rx_shrinks={} worker_grows={} worker_shrinks={} \
         peers_rehashed={} partials_drained={} sessions_moved={}\n",
        demo.rx_grows,
        demo.rx_shrinks,
        demo.worker_grows,
        demo.worker_shrinks,
        demo.peers_rehashed,
        demo.partials_drained,
        demo.sessions_moved,
    );
    assert!(
        demo.rx_grows >= 1 && demo.rx_shrinks >= 1,
        "the live resize law must both grow and shrink: {demo:?}"
    );

    let points = fig_elastic_resize(steps);
    print_points(&points, steps);

    let (worst_vs_best, peak_vs_smallest) = elastic_margins(&points);
    println!(
        "\nelastic vs best fixed rung, worst step:      {:.3}x (bar: >= 0.90)",
        worst_vs_best
    );
    println!(
        "elastic vs smallest fixed rung, sweep peak:  {:.2}x (bar: >= 1.30)",
        peak_vs_smallest
    );
    assert!(
        worst_vs_best >= 0.90,
        "elastic fell more than 10% behind the best fixed rung: {worst_vs_best:.3}x"
    );
    assert!(
        peak_vs_smallest >= 1.3,
        "elastic win over the smallest fixed rung regressed below 1.3x at the peak: \
         {peak_vs_smallest:.2}x"
    );

    let json = elastic_json(&points);
    std::fs::write("BENCH_elastic.json", &json).expect("write BENCH_elastic.json");
    println!("\nwrote BENCH_elastic.json ({} rows)", points.len());
}
