//! §V-A: the security evaluation — every attack from the paper's
//! discussion, mounted against a live deployment.

use endbox::attacks::run_all;

fn main() {
    println!("=== §V-A: security evaluation (attack battery) ===\n");
    let mut all_defended = true;
    for (name, outcome) in run_all() {
        let (verdict, why) = match &outcome {
            endbox::attacks::AttackOutcome::Defended(why) => ("DEFENDED", *why),
            endbox::attacks::AttackOutcome::Breached(why) => {
                all_defended = false;
                ("BREACHED", *why)
            }
        };
        println!("{name:<26} {verdict:<10} {why}");
    }
    println!();
    if all_defended {
        println!(
            "All attacks defended (paper: 'ENDBOX is secure against a wide range of attacks')."
        );
    } else {
        println!("!!! Some attacks succeeded — reproduction bug.");
        std::process::exit(1);
    }
}
