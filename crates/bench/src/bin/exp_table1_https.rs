//! Table I: HTTPS GET request latency for different response sizes and
//! configurations.
//!
//! Paper reference (ms):
//!   4 KB: 1.08 (w/ dec) / 1.04 (w/o dec) / 1.00 (vanilla)
//!  16 KB: 1.34 / 1.29 / 1.26
//!  32 KB: 1.78 / 1.75 / 1.70
//! Overhead of key forwarding + decryption stays below 8%.

use endbox::eval::latency::table1;

fn main() {
    println!("=== Table I: HTTPS GET latency ===\n");
    println!(
        "{:>12}{:>16}{:>16}{:>18}",
        "resp. size", "w/ dec [ms]", "w/o dec [ms]", "vanilla [ms]"
    );
    for row in table1() {
        println!(
            "{:>9} KB{:>16.2}{:>16.2}{:>18.2}",
            row.response_bytes / 1024,
            row.with_decryption_ms,
            row.without_decryption_ms,
            row.vanilla_ms
        );
    }
    println!("\nPaper: Table I (values in the header comment).");
}
