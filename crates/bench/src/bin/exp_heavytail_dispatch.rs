//! Heavy-tailed load-mix dispatcher comparison (beyond the paper).
//!
//! Fig. 10's scalability claim assumes every client offers the same load.
//! Under a heavy-tailed mix (Zipf α = 1.2, elephants whose session ids
//! collide modulo the worker count), static `(sid-1) mod N` affinity
//! saturates one shard while the others idle; the load-aware dispatcher
//! (per-shard/per-session load EWMAs + bounded migration) recovers the
//! imbalance. Charges are measured on the real sharded stack running the
//! matching dispatch policy, then replayed through the timing layer with
//! the same mix.
//!
//! Emits the grid as machine-readable `BENCH_heavytail.json`. Pass
//! `--smoke` for a CI-sized run (fewer client counts).

use endbox::eval::scalability::{fig_heavy_tail, HeavyTailPoint};
use endbox::eval::throughput::batch_size;

fn print_points(points: &[HeavyTailPoint], clients: &[usize]) {
    let policies = ["static", "load-aware"];
    print!("{:<26}", "policy \\ clients");
    for n in clients {
        print!("{n:>8}");
    }
    println!();
    for policy in policies {
        print!("{:<26}", format!("{policy} [Gbps]"));
        for n in clients {
            let p = points
                .iter()
                .find(|p| p.policy == policy && p.clients == *n)
                .unwrap();
            print!("{:>8.2}", p.gbps);
        }
        println!();
        print!("{:<26}", "  migrations");
        for n in clients {
            let p = points
                .iter()
                .find(|p| p.policy == policy && p.clients == *n)
                .unwrap();
            print!("{:>8}", p.migrations);
        }
        println!();
    }
}

/// Hand-rolled JSON (no serde in the offline build environment).
fn heavy_tail_json(points: &[HeavyTailPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"policy\": \"{}\", \"clients\": {}, \"workers\": {}, \"batch\": {}, \
             \"gbps\": {:.4}, \"mpps\": {:.5}, \"server_cpu\": {:.4}, \"migrations\": {}}}{}\n",
            p.policy,
            p.clients,
            p.workers,
            p.batch,
            p.gbps,
            p.mpps,
            p.server_cpu,
            p.migrations,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let clients: Vec<usize> = if smoke {
        vec![20, 60]
    } else {
        vec![10, 20, 30, 40, 50, 60]
    };
    let batch = batch_size();

    println!(
        "=== Heavy-tailed load mix (Zipf 1.2, colliding elephants): static affinity vs \
         load-aware dispatch ===\n    batched EndBox SGX[NOP], batch={batch}, 4 worker shards\n"
    );
    let points = fig_heavy_tail(batch, &clients);
    print_points(&points, &clients);

    let last = *clients.last().unwrap();
    let at = |policy: &str| {
        points
            .iter()
            .find(|p| p.policy == policy && p.clients == last)
            .unwrap()
            .gbps
    };
    println!(
        "\ndispatcher win at {last} clients: {:.2}x (static {:.2} -> load-aware {:.2} Gbps)",
        at("load-aware") / at("static"),
        at("static"),
        at("load-aware")
    );

    let json = heavy_tail_json(&points);
    std::fs::write("BENCH_heavytail.json", &json).expect("write BENCH_heavytail.json");
    println!("\nwrote BENCH_heavytail.json ({} rows)", points.len());
}
