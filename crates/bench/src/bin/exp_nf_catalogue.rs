//! Stateful NF catalogue over the order-preserving batched datapath
//! (beyond the paper).
//!
//! PR 9's order-preserving fan-out re-merge makes batching safe for
//! stateful elements: their flow tables see packets in single-packet
//! order, so the batched datapath is purely an ecall/traversal/seal
//! amortisation. This experiment installs a connection tracker →
//! stateful NAT → token bucket chain (with a `Tee` accounting fan-out)
//! through the Fig. 5 reconfiguration cycle and compares per-packet vs
//! batch-16 ecalls on three adversarial mixes: a few-flow flood, a
//! heavy-tail elephant/mice interleave, and an oversize/runt fragment
//! mix. Order preservation is asserted end to end on every replay.
//!
//! Emits the grid as machine-readable `BENCH_nf.json`. Pass `--smoke`
//! for a CI-sized run (fewer replays per mix).

use endbox::eval::nf_catalogue::{fig_nf_catalogue, NfMixResult, NF_BATCH, NF_MIXES};

fn print_results(results: &[NfMixResult]) {
    println!(
        "{:<12}{:>9}{:>11}{:>14}{:>14}{:>9}",
        "mix", "packets", "avg bytes", "single Mbps", "batch16 Mbps", "speedup"
    );
    for r in results {
        println!(
            "{:<12}{:>9}{:>11}{:>14.1}{:>14.1}{:>8.2}x",
            r.mix, r.packets, r.avg_bytes, r.single_mbps, r.batched_mbps, r.speedup
        );
    }
    println!("\nstateful-chain activity (batched run):");
    println!(
        "{:<12}{:>10}{:>11}{:>11}{:>11}{:>10}",
        "mix", "nat flows", "rewritten", "conn flows", "conformed", "tee acct"
    );
    for r in results {
        println!(
            "{:<12}{:>10}{:>11}{:>11}{:>11}{:>10}",
            r.mix,
            r.stats.nat_flows,
            r.stats.nat_rewritten,
            r.stats.conn_flows,
            r.stats.conformed,
            r.stats.fanout_copies
        );
    }
}

/// Hand-rolled JSON (no serde in the offline build environment).
fn nf_json(results: &[NfMixResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"mix\": \"{}\", \"packets\": {}, \"avg_bytes\": {}, \"batch\": {}, \
             \"single_mbps\": {:.4}, \"batched_mbps\": {:.4}, \"speedup\": {:.4}, \
             \"nat_flows\": {}, \"nat_rewritten\": {}, \"conn_flows\": {}, \
             \"conformed\": {}, \"fanout_copies\": {}}}{}\n",
            r.mix,
            r.packets,
            r.avg_bytes,
            NF_BATCH,
            r.single_mbps,
            r.batched_mbps,
            r.speedup,
            r.stats.nat_flows,
            r.stats.nat_rewritten,
            r.stats.conn_flows,
            r.stats.conformed,
            r.stats.fanout_copies,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let samples = if smoke { 2 } else { 6 };

    println!(
        "=== Stateful NF catalogue: ConnTracker -> IPRewriter (NAT) -> TokenBucket with \
         Tee accounting fan-out ===\n    EndBox SGX[NOP] stack, chain installed via the \
         Fig. 5 cycle; per-packet ecalls vs batch-{NF_BATCH} datapath, {samples} replays \
         per mix; delivery order asserted on every replay\n"
    );
    let results = fig_nf_catalogue(samples);
    print_results(&results);

    let at = |mix: &str| results.iter().find(|r| r.mix == mix).unwrap();
    for mix in NF_MIXES {
        let r = at(mix);
        println!(
            "\n{mix} batched win: {:.2}x ({:.1} -> {:.1} Mbps)",
            r.speedup, r.single_mbps, r.batched_mbps
        );
    }
    for mix in NF_MIXES {
        assert!(
            at(mix).speedup >= 1.3,
            "{mix} batched win regressed below 1.3x: {:.2}x",
            at(mix).speedup
        );
    }
    for r in &results {
        assert!(r.stats.nat_flows > 0, "{}: NAT saw no flows", r.mix);
        assert_eq!(
            r.stats.conformed, r.stats.nat_rewritten,
            "{}: token bucket must conform exactly the NAT-rewritten stream",
            r.mix
        );
    }

    let json = nf_json(&results);
    std::fs::write("BENCH_nf.json", &json).expect("write BENCH_nf.json");
    println!("\nwrote BENCH_nf.json ({} rows)", results.len());
}
