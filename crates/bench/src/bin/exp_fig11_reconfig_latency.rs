//! Fig. 11: impact of configuration updates on ping latency (FW use case,
//! reconfiguration at t = 0, 10 pings/s).
//!
//! Paper reference: both OpenVPN+Click and EndBox lose exactly one ping
//! during reconfiguration; latency is otherwise unaffected.

use endbox::eval::latency::fig11;

fn main() {
    println!("=== Fig. 11: ping latency around a configuration update ===\n");
    let endbox = fig11(true);
    let central = fig11(false);
    println!(
        "{:>10}{:>18}{:>22}",
        "t [s]", "EndBox [ms]", "OpenVPN+Click [ms]"
    );
    for (e, c) in endbox.iter().zip(central.iter()) {
        let fmt = |v: Option<f64>| match v {
            Some(ms) => format!("{ms:.3}"),
            None => "LOST".to_string(),
        };
        println!(
            "{:>10.1}{:>18}{:>22}",
            e.t_ms / 1000.0,
            fmt(e.rtt_ms),
            fmt(c.rtt_ms)
        );
    }
    let lost_e = endbox.iter().filter(|s| s.rtt_ms.is_none()).count();
    let lost_c = central.iter().filter(|s| s.rtt_ms.is_none()).count();
    println!("\nLost pings: EndBox {lost_e}, OpenVPN+Click {lost_c} (paper: one each).");
}
