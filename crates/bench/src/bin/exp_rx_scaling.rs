//! RX front-end scaling (beyond the paper).
//!
//! PR 3 pipelined server ingress behind a single RX stage thread; under a
//! many-peer **small-record** mix (no record coalescing, one wire
//! datagram per record) per-datagram reassembly/framing dominates the
//! per-packet server work and that one thread becomes the serial
//! bottleneck. The `RxShardPool` shards framing across K threads by
//! `peer_id mod K`; charges are measured on the real sharded stack
//! running the pool at each K, then replayed through the timing layer
//! with the RX front-end as K serial framing lanes (completion-ordered
//! hand-off into the worker-shard dispatch).
//!
//! Emits the grid as machine-readable `BENCH_rx.json`. Pass `--smoke`
//! for a CI-sized run (fewer client counts).

use endbox::eval::scalability::{
    fig_rx_scaling, rx_shard_counts, RxScalingPoint, RX_MIX_PAYLOAD, RX_MIX_PER_CLIENT_BPS,
};

fn print_points(points: &[RxScalingPoint], clients: &[usize]) {
    print!("{:<26}", "RX shards \\ clients");
    for n in clients {
        print!("{n:>8}");
    }
    println!();
    for k in rx_shard_counts() {
        print!("{:<26}", format!("K={k} [Mpps]"));
        for n in clients {
            let p = points
                .iter()
                .find(|p| p.rx_shards == k && p.clients == *n)
                .unwrap();
            print!("{:>8.3}", p.mpps);
        }
        println!();
        print!("{:<26}", "  server CPU [%]");
        for n in clients {
            let p = points
                .iter()
                .find(|p| p.rx_shards == k && p.clients == *n)
                .unwrap();
            print!("{:>8.0}", p.server_cpu * 100.0);
        }
        println!();
    }
}

/// Hand-rolled JSON (no serde in the offline build environment).
fn rx_json(points: &[RxScalingPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"clients\": {}, \"rx_shards\": {}, \"workers\": {}, \
             \"gbps\": {:.4}, \"mpps\": {:.5}, \"server_cpu\": {:.4}}}{}\n",
            p.clients,
            p.rx_shards,
            p.workers,
            p.gbps,
            p.mpps,
            p.server_cpu,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let clients: Vec<usize> = if smoke {
        vec![40, 120]
    } else {
        vec![20, 40, 60, 80, 100, 120]
    };

    println!(
        "=== Many-peer small-record mix ({} B payloads, {} Mbps/peer, single-record \
         datagrams): RX front-end sharding ===\n    batched EndBox SGX[NOP] stack, \
         4 worker shards, RX shards K in {:?}\n",
        RX_MIX_PAYLOAD,
        RX_MIX_PER_CLIENT_BPS / 1_000_000,
        rx_shard_counts()
    );
    let points = fig_rx_scaling(&clients);
    print_points(&points, &clients);

    let last = *clients.last().unwrap();
    let at = |k: usize| {
        points
            .iter()
            .find(|p| p.rx_shards == k && p.clients == last)
            .unwrap()
            .gbps
    };
    println!(
        "\nRX-sharding win at {last} peers: {:.2}x (K=1 {:.2} -> K=4 {:.2} Gbps)",
        at(4) / at(1),
        at(1),
        at(4)
    );

    let json = rx_json(&points);
    std::fs::write("BENCH_rx.json", &json).expect("write BENCH_rx.json");
    println!("\nwrote BENCH_rx.json ({} rows)", points.len());
}
