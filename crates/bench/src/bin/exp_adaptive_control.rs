//! Self-tuning datapath control plane: closed-loop budgets, online
//! peer->shard remap and rate-based work stealing vs hand-tuned static
//! configurations (beyond the paper).
//!
//! Earlier experiments exposed the datapath's scheduling knobs — the
//! front-end's per-socket drain quota and per-shard budget, the
//! dispatcher's migration threshold — and tuned them by hand per
//! workload. This experiment removes them: a feedback controller
//! derives per-shard budgets from live queue depth (with per-socket
//! token buckets so hot peers borrow what idle shard-mates leave
//! unclaimed), re-homes persistently hot peers to cold RX shards
//! (draining their in-flight partial records at a quiesced boundary),
//! and lets idle workers steal sessions whose replay windows are empty.
//!
//! Every configuration is measured on the real stack under the
//! heavy-tailed small-record mix, then replayed over two offered-load
//! traces — a flash crowd (flat base, spike, exponential decay) and a
//! diurnal cycle (raised cosine) — with crowd-phase steps carrying the
//! Zipf load skew. The acceptance bars: the zero-knob controller stays
//! within 5% of the *best* static configuration at every trace step,
//! and beats the *worst* static configuration by at least 1.3x at the
//! sweep peak.
//!
//! Emits the grid as machine-readable `BENCH_adaptive.json`. Pass
//! `--smoke` for a CI-sized run (shorter traces).

use endbox::eval::scalability::{
    adaptive_control_margins, fig_adaptive_control, AdaptiveControlPoint, ADAPTIVE_CONFIGS,
    ADAPTIVE_TRACE_BASE, ADAPTIVE_TRACE_PEAK, RX_MIX_PAYLOAD, RX_MIX_PER_CLIENT_BPS,
};

fn print_points(points: &[AdaptiveControlPoint], trace: &str, steps: usize) {
    println!("--- {trace} trace ---");
    print!("{:<26}", "config \\ step");
    for s in 0..steps {
        print!("{s:>8}");
    }
    println!();
    print!("{:<26}", "  clients");
    for s in 0..steps {
        let p = points
            .iter()
            .find(|p| p.trace == trace && p.step == s)
            .unwrap();
        print!(
            "{:>8}",
            format!("{}{}", p.clients, if p.crowd { "*" } else { "" })
        );
    }
    println!("   (* = crowd phase)");
    for config in &ADAPTIVE_CONFIGS {
        print!("{:<26}", format!("{} [Gbps]", config.name));
        for s in 0..steps {
            let p = points
                .iter()
                .find(|p| p.config == config.name && p.trace == trace && p.step == s)
                .unwrap();
            print!("{:>8.2}", p.gbps);
        }
        println!();
    }
}

/// Hand-rolled JSON (no serde in the offline build environment).
fn adaptive_json(points: &[AdaptiveControlPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"config\": \"{}\", \"trace\": \"{}\", \"step\": {}, \"clients\": {}, \
             \"crowd\": {}, \"gbps\": {:.4}, \"mpps\": {:.5}, \"server_cpu\": {:.4}}}{}\n",
            p.config,
            p.trace,
            p.step,
            p.clients,
            p.crowd,
            p.gbps,
            p.mpps,
            p.server_cpu,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let steps = if smoke { 6 } else { 12 };

    println!(
        "=== Heavy-tailed small-record mix ({} B payloads, {} Mbps/peer) over offered-load \
         traces: zero-knob controller vs hand-tuned static configs ===\n    batched EndBox \
         SGX[NOP] stack, 4 worker shards, 2 RX shards; flash-crowd + diurnal traces, \
         {} -> {} clients over {} steps; crowd-phase steps carry the Zipf skew\n",
        RX_MIX_PAYLOAD,
        RX_MIX_PER_CLIENT_BPS / 1_000_000,
        ADAPTIVE_TRACE_BASE,
        ADAPTIVE_TRACE_PEAK,
        steps,
    );
    let points = fig_adaptive_control(steps);
    print_points(&points, "flash-crowd", steps);
    println!();
    print_points(&points, "diurnal", steps);

    let (worst_vs_best, peak_vs_worst) = adaptive_control_margins(&points);
    println!(
        "\ncontroller vs best static config, worst step:  {:.3}x (bar: >= 0.95)",
        worst_vs_best
    );
    println!(
        "controller vs worst static config, sweep peak: {:.2}x (bar: >= 1.30)",
        peak_vs_worst
    );
    assert!(
        worst_vs_best >= 0.95,
        "zero-knob controller fell more than 5% behind the best static config: {worst_vs_best:.3}x"
    );
    assert!(
        peak_vs_worst >= 1.3,
        "controller win over the worst static config regressed below 1.3x at the peak: \
         {peak_vs_worst:.2}x"
    );

    let json = adaptive_json(&points);
    std::fs::write("BENCH_adaptive.json", &json).expect("write BENCH_adaptive.json");
    println!("\nwrote BENCH_adaptive.json ({} rows)", points.len());
}
