//! Table II: timings of the configuration-update phases for vanilla Click
//! and EndBox.
//!
//! Paper reference: vanilla Click hot-swap 2.4 ms total; EndBox fetch
//! 0.86 ms + decryption 0.07 ms + hot-swap 0.74 ms = 1.67 ms, i.e. the
//! actual reconfiguration takes only ~30% of vanilla Click's.

use endbox::eval::reconfig::table2;

fn main() {
    println!("=== Table II: configuration update phases ===\n");
    println!(
        "{:<16}{:>12}{:>14}{:>12}{:>10}",
        "phase", "fetch", "decryption", "hotswap", "total"
    );
    let rows = table2();
    for row in &rows {
        let fmt = |v: Option<f64>| match v {
            Some(ms) => format!("{ms:.2} ms"),
            None => "-".to_string(),
        };
        println!(
            "{:<16}{:>12}{:>14}{:>12}{:>10}",
            row.system,
            fmt(row.fetch_ms),
            fmt(row.decrypt_ms),
            format!("{:.2} ms", row.hotswap_ms),
            format!("{:.2} ms", row.total_ms),
        );
    }
    let ratio = rows[1].hotswap_ms / rows[0].hotswap_ms;
    println!(
        "\nEndBox hot-swap takes {:.0}% of vanilla Click's (paper: ~30%).",
        ratio * 100.0
    );
}
