//! Kernel-bypass transport backends: bulk sockets vs submission/
//! completion ring vs zero-copy frame bypass (beyond the paper).
//!
//! PR 6 amortised the syscall boundary with `sendmmsg`/`recvmmsg`-shaped
//! bulk operations; this experiment swaps the transport *under* the
//! sockets. The `RingWire` backend submits descriptor batches into
//! SQ/CQ rings and pays one doorbell charge per submitted batch instead
//! of one syscall per bulk call; the `XdpWire` backend hands frames to
//! the datapath by descriptor from a shared UMEM-style arena — zero
//! per-byte copy, no kernel receive path at all. All three backends
//! drain the identical many-peer small-record mix with `recv_many(32)`
//! vectors, so the socket row reproduces the bulk-32 row of
//! `BENCH_wire.json` and every win is attributable to the calibrated
//! boundary model alone.
//!
//! Emits the grid as machine-readable `BENCH_transport.json`. Pass
//! `--smoke` for a CI-sized run (fewer client counts).

use endbox::eval::scalability::{
    fig_transport_backend, TransportBackendPoint, RX_MIX_PAYLOAD, RX_MIX_PER_CLIENT_BPS,
    TRANSPORT_BACKEND_BULK,
};

const BACKENDS: [&str; 3] = ["socket", "ring", "xdp-frame"];

fn print_points(points: &[TransportBackendPoint], clients: &[usize]) {
    print!("{:<26}", "backend \\ clients");
    for n in clients {
        print!("{n:>8}");
    }
    println!();
    for backend in BACKENDS {
        print!("{:<26}", format!("{backend} [Mpps]"));
        for n in clients {
            let p = points
                .iter()
                .find(|p| p.backend == backend && p.clients == *n)
                .unwrap();
            print!("{:>8.3}", p.mpps);
        }
        println!();
        print!("{:<26}", "  server CPU [%]");
        for n in clients {
            let p = points
                .iter()
                .find(|p| p.backend == backend && p.clients == *n)
                .unwrap();
            print!("{:>8.0}", p.server_cpu * 100.0);
        }
        println!();
    }
}

/// Hand-rolled JSON (no serde in the offline build environment).
fn transport_json(points: &[TransportBackendPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"backend\": \"{}\", \"clients\": {}, \"rx_shards\": {}, \"workers\": {}, \
             \"bulk\": {}, \"gbps\": {:.4}, \"mpps\": {:.5}, \"server_cpu\": {:.4}, \
             \"datagrams_per_call\": {:.4}}}{}\n",
            p.backend,
            p.clients,
            p.rx_shards,
            p.workers,
            TRANSPORT_BACKEND_BULK,
            p.gbps,
            p.mpps,
            p.server_cpu,
            p.datagrams_per_call,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let clients: Vec<usize> = if smoke { vec![120] } else { vec![40, 80, 120] };

    println!(
        "=== Many-peer small-record mix ({} B payloads, {} Mbps/peer, single-record \
         datagrams): transport-backend comparison ===\n    batched EndBox SGX[NOP] stack, \
         4 worker shards, 2 RX shards, recv_many bulk {}; boundary models: bulk socket \
         vs SQ/CQ ring doorbell vs zero-copy frame bypass\n",
        RX_MIX_PAYLOAD,
        RX_MIX_PER_CLIENT_BPS / 1_000_000,
        TRANSPORT_BACKEND_BULK,
    );
    let points = fig_transport_backend(&clients);
    print_points(&points, &clients);

    println!("\nmeasured boundary amortisation (datagrams per crossing):");
    for backend in BACKENDS {
        let p = points.iter().find(|p| p.backend == backend).unwrap();
        println!("  {backend:>9}: {:.2}", p.datagrams_per_call);
    }

    let last = *clients.last().unwrap();
    let at = |backend: &str| {
        points
            .iter()
            .find(|p| p.backend == backend && p.clients == last)
            .unwrap()
            .gbps
    };
    let (socket, ring, xdp) = (at("socket"), at("ring"), at("xdp-frame"));
    println!(
        "\nring win at {last} peers: {:.2}x (socket {socket:.2} -> ring {ring:.2} Gbps)",
        ring / socket,
    );
    println!(
        "xdp-frame win at {last} peers: {:.2}x (socket {socket:.2} -> xdp {xdp:.2} Gbps)",
        xdp / socket,
    );
    assert!(
        ring >= 1.3 * socket,
        "ring transport win regressed below 1.3x: {:.2}x",
        ring / socket
    );
    assert!(
        xdp >= 1.6 * socket,
        "xdp-frame transport win regressed below 1.6x: {:.2}x",
        xdp / socket
    );
    assert!(
        xdp >= ring,
        "zero-copy must not lose to the ring: {ring:.2} vs {xdp:.2} Gbps"
    );

    let json = transport_json(&points);
    std::fs::write("BENCH_transport.json", &json).expect("write BENCH_transport.json");
    println!("\nwrote BENCH_transport.json ({} rows)", points.len());
}
