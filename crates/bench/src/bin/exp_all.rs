//! Runs every experiment in sequence (the full §V evaluation).
//!
//! ```text
//! cargo run --release -p endbox-bench --bin exp_all
//! ```

use std::process::Command;

fn main() {
    let experiments = [
        "exp_fig6_pageload",
        "exp_fig7_redirection",
        "exp_table1_https",
        "exp_fig8_throughput",
        "exp_fig9_usecases",
        "exp_fig10_scalability",
        "exp_heavytail_dispatch",
        "exp_rx_scaling",
        "exp_async_ingress",
        "exp_syscall_batch",
        "exp_transport_backend",
        "exp_adaptive_control",
        "exp_elastic_resize",
        "exp_nf_catalogue",
        "exp_table2_reconfig",
        "exp_fig11_reconfig_latency",
        "exp_optimizations",
        "exp_attacks",
    ];
    let exe = std::env::current_exe().expect("own path");
    let bin_dir = exe.parent().expect("bin dir");
    for name in experiments {
        println!("\n{:=^78}\n", format!(" {name} "));
        let status = Command::new(bin_dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            eprintln!("{name} failed");
            std::process::exit(1);
        }
    }
    println!("\nAll experiments completed.");
}
