//! Fig. 10: server-side aggregated throughput and CPU usage for 1–60
//! clients at 200 Mbps each.
//!
//! Paper reference: vanilla OpenVPN and EndBox plateau at ~6.5 Gbps;
//! vanilla Click at ~5.5 Gbps; OpenVPN+Click peaks at ~2.5 Gbps (FW/LB)
//! and ~1.7 Gbps (IDPS/DDoS), then decreases. EndBox wins 2.6x–3.8x at
//! 60 clients.
//!
//! Beyond the paper: the **sharded multi-worker** extension sweeps the
//! batched EndBox-SGX path with the server as one process running
//! 1/2/4/8 worker shards, and emits the grid (clients × workers × Mpps)
//! as machine-readable `BENCH_fig10.json`.
//!
//! Pass `--smoke` for a CI-sized run (few client counts, sharded grid +
//! JSON only).

use endbox::eval::scalability::{
    client_counts, fig10_sharded, fig10a, fig10b, ScalabilityPoint, ShardedScalabilityPoint,
};
use endbox::eval::throughput::batch_size;

fn print_series(points: &[ScalabilityPoint]) {
    let mut deployments: Vec<String> = Vec::new();
    for p in points {
        if !deployments.contains(&p.deployment) {
            deployments.push(p.deployment.clone());
        }
    }
    print!("{:<26}", "setup \\ clients");
    for n in client_counts() {
        print!("{n:>7}");
    }
    println!();
    for d in &deployments {
        print!("{d:<26}");
        for n in client_counts() {
            let p = points
                .iter()
                .find(|p| &p.deployment == d && p.clients == n)
                .unwrap();
            print!("{:>7.2}", p.gbps);
        }
        println!();
        print!("{:<26}", "  server CPU [%]");
        for n in client_counts() {
            let p = points
                .iter()
                .find(|p| &p.deployment == d && p.clients == n)
                .unwrap();
            print!("{:>7.0}", p.server_cpu * 100.0);
        }
        println!();
    }
}

fn print_sharded(points: &[ShardedScalabilityPoint], clients: &[usize]) {
    let mut workers: Vec<usize> = Vec::new();
    for p in points {
        if !workers.contains(&p.workers) {
            workers.push(p.workers);
        }
    }
    print!("{:<26}", "workers \\ clients");
    for n in clients {
        print!("{n:>7}");
    }
    println!();
    for w in &workers {
        print!("{:<26}", format!("{w} worker shard(s) [Gbps]"));
        for n in clients {
            let p = points
                .iter()
                .find(|p| p.workers == *w && p.clients == *n)
                .unwrap();
            print!("{:>7.2}", p.gbps);
        }
        println!();
        print!("{:<26}", "  rate [Mpps]");
        for n in clients {
            let p = points
                .iter()
                .find(|p| p.workers == *w && p.clients == *n)
                .unwrap();
            print!("{:>7.3}", p.mpps);
        }
        println!();
    }
}

/// Hand-rolled JSON (no serde in the offline build environment): one
/// object per (clients × workers) grid cell.
fn sharded_json(points: &[ShardedScalabilityPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"deployment\": \"{}\", \"clients\": {}, \"workers\": {}, \"batch\": {}, \
             \"gbps\": {:.4}, \"mpps\": {:.5}, \"server_cpu\": {:.4}}}{}\n",
            p.deployment,
            p.clients,
            p.workers,
            p.batch,
            p.gbps,
            p.mpps,
            p.server_cpu,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sharded_clients: Vec<usize> = if smoke {
        vec![1, 5, 10]
    } else {
        client_counts().to_vec()
    };

    if !smoke {
        println!("=== Fig. 10a: NOP use case, different deployments (Gbps) ===\n");
        print_series(&fig10a());
        println!("\n=== Fig. 10b: five use cases, EndBox vs OpenVPN+Click (Gbps) ===\n");
        let b = fig10b();
        print_series(&b);

        // Headline factors (paper: 2.6x - 3.8x at 60 clients).
        println!("\n=== EndBox advantage at 60 clients ===");
        for uc in ["NOP", "LB", "FW", "IDPS", "DDoS"] {
            let e = b
                .iter()
                .find(|p| p.deployment == format!("EndBox SGX[{uc}]") && p.clients == 60)
                .unwrap()
                .gbps;
            let c = b
                .iter()
                .find(|p| p.deployment == format!("OpenVPN+Click[{uc}]") && p.clients == 60)
                .unwrap()
                .gbps;
            println!(
                "{uc:<6} EndBox {e:.2} Gbps vs central {c:.2} Gbps -> {:.1}x",
                e / c
            );
        }
        println!();
    }

    let batch = batch_size();
    println!(
        "=== Sharded multi-worker server: batched EndBox SGX[NOP], batch={batch} \
         (clients x workers) ===\n"
    );
    let sharded = fig10_sharded(batch, &sharded_clients);
    print_sharded(&sharded, &sharded_clients);

    let last = *sharded_clients.last().unwrap();
    let at = |w: usize| {
        sharded
            .iter()
            .find(|p| p.workers == w && p.clients == last)
            .unwrap()
            .gbps
    };
    println!(
        "\nscaling at {last} clients: 1->2 workers {:.2}x, 1->4 workers {:.2}x, 1->8 workers {:.2}x",
        at(2) / at(1),
        at(4) / at(1),
        at(8) / at(1)
    );

    let json = sharded_json(&sharded);
    std::fs::write("BENCH_fig10.json", &json).expect("write BENCH_fig10.json");
    println!("\nwrote BENCH_fig10.json ({} rows)", sharded.len());
}
