//! Fig. 10: server-side aggregated throughput and CPU usage for 1–60
//! clients at 200 Mbps each.
//!
//! Paper reference: vanilla OpenVPN and EndBox plateau at ~6.5 Gbps;
//! vanilla Click at ~5.5 Gbps; OpenVPN+Click peaks at ~2.5 Gbps (FW/LB)
//! and ~1.7 Gbps (IDPS/DDoS), then decreases. EndBox wins 2.6x–3.8x at
//! 60 clients.

use endbox::eval::scalability::{client_counts, fig10a, fig10b, ScalabilityPoint};

fn print_series(points: &[ScalabilityPoint]) {
    let mut deployments: Vec<String> = Vec::new();
    for p in points {
        if !deployments.contains(&p.deployment) {
            deployments.push(p.deployment.clone());
        }
    }
    print!("{:<26}", "setup \\ clients");
    for n in client_counts() {
        print!("{n:>7}");
    }
    println!();
    for d in &deployments {
        print!("{d:<26}");
        for n in client_counts() {
            let p = points
                .iter()
                .find(|p| &p.deployment == d && p.clients == n)
                .unwrap();
            print!("{:>7.2}", p.gbps);
        }
        println!();
        print!("{:<26}", "  server CPU [%]");
        for n in client_counts() {
            let p = points
                .iter()
                .find(|p| &p.deployment == d && p.clients == n)
                .unwrap();
            print!("{:>7.0}", p.server_cpu * 100.0);
        }
        println!();
    }
}

fn main() {
    println!("=== Fig. 10a: NOP use case, different deployments (Gbps) ===\n");
    print_series(&fig10a());
    println!("\n=== Fig. 10b: five use cases, EndBox vs OpenVPN+Click (Gbps) ===\n");
    let b = fig10b();
    print_series(&b);

    // Headline factors (paper: 2.6x - 3.8x at 60 clients).
    println!("\n=== EndBox advantage at 60 clients ===");
    for uc in ["NOP", "LB", "FW", "IDPS", "DDoS"] {
        let e = b
            .iter()
            .find(|p| p.deployment == format!("EndBox SGX[{uc}]") && p.clients == 60)
            .unwrap()
            .gbps;
        let c = b
            .iter()
            .find(|p| p.deployment == format!("OpenVPN+Click[{uc}]") && p.clients == 60)
            .unwrap()
            .gbps;
        println!(
            "{uc:<6} EndBox {e:.2} Gbps vs central {c:.2} Gbps -> {:.1}x",
            e / c
        );
    }
}
