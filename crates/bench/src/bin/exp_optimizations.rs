//! §V-G: evaluation of the optimisations of §IV-A.
//!
//! Paper reference: one-ecall-per-packet gives +342% throughput; the ISP
//! scenario's integrity-only protection +11%; client-to-client QoS
//! flagging reduces c2c latency by up to 13% (IDPS); plus the
//! trusted-time sampling ablation (DESIGN.md design-choice list).

use endbox::eval::optimizations::{
    batch_size_ablation, batching_ablation, c2c_ablation, epc_ablation, isp_ablation,
    sampling_sweep, transition_ablation,
};
use endbox::eval::throughput::{batch_size, DEFAULT_BATCH_SIZE};

fn main() {
    println!("=== §V-G: optimisation ablations ===\n");

    let t = transition_ablation();
    println!("[1] Enclave transitions (one ecall per packet vs per crypto op)");
    println!("    batched: {:>8.0} Mbps", t.batched_mbps);
    println!("    per-op:  {:>8.0} Mbps", t.per_op_mbps);
    println!("    -> +{:.0}% (paper: +342%)\n", t.improvement_percent);

    let i = isp_ablation();
    println!("[2] ISP scenario: integrity-only traffic protection");
    println!("    AES-128-CBC+HMAC: {:>8.0} Mbps", i.encrypted_mbps);
    println!("    integrity-only:   {:>8.0} Mbps", i.integrity_only_mbps);
    println!("    -> +{:.1}% (paper: +11%)\n", i.improvement_percent);

    let c = c2c_ablation();
    println!("[3] Client-to-client QoS flagging (IDPS use case)");
    println!("    without flag: {:.3} ms", c.without_flag_ms);
    println!("    with flag:    {:.3} ms", c.with_flag_ms);
    println!(
        "    -> -{:.1}% latency (paper: up to -13%)\n",
        c.reduction_percent
    );

    println!("[4] TrustedSplitter sampling interval (ablation)");
    println!("    {:>12} {:>22}", "interval", "cycles/packet");
    for p in sampling_sweep() {
        println!(
            "    {:>12} {:>22.0}",
            p.sample_interval, p.cycles_per_packet
        );
    }
    println!("    (paper uses 500000; frequent trusted-time reads dominate otherwise)");

    println!("\n[5] EPC pressure (ablation; 48 MiB enclave resident set)");
    println!(
        "    {:>10} {:>14} {:>16}",
        "EPC [MiB]", "page faults", "paging cycles"
    );
    for p in epc_ablation() {
        println!(
            "    {:>10} {:>14} {:>16}",
            p.epc_mib, p.page_faults, p.paging_cycles
        );
    }
    println!("    (SGXv1 EPC is 128 MiB; larger enclaves page with a substantial penalty, §II-C)");

    println!("\n[6] Batched datapath (one transition/record per batch; beyond the paper)");
    println!(
        "    {:>6} {:>14} {:>14} {:>10}",
        "batch", "single Mbps", "batched Mbps", "gain"
    );
    for batch in [2usize, 4, 8, 16, 32] {
        let b = batching_ablation(batch);
        println!(
            "    {:>6} {:>14.0} {:>14.0} {:>9.0}%",
            b.batch_size, b.single_mbps, b.batched_mbps, b.improvement_percent
        );
    }
    println!("    (EndBox-SGX NOP at 1500 B; amortises ecall, partition and crypto fixed costs)");

    println!("\n[7] Adaptive batch sizing: latency vs throughput (beyond the paper)");
    println!(
        "    {:>6} {:>14} {:>20}",
        "batch", "Mbps", "added latency [us]"
    );
    for p in batch_size_ablation(&[1, 2, 4, 8, 16, 32, 64]) {
        let marker = if p.batch == batch_size() {
            "  <- in force"
        } else {
            ""
        };
        println!(
            "    {:>6} {:>14.0} {:>20.1}{marker}",
            p.batch, p.mbps, p.added_latency_us
        );
    }
    println!(
        "    (fill latency at 200 Mbps offered + client processing; default batch \
         {DEFAULT_BATCH_SIZE}, override with ENDBOX_BATCH_SIZE)"
    );
}
