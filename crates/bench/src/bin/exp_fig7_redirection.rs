//! Fig. 7: average ping RTT for different redirection methods.
//!
//! Paper reference: no redirection 10.8 ms, local redirection 11.3 ms,
//! EndBox SGX 11.5 ms (+6%), AWS eu-central 17.4 ms (+61%), AWS us-east
//! 202.3 ms (+1773%).

use endbox::eval::latency::fig7;

fn main() {
    println!("=== Fig. 7: ping RTT by redirection method ===\n");
    let rows = fig7();
    let baseline = rows[0].1;
    println!("{:<20}{:>12}{:>12}", "method", "RTT [ms]", "overhead");
    for (label, rtt) in rows {
        println!(
            "{label:<20}{rtt:>12.1}{:>11.0}%",
            (rtt / baseline - 1.0) * 100.0
        );
    }
    println!("\nPaper: 10.8 / 11.3 / 11.5 / 17.4 / 202.3 ms.");
}
