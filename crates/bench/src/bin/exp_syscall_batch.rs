//! Syscall-batched transport: bulk vs per-datagram socket I/O (beyond
//! the paper).
//!
//! PR 5 made ingress event-driven, but every ready socket was still
//! drained one `recvfrom` at a time: one kernel crossing per wire
//! datagram, which dominates the small-record mix where the per-datagram
//! work is tiny. The transport layer now exposes `send_many`/`recv_many`
//! bulk operations (`sendmmsg`/`recvmmsg` shape) and the `AsyncFrontEnd`
//! drains each readable socket with vectors of up to `bulk` datagrams.
//! Charges *and* the measured datagrams-per-call amortisation come from
//! the real stack draining through `recv_many`; the timing layer spreads
//! the per-call syscall cost over that ratio on the RX lanes
//! (`ScalabilityConfig::syscall_batch`).
//!
//! Emits the grid as machine-readable `BENCH_wire.json`. Pass `--smoke`
//! for a CI-sized run (fewer client counts).

use endbox::eval::scalability::{
    fig_syscall_batch, SyscallBatchPoint, RX_MIX_PAYLOAD, RX_MIX_PER_CLIENT_BPS, WIRE_BULK_SIZES,
};

fn print_points(points: &[SyscallBatchPoint], clients: &[usize]) {
    print!("{:<26}", "bulk size \\ clients");
    for n in clients {
        print!("{n:>8}");
    }
    println!();
    for bulk in WIRE_BULK_SIZES {
        print!("{:<26}", format!("bulk {bulk} [Mpps]"));
        for n in clients {
            let p = points
                .iter()
                .find(|p| p.bulk == bulk && p.clients == *n)
                .unwrap();
            print!("{:>8.3}", p.mpps);
        }
        println!();
        print!("{:<26}", "  server CPU [%]");
        for n in clients {
            let p = points
                .iter()
                .find(|p| p.bulk == bulk && p.clients == *n)
                .unwrap();
            print!("{:>8.0}", p.server_cpu * 100.0);
        }
        println!();
    }
}

/// Hand-rolled JSON (no serde in the offline build environment).
fn wire_json(points: &[SyscallBatchPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"bulk\": {}, \"clients\": {}, \"rx_shards\": {}, \"workers\": {}, \
             \"gbps\": {:.4}, \"mpps\": {:.5}, \"server_cpu\": {:.4}, \
             \"datagrams_per_call\": {:.4}}}{}\n",
            p.bulk,
            p.clients,
            p.rx_shards,
            p.workers,
            p.gbps,
            p.mpps,
            p.server_cpu,
            p.datagrams_per_call,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let clients: Vec<usize> = if smoke { vec![120] } else { vec![40, 80, 120] };

    println!(
        "=== Many-peer small-record mix ({} B payloads, {} Mbps/peer, single-record \
         datagrams): syscall-batched transport comparison ===\n    batched EndBox SGX[NOP] \
         stack, 4 worker shards, 2 RX shards, recv_many bulk sizes {:?}\n",
        RX_MIX_PAYLOAD,
        RX_MIX_PER_CLIENT_BPS / 1_000_000,
        WIRE_BULK_SIZES,
    );
    let points = fig_syscall_batch(&clients);
    print_points(&points, &clients);

    println!("\nmeasured syscall amortisation (datagrams per socket call):");
    for bulk in WIRE_BULK_SIZES {
        let p = points.iter().find(|p| p.bulk == bulk).unwrap();
        println!("  bulk {bulk:>3}: {:.2}", p.datagrams_per_call);
    }

    let last = *clients.last().unwrap();
    let at = |bulk: usize| {
        points
            .iter()
            .find(|p| p.bulk == bulk && p.clients == last)
            .unwrap()
            .gbps
    };
    let (per, bulk32) = (at(1), at(32));
    println!(
        "\nbulk-32 win at {last} peers: {:.2}x (per-datagram {per:.2} -> bulk-32 \
         {bulk32:.2} Gbps)",
        bulk32 / per,
    );
    assert!(
        bulk32 >= 1.5 * per,
        "bulk-32 transport win regressed below 1.5x: {:.2}x",
        bulk32 / per
    );

    let json = wire_json(&points);
    std::fs::write("BENCH_wire.json", &json).expect("write BENCH_wire.json");
    println!("\nwrote BENCH_wire.json ({} rows)", points.len());
}
