//! Fig. 9: average maximum throughput of the NOP, LB, FW, IDPS and DDoS
//! use cases for OpenVPN+Click and EndBox (1 500-byte packets).
//!
//! Paper reference values (Mbps):
//! OpenVPN+Click: NOP 764, LB 761, FW 747, IDPS 692, DDoS 662
//! EndBox SGX:    NOP 530, LB 496, FW 527, IDPS 422, DDoS 414

use endbox::eval::throughput::fig9;

fn main() {
    println!("=== Fig. 9: use-case throughput at 1500 B (single client) ===\n");
    println!("{:<28}{:>12}", "setup", "Mbps");
    for p in fig9() {
        println!("{:<28}{:>12.0}", p.deployment, p.mbps);
    }
    println!("\nPaper: Fig. 9 (values in the header comment).");
}
