//! Event-driven vs call-driven socket front-end (beyond the paper).
//!
//! PR 4 sharded the RX framing stage, but ingress was still *call-driven*:
//! someone has to hand `receive_datagrams` its batches, and a real server
//! doing one blocking receive per wire datagram pays a full event-loop
//! wakeup per datagram. The `AsyncFrontEnd` hangs one readiness poll
//! group per RX shard off the per-shard request channels: readable
//! sockets drain into owned-datagram batches, so the wakeup cost
//! amortises over however many datagrams each wakeup finds ready. Charges
//! *and* the measured amortisation ratio come from the real stack with
//! the front-end in the loop; the timing layer prices the wakeups on the
//! RX lanes (`ScalabilityConfig::async_front_end`).
//!
//! Emits the grid as machine-readable `BENCH_async.json`. Pass `--smoke`
//! for a CI-sized run (fewer client counts).

use endbox::eval::scalability::{
    fig_async_ingress, AsyncIngressPoint, RX_MIX_PAYLOAD, RX_MIX_PER_CLIENT_BPS,
};

fn print_points(points: &[AsyncIngressPoint], clients: &[usize]) {
    print!("{:<26}", "front-end \\ clients");
    for n in clients {
        print!("{n:>8}");
    }
    println!();
    for mode in ["call-driven", "event-driven"] {
        print!("{:<26}", format!("{mode} [Mpps]"));
        for n in clients {
            let p = points
                .iter()
                .find(|p| p.mode == mode && p.clients == *n)
                .unwrap();
            print!("{:>8.3}", p.mpps);
        }
        println!();
        print!("{:<26}", "  server CPU [%]");
        for n in clients {
            let p = points
                .iter()
                .find(|p| p.mode == mode && p.clients == *n)
                .unwrap();
            print!("{:>8.0}", p.server_cpu * 100.0);
        }
        println!();
    }
}

/// Hand-rolled JSON (no serde in the offline build environment).
fn async_json(points: &[AsyncIngressPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"mode\": \"{}\", \"clients\": {}, \"rx_shards\": {}, \"workers\": {}, \
             \"gbps\": {:.4}, \"mpps\": {:.5}, \"server_cpu\": {:.4}, \
             \"wakeups_per_packet\": {:.4}}}{}\n",
            p.mode,
            p.clients,
            p.rx_shards,
            p.workers,
            p.gbps,
            p.mpps,
            p.server_cpu,
            p.wakeups_per_packet,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let clients: Vec<usize> = if smoke {
        vec![40, 120]
    } else {
        vec![20, 40, 60, 80, 100, 120]
    };

    println!(
        "=== Many-peer small-record mix ({} B payloads, {} Mbps/peer, single-record \
         datagrams): socket front-end comparison ===\n    batched EndBox SGX[NOP] stack, \
         4 worker shards, 4 RX shards (one poll group each)\n",
        RX_MIX_PAYLOAD,
        RX_MIX_PER_CLIENT_BPS / 1_000_000,
    );
    let points = fig_async_ingress(&clients);
    print_points(&points, &clients);

    let amortisation = points
        .iter()
        .find(|p| p.mode == "event-driven")
        .unwrap()
        .wakeups_per_packet;
    println!("\nmeasured event-loop amortisation: {amortisation:.3} wakeups/datagram");

    let last = *clients.last().unwrap();
    let at = |mode: &str| {
        points
            .iter()
            .find(|p| p.mode == mode && p.clients == last)
            .unwrap()
            .gbps
    };
    let (call, event) = (at("call-driven"), at("event-driven"));
    println!(
        "event-driven win at {last} peers: {:.2}x (call-driven {call:.2} -> \
         event-driven {event:.2} Gbps)",
        event / call,
    );
    assert!(
        event >= 1.3 * call,
        "event-driven front-end win regressed below 1.3x: {:.2}x",
        event / call
    );

    let json = async_json(&points);
    std::fs::write("BENCH_async.json", &json).expect("write BENCH_async.json");
    println!("\nwrote BENCH_async.json ({} rows)", points.len());
}
