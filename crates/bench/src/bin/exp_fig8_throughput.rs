//! Fig. 8: average maximum throughput of different set-ups for packet
//! sizes 256 bytes to 64 kilobytes.
//!
//! Paper reference values (Mbps):
//! vanilla OpenVPN  152 / 642 / 813 / 1541 / 2674 / 3168
//! OpenVPN+Click    146 / 617 / 764 / 1288 / 1888 / 2132
//! EndBox SIM       132 / 586 / 720 / 1514 / 2325 / 2813
//! EndBox SGX        92 / 401 / 530 / 1044 / 1987 / 2659

use endbox::eval::throughput::{batch_size, fig8, fig8_batched, fig8_sizes, ThroughputPoint};

fn print_table(points: &[ThroughputPoint]) {
    let mut current = String::new();
    for p in points {
        if p.deployment != current {
            if !current.is_empty() {
                println!();
            }
            print!("{:<28}", p.deployment);
            current = p.deployment.clone();
        }
        print!("{:>9.0}", p.mbps);
    }
    println!();
}

fn main() {
    println!("=== Fig. 8: throughput vs packet size (single client) ===\n");
    print!("{:<28}", "setup \\ size [B]");
    for s in fig8_sizes() {
        print!("{s:>9}");
    }
    println!();
    print_table(&fig8());
    println!(
        "\n--- batched datapath ({} packets per record/enclave transition; \
         set ENDBOX_BATCH_SIZE to override) ---",
        batch_size()
    );
    print_table(&fig8_batched());
    println!("\nAll values in Mbps. Paper: Fig. 8 (values above in the header comment).");
    println!("Batched rows: this repo's PacketBatch datapath, beyond the paper's per-packet path.");
}
