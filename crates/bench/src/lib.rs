//! Experiment binaries and microbenchmarks for the EndBox reproduction.
//!
//! The library itself is empty; everything lives in `src/bin/` (one
//! `exp_*` binary per figure/table of the paper's §V evaluation, plus
//! the scaling experiments this repo adds on top) and in
//! `benches/microbench.rs` (Criterion groups: `batch_vs_single`,
//! `shard_scaling`). Run an experiment with
//! `cargo run --release -p endbox-bench --bin <name>`; the scaling
//! binaries (`exp_fig10_scalability`, `exp_heavytail_dispatch`,
//! `exp_rx_scaling`, `exp_async_ingress`) accept `--smoke` for a
//! CI-sized run and emit machine-readable `BENCH_*.json` artifacts that
//! CI validates and diffs. The full catalogue — what each binary
//! measures and which artifact it writes — is tabulated in the
//! repository `README.md`.
