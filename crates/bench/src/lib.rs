//! Experiment binaries and benchmarks for the EndBox reproduction; see `src/bin/`.
