//! Criterion microbenchmarks: real wall-clock performance of the
//! substrates (complementing the simulated-time experiment binaries).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use endbox_click::element::ElementEnv;
use endbox_click::Router;
use endbox_crypto::aes::Aes128;
use endbox_crypto::hmac::hmac_sha256;
use endbox_crypto::modes::{cbc_decrypt, cbc_encrypt};
use endbox_crypto::schnorr::SigningKey;
use endbox_crypto::sha256::sha256;
use endbox_crypto::x25519;
use endbox_netsim::cost::{CostModel, CycleMeter};
use endbox_netsim::Packet;
use endbox_netsim::{BufferPool, PacketBatch};
use endbox_sgx::EnclaveBuilder;
use endbox_snort::community;
use endbox_snort::engine::{CompiledRules, PacketView};
use endbox_vpn::channel::{CipherSuite, DataChannel, SessionKeys};
use endbox_vpn::proto::Opcode;
use rand::SeedableRng;
use std::net::Ipv4Addr;

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let data = vec![0xa5u8; 1500];

    g.throughput(Throughput::Bytes(1500));
    g.bench_function("sha256_1500B", |b| b.iter(|| sha256(&data)));
    g.bench_function("hmac_sha256_1500B", |b| {
        b.iter(|| hmac_sha256(b"key", &data))
    });

    let aes = Aes128::new(&[7u8; 16]);
    let iv = [9u8; 16];
    g.bench_function("aes128_cbc_encrypt_1500B", |b| {
        b.iter(|| cbc_encrypt(&aes, &iv, &data))
    });
    let ct = cbc_encrypt(&aes, &iv, &data);
    g.bench_function("aes128_cbc_decrypt_1500B", |b| {
        b.iter(|| cbc_decrypt(&aes, &iv, &ct))
    });
    g.finish();

    let mut g = c.benchmark_group("asymmetric");
    g.bench_function("x25519_shared_secret", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let (sk, _) = x25519::keypair(&mut rng);
        let (_, pk) = x25519::keypair(&mut rng);
        b.iter(|| x25519::shared_secret(&sk, &pk))
    });
    g.bench_function("schnorr_sign", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let key = SigningKey::generate(&mut rng);
        b.iter(|| key.sign(b"benchmark message", &mut rng))
    });
    g.bench_function("schnorr_verify", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let key = SigningKey::generate(&mut rng);
        let sig = key.sign(b"benchmark message", &mut rng);
        let vk = key.verifying_key();
        b.iter(|| vk.verify(b"benchmark message", &sig))
    });
    g.finish();
}

fn bench_ids(c: &mut Criterion) {
    let mut g = c.benchmark_group("ids");
    let rules = community::paper_rules();
    let compiled = CompiledRules::compile(&rules);
    let payload: Vec<u8> = (0..1460).map(|i| b'a' + (i % 26) as u8).collect();
    let view = PacketView {
        src: Ipv4Addr::new(10, 0, 0, 1),
        dst: Ipv4Addr::new(10, 0, 1, 1),
        protocol: 6,
        src_port: Some(40000),
        dst_port: Some(80),
        payload: &payload,
    };
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("scan_377_rules_1460B", |b| b.iter(|| compiled.scan(&view)));
    g.bench_function("compile_377_rules", |b| {
        b.iter(|| CompiledRules::compile(&rules))
    });
    g.finish();
}

fn bench_click(c: &mut Criterion) {
    let mut g = c.benchmark_group("click");
    let pkt = Packet::tcp(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 1, 1),
        40000,
        5001,
        0,
        &[b'x'; 1460],
    );

    for (name, config) in [
        ("nop", endbox::use_cases::UseCase::Nop.click_config()),
        (
            "firewall",
            endbox::use_cases::UseCase::Firewall.click_config(),
        ),
        ("idps", endbox::use_cases::UseCase::Idps.click_config()),
    ] {
        let mut router = Router::from_config(&config, ElementEnv::default()).unwrap();
        g.bench_function(format!("process_{name}_1460B"), |b| {
            b.iter_batched(|| pkt.clone(), |p| router.process(p), BatchSize::SmallInput)
        });
    }

    // Table II companion: real wall-clock hot-swap of a minimal config.
    let mut router = Router::from_config(
        "FromDevice(t) -> c :: Counter -> ToDevice(t);",
        ElementEnv::default(),
    )
    .unwrap();
    g.bench_function("hotswap_minimal_config", |b| {
        b.iter(|| {
            router
                .hot_swap("FromDevice(t) -> c :: Counter -> ToDevice(t);")
                .unwrap()
        })
    });
    g.finish();
}

/// The tentpole measurement: N packets pushed one at a time vs as one
/// `PacketBatch`, through the router and through the VPN data channel,
/// plus pooled vs plain packet construction. Demonstrates (rather than
/// asserts) the fewer-allocations / lower per-packet-cost claim.
fn bench_batch_vs_single(c: &mut Criterion) {
    const BATCH: usize = 32;
    let mut g = c.benchmark_group("batch_vs_single");
    g.throughput(Throughput::Elements(BATCH as u64));

    let mk_packet = |i: u32| {
        Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            40000,
            5001,
            i,
            &[b'x'; 1460],
        )
    };

    // Router: firewall use case, 32 packets per iteration.
    let config = endbox::use_cases::UseCase::Firewall.click_config();
    let mut router = Router::from_config(&config, ElementEnv::default()).unwrap();
    g.bench_function("router_single_32pkts", |b| {
        b.iter_batched(
            || (0..BATCH as u32).map(mk_packet).collect::<Vec<_>>(),
            |pkts| {
                for p in pkts {
                    router.process(p);
                }
            },
            BatchSize::SmallInput,
        )
    });
    let mut router = Router::from_config(&config, ElementEnv::default()).unwrap();
    g.bench_function("router_batch_32pkts", |b| {
        b.iter_batched(
            || (0..BATCH as u32).map(mk_packet).collect::<PacketBatch>(),
            |batch| router.process_batch(batch),
            BatchSize::SmallInput,
        )
    });

    // VPN channel: 32 records vs 1 batched record.
    let keys = SessionKeys::derive(&[7u8; 32], &[1u8; 32], &[2u8; 32]);
    let cost = CostModel::calibrated();
    let payloads = vec![vec![0xabu8; 1460]; BATCH];
    let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
    let mut chan = DataChannel::client(
        &keys,
        CipherSuite::Aes128CbcHmac,
        CycleMeter::new(),
        cost.clone(),
    );
    g.bench_function("vpn_seal_single_32x1460B", |b| {
        b.iter(|| {
            for p in &refs {
                chan.seal(Opcode::Data, 1, p);
            }
        })
    });
    let mut chan = DataChannel::client(
        &keys,
        CipherSuite::Aes128CbcHmac,
        CycleMeter::new(),
        cost.clone(),
    );
    g.bench_function("vpn_seal_batch_32x1460B", |b| {
        b.iter(|| chan.seal_batch(1, &refs))
    });

    // Packet construction: fresh heap allocation vs pool recycling.
    g.bench_function("packet_build_fresh_32", |b| {
        b.iter(|| (0..BATCH as u32).map(mk_packet).collect::<Vec<_>>())
    });
    let pool = BufferPool::new();
    g.bench_function("packet_build_pooled_32", |b| {
        b.iter(|| {
            (0..BATCH as u32)
                .map(|i| {
                    Packet::tcp_in(
                        &pool,
                        Ipv4Addr::new(10, 0, 0, 1),
                        Ipv4Addr::new(10, 0, 1, 1),
                        40000,
                        5001,
                        i,
                        &[b'x'; 1460],
                    )
                })
                .collect::<Vec<_>>()
        })
    });
    let stats = pool.stats();
    println!(
        "  [pool] fresh_allocs={} reused={} (reuse ratio {:.1}%)",
        stats.fresh_allocs,
        stats.reused,
        100.0 * stats.reused as f64 / (stats.reused + stats.fresh_allocs).max(1) as f64
    );
    g.finish();
}

/// The sharded-server measurement: a real [`ShardedEndBoxServer`] with
/// 1/2/4/8 worker threads receives one multi-client round of batched
/// records (8 clients x 16 packets x 1460 B). The timed routine is the
/// server-side dispatch only — client-side sealing happens in the
/// (untimed) setup — so the numbers show the wall-clock win of running
/// record decryption/authentication on parallel shard workers.
fn bench_shard_scaling(c: &mut Criterion) {
    use endbox::scenario::Scenario;
    const CLIENTS: usize = 8;
    const BATCH: usize = 16;

    let mut g = c.benchmark_group("shard_scaling");
    g.throughput(Throughput::Elements((CLIENTS * BATCH) as u64));
    for workers in [1usize, 2, 4, 8] {
        let mut scenario = Scenario::enterprise(CLIENTS, endbox::use_cases::UseCase::Nop)
            .build_sharded(workers)
            .unwrap();
        let (clients, server) = (&mut scenario.clients, &mut scenario.server);
        g.bench_function(
            format!("recv_{CLIENTS}clients_x{BATCH}pkts_{workers}workers"),
            |b| {
                b.iter_batched(
                    || {
                        // Fresh sealed batches per iteration (replay
                        // protection forbids re-sending records).
                        let mut datagrams: Vec<(u64, Vec<u8>)> = Vec::new();
                        for (idx, client) in clients.iter_mut().enumerate() {
                            let packets: Vec<Packet> = (0..BATCH as u32)
                                .map(|i| {
                                    Packet::tcp(
                                        Scenario::client_addr(idx),
                                        Scenario::network_addr(),
                                        40_000 + idx as u16,
                                        5001,
                                        i,
                                        &[b'x'; 1460],
                                    )
                                })
                                .collect();
                            for d in client.send_batch(packets).unwrap() {
                                datagrams.push((idx as u64, d));
                            }
                        }
                        datagrams
                    },
                    |datagrams| {
                        let results = server.receive_datagrams(datagrams);
                        assert!(results.iter().all(Result::is_ok));
                        results
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    g.finish();
}

fn bench_vpn(c: &mut Criterion) {
    let mut g = c.benchmark_group("vpn");
    let keys = SessionKeys::derive(&[7u8; 32], &[1u8; 32], &[2u8; 32]);
    let cost = CostModel::calibrated();
    let mut client = DataChannel::client(
        &keys,
        CipherSuite::Aes128CbcHmac,
        CycleMeter::new(),
        cost.clone(),
    );
    let mut server = DataChannel::server(
        &keys,
        CipherSuite::Aes128CbcHmac,
        CycleMeter::new(),
        cost.clone(),
    );
    let payload = vec![0xabu8; 1500];

    g.throughput(Throughput::Bytes(1500));
    g.bench_function("seal_1500B", |b| {
        b.iter(|| client.seal(Opcode::Data, 1, &payload))
    });
    g.bench_function("seal_open_1500B", |b| {
        b.iter(|| {
            let rec = client.seal(Opcode::Data, 1, &payload);
            server.open(&rec).unwrap()
        })
    });
    g.finish();
}

fn bench_enclave(c: &mut Criterion) {
    let mut g = c.benchmark_group("enclave");
    let mut enclave = EnclaveBuilder::new(b"bench-enclave")
        .declare_ecalls(["noop"])
        .build(|_| 0u64);
    g.bench_function("ecall_dispatch_overhead", |b| {
        b.iter(|| enclave.ecall("noop", |s, _| *s += 1).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_crypto, bench_ids, bench_click, bench_batch_vs_single, bench_shard_scaling,
        bench_vpn, bench_enclave
}
criterion_main!(benches);
