//! A from-scratch implementation of the Click modular router (Kohler et
//! al., TOCS 2000) as used by EndBox to implement middlebox functions.
//!
//! EndBox chose Click because it "(i) is widely used; (ii) has many
//! existing elements ...; (iii) provides a configuration hot-swapping
//! mechanism; and (iv) is easily extensible" (§IV). This crate provides:
//!
//! * [`config`] — the Click configuration language (declarations,
//!   connection chains, ports, anonymous elements, comments).
//! * [`element`] — the element trait, processing context, and state
//!   export/import for hot-swapping.
//! * [`registry`] — maps class names to element factories.
//! * [`router`] — instantiates a configuration into an element graph,
//!   pushes packets through it, exposes read/write handlers, and
//!   implements **hot-swapping from in-memory configuration** (the EndBox
//!   adaptation: "we adapt the hot-swapping mechanism to work with
//!   configuration files stored in memory", §IV).
//! * [`elements`] — standard elements (`Counter`, `Classifier`,
//!   `IPFilter`, `RoundRobinSwitch`, ...) plus the paper's custom elements
//!   (`IDSMatcher`, `TrustedSplitter`, `UntrustedSplitter`, `TLSDecrypt`)
//!   and the modified `ToDevice` that signals packet verdicts to OpenVPN.
//!
//! # Example
//!
//! ```
//! use endbox_click::router::Router;
//! use endbox_click::element::ElementEnv;
//! use endbox_netsim::Packet;
//! use std::net::Ipv4Addr;
//!
//! let mut router = Router::from_config(
//!     "FromDevice(tun0) -> c :: Counter -> ToDevice(tun0);",
//!     ElementEnv::default(),
//! ).unwrap();
//! let pkt = Packet::udp(Ipv4Addr::new(10,0,0,1), Ipv4Addr::new(10,0,1,1), 1, 2, b"hi");
//! let out = router.process(pkt);
//! assert_eq!(out.emitted.len(), 1);
//! assert_eq!(router.read_handler("c", "count").as_deref(), Some("1"));
//! ```

pub mod config;
pub mod element;
pub mod elements;
pub mod error;
pub mod registry;
pub mod router;

pub use element::{Element, ElementContext, ElementEnv};
pub use error::ClickError;
pub use router::{Router, RouterOutput};
