//! Errors for configuration parsing and router construction.

use std::error::Error;
use std::fmt;

/// Errors raised while parsing configurations or building routers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClickError {
    /// Syntax error in the configuration text.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// A declared element class is not in the registry.
    UnknownClass(String),
    /// An element rejected its configuration arguments.
    Configure {
        /// Element name.
        element: String,
        /// Description.
        message: String,
    },
    /// A connection references an undeclared element or an out-of-range
    /// port.
    BadConnection(String),
    /// Duplicate element name.
    DuplicateName(String),
    /// A handler call failed (unknown handler or bad value).
    Handler(String),
}

impl fmt::Display for ClickError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClickError::Parse { line, message } => {
                write!(f, "config parse error at line {line}: {message}")
            }
            ClickError::UnknownClass(c) => write!(f, "unknown element class `{c}`"),
            ClickError::Configure { element, message } => {
                write!(f, "element `{element}` configuration error: {message}")
            }
            ClickError::BadConnection(msg) => write!(f, "bad connection: {msg}"),
            ClickError::DuplicateName(n) => write!(f, "duplicate element name `{n}`"),
            ClickError::Handler(msg) => write!(f, "handler error: {msg}"),
        }
    }
}

impl Error for ClickError {}
