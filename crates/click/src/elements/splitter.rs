//! Traffic-shaping splitters for the DDoS prevention use case (§V-B).
//!
//! `TrustedSplitter` "allows the shaping of traffic to a given bandwidth
//! in a trusted way: to reduce expensive calls to obtain trusted time, the
//! TrustedSplitter samples timestamps by issuing calls after a certain
//! configurable number of packets has been processed. This number is set
//! to 500,000 for our measurements. For OpenVPN+Click, we use a similar
//! Click element called UntrustedSplitter which obtains timestamps using
//! system calls."

use crate::element::{Element, ElementContext, ElementEnv, ElementState};
use endbox_netsim::time::SimTime;
use endbox_netsim::Packet;

/// Shared token-bucket logic.
#[derive(Debug)]
struct Shaper {
    rate_bps: u64,
    burst_bytes: f64,
    tokens: f64,
    last_sample: Option<SimTime>,
    sample_every: u64,
    packets_since_sample: u64,
    conformed: u64,
    exceeded: u64,
}

impl Shaper {
    fn new(rate_bps: u64, sample_every: u64, burst_bytes: Option<f64>) -> Self {
        // Default burst: 10 ms worth of traffic.
        let burst = burst_bytes.unwrap_or(rate_bps as f64 / 8.0 * 0.01);
        Shaper {
            rate_bps,
            burst_bytes: burst,
            tokens: burst,
            last_sample: None,
            sample_every,
            packets_since_sample: 0,
            conformed: 0,
            exceeded: 0,
        }
    }

    /// Returns true when the packet conforms to the configured rate.
    /// `read_time` is invoked when a timestamp sample is due; it should
    /// charge the appropriate cost (trusted vs. syscall).
    fn admit(&mut self, bytes: usize, read_time: impl FnOnce() -> SimTime) -> bool {
        self.packets_since_sample += 1;
        if self.last_sample.is_none() || self.packets_since_sample >= self.sample_every {
            let now = read_time();
            if let Some(last) = self.last_sample {
                let elapsed = (now - last).as_secs_f64();
                self.tokens =
                    (self.tokens + elapsed * self.rate_bps as f64 / 8.0).min(self.burst_bytes);
            }
            self.last_sample = Some(now);
            self.packets_since_sample = 0;
        }
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            self.conformed += 1;
            true
        } else {
            self.exceeded += 1;
            false
        }
    }

    fn export(&self) -> ElementState {
        vec![
            ("tokens".into(), format!("{}", self.tokens)),
            ("conformed".into(), self.conformed.to_string()),
            ("exceeded".into(), self.exceeded.to_string()),
        ]
    }

    fn import(&mut self, state: ElementState) {
        for (k, v) in state {
            match k.as_str() {
                "tokens" => self.tokens = v.parse().unwrap_or(self.burst_bytes),
                "conformed" => self.conformed = v.parse().unwrap_or(0),
                "exceeded" => self.exceeded = v.parse().unwrap_or(0),
                _ => {}
            }
        }
    }
}

fn parse_shaper_args(args: &[String], default_sample: u64) -> Result<Shaper, String> {
    let mut rate: Option<u64> = None;
    let mut sample = default_sample;
    let mut burst: Option<f64> = None;
    for arg in args {
        let mut toks = arg.split_whitespace();
        match (toks.next(), toks.next()) {
            (Some("RATE"), Some(v)) => {
                rate = Some(v.parse().map_err(|_| format!("bad RATE `{v}`"))?)
            }
            (Some("SAMPLE"), Some(v)) => {
                sample = v.parse().map_err(|_| format!("bad SAMPLE `{v}`"))?;
                if sample == 0 {
                    return Err("SAMPLE must be >= 1".into());
                }
            }
            (Some("BURST"), Some(v)) => {
                burst = Some(v.parse().map_err(|_| format!("bad BURST `{v}`"))?)
            }
            (Some(other), _) => return Err(format!("unknown splitter option `{other}`")),
            _ => return Err(format!("malformed option `{arg}`")),
        }
    }
    let rate = rate.ok_or("splitter requires RATE <bits/s>")?;
    if rate == 0 {
        return Err("RATE must be > 0".into());
    }
    Ok(Shaper::new(rate, sample, burst))
}

/// Rate limiter using SGX trusted time with sampled reads (paper default:
/// one read per 500 000 packets). Conforming packets exit output 0,
/// excess packets exit output 1.
#[derive(Debug)]
pub struct TrustedSplitter {
    shaper: Shaper,
}

impl TrustedSplitter {
    /// The paper's sampling interval.
    pub const PAPER_SAMPLE_INTERVAL: u64 = 500_000;

    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        Ok(Box::new(TrustedSplitter {
            shaper: parse_shaper_args(args, Self::PAPER_SAMPLE_INTERVAL)?,
        }))
    }
}

impl Element for TrustedSplitter {
    fn class_name(&self) -> &'static str {
        "TrustedSplitter"
    }

    fn n_outputs(&self) -> usize {
        2
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        ctx.env.meter.add(ctx.env.cost.splitter_per_packet);
        let env = ctx.env;
        let ok = self.shaper.admit(pkt.len(), || {
            // Trusted time: expensive platform-service call.
            env.meter.add(env.cost.trusted_time_read);
            env.clock.now()
        });
        ctx.output(if ok { 0 } else { 1 }, pkt);
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "conformed" => Some(self.shaper.conformed.to_string()),
            "exceeded" => Some(self.shaper.exceeded.to_string()),
            "rate" => Some(self.shaper.rate_bps.to_string()),
            _ => None,
        }
    }

    fn export_state(&self) -> Option<ElementState> {
        Some(self.shaper.export())
    }

    fn import_state(&mut self, state: ElementState) {
        self.shaper.import(state);
    }
}

/// Rate limiter reading time via system calls — the server-side
/// (OpenVPN+Click) counterpart. Samples every packet by default.
#[derive(Debug)]
pub struct UntrustedSplitter {
    shaper: Shaper,
}

impl UntrustedSplitter {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        Ok(Box::new(UntrustedSplitter {
            shaper: parse_shaper_args(args, 1)?,
        }))
    }
}

impl Element for UntrustedSplitter {
    fn class_name(&self) -> &'static str {
        "UntrustedSplitter"
    }

    fn n_outputs(&self) -> usize {
        2
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        ctx.env.meter.add(ctx.env.cost.splitter_per_packet);
        let env = ctx.env;
        let ok = self.shaper.admit(pkt.len(), || {
            env.meter.add(env.cost.syscall_time_read);
            env.clock.now()
        });
        ctx.output(if ok { 0 } else { 1 }, pkt);
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "conformed" => Some(self.shaper.conformed.to_string()),
            "exceeded" => Some(self.shaper.exceeded.to_string()),
            _ => None,
        }
    }

    fn export_state(&self) -> Option<ElementState> {
        Some(self.shaper.export())
    }

    fn import_state(&mut self, state: ElementState) {
        self.shaper.import(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementEnv;
    use endbox_netsim::time::SimDuration;
    use std::net::Ipv4Addr;

    fn pkt(len: usize) -> Packet {
        Packet::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            1,
            2,
            &vec![b'a'; len],
        )
    }

    fn run(elem: &mut dyn Element, p: Packet, env: &ElementEnv) -> usize {
        let mut outputs = Vec::new();
        let mut emitted = Vec::new();
        let mut ctx = ElementContext::new(&mut outputs, &mut emitted, env);
        elem.process(0, p, &mut ctx);
        outputs[0].0
    }

    #[test]
    fn burst_then_throttle() {
        let env = ElementEnv::default();
        // 800 kbps -> 1000 bytes of burst (10 ms default burst).
        let mut s =
            TrustedSplitter::factory(&["RATE 800000".into(), "SAMPLE 1".into()], &env).unwrap();
        // A 128-byte packet fits the burst; seven more drain it; the ninth
        // exceeds (9 * 128 = 1152 > 1000).
        for i in 0..7 {
            assert_eq!(run(s.as_mut(), pkt(100), &env), 0, "packet {i} conforms");
        }
        assert_eq!(run(s.as_mut(), pkt(100), &env), 1, "burst exhausted");
        assert_eq!(s.read_handler("exceeded").as_deref(), Some("1"));
        assert_eq!(s.read_handler("conformed").as_deref(), Some("7"));
    }

    #[test]
    fn refills_over_time() {
        let env = ElementEnv::default();
        // 8 Mbps -> 10 KB burst, 1 KB per ms refill.
        let mut s = UntrustedSplitter::factory(&["RATE 8000000".into()], &env).unwrap();
        // Drain the burst.
        for _ in 0..9 {
            run(s.as_mut(), pkt(1100), &env);
        }
        assert_eq!(run(s.as_mut(), pkt(1100), &env), 1, "bucket drained");
        // Advance 5 ms -> ~5 KB refilled.
        env.clock.advance(SimDuration::from_millis(5));
        assert_eq!(
            run(s.as_mut(), pkt(1100), &env),
            0,
            "refilled after time passes"
        );
    }

    #[test]
    fn trusted_sampling_reduces_time_reads() {
        let env = ElementEnv::default();
        let mut s =
            TrustedSplitter::factory(&["RATE 1000000000".into(), "SAMPLE 100".into()], &env)
                .unwrap();
        env.meter.take();
        for _ in 0..100 {
            run(s.as_mut(), pkt(100), &env);
        }
        let cost = env.cost.clone();
        let charged = env.meter.read();
        // 100 packets: 100x splitter cost + exactly 1 trusted read (the
        // initial sample; the counter then sits at 99 < SAMPLE).
        let expected = 100 * cost.splitter_per_packet + cost.trusted_time_read;
        assert_eq!(charged, expected);
        // The 101st packet triggers the second sampled read.
        run(s.as_mut(), pkt(100), &env);
        assert_eq!(
            env.meter.read(),
            expected + cost.splitter_per_packet + cost.trusted_time_read
        );
    }

    #[test]
    fn untrusted_reads_time_every_packet() {
        let env = ElementEnv::default();
        let mut s = UntrustedSplitter::factory(&["RATE 1000000000".into()], &env).unwrap();
        env.meter.take();
        for _ in 0..10 {
            run(s.as_mut(), pkt(100), &env);
        }
        let cost = env.cost.clone();
        assert_eq!(
            env.meter.read(),
            10 * (cost.splitter_per_packet + cost.syscall_time_read)
        );
    }

    #[test]
    fn state_transfer_preserves_counters() {
        let env = ElementEnv::default();
        let mut a =
            TrustedSplitter::factory(&["RATE 1000000".into(), "SAMPLE 1".into()], &env).unwrap();
        run(a.as_mut(), pkt(100), &env);
        let st = a.export_state().unwrap();
        let mut b =
            TrustedSplitter::factory(&["RATE 1000000".into(), "SAMPLE 1".into()], &env).unwrap();
        b.import_state(st);
        assert_eq!(b.read_handler("conformed").as_deref(), Some("1"));
    }

    #[test]
    fn factory_validates() {
        let env = ElementEnv::default();
        assert!(TrustedSplitter::factory(&[], &env).is_err()); // no RATE
        assert!(TrustedSplitter::factory(&["RATE 0".into()], &env).is_err());
        assert!(TrustedSplitter::factory(&["RATE x".into()], &env).is_err());
        assert!(TrustedSplitter::factory(&["SAMPLE 0".into(), "RATE 5".into()], &env).is_err());
        assert!(UntrustedSplitter::factory(&["BOGUS 1".into()], &env).is_err());
    }
}
