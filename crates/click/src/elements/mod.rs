//! Element implementations: Click standard elements plus EndBox's custom
//! elements (§IV: "It uses elements shipped with Click to implement
//! middlebox functions and extends Click by adding custom elements for an
//! IDPS function, to decrypt application-level traffic, and to perform
//! traffic shaping using a trusted time source provided by SGX").

mod basic;
mod classify;
mod ids;
mod ipfilter;
mod nf;
mod rewrite;
mod splitter;
mod tlsdecrypt;

pub use basic::{
    AverageCounter, CheckPaint, Counter, Discard, FromDevice, Paint, Queue, SetTos, Tee, ToDevice,
};
pub use classify::{CheckIpHeader, Classifier, IpClassifier, RoundRobinSwitch};
pub use ids::IdsMatcher;
pub use ipfilter::{evaluation_rules, IpFilter};
pub use nf::{ConnTracker, StatefulNat, TokenBucket};
pub use rewrite::{IpAddrRewriter, Meter};
pub use splitter::{TrustedSplitter, UntrustedSplitter};
pub use tlsdecrypt::{open_record, seal_record, TlsDecrypt};

use crate::registry::ElementRegistry;

/// Registers every built-in element class.
pub fn register_all(r: &mut ElementRegistry) {
    r.register("FromDevice", basic::FromDevice::factory);
    r.register("ToDevice", basic::ToDevice::factory);
    r.register("Discard", basic::Discard::factory);
    r.register("Counter", basic::Counter::factory);
    r.register("Tee", basic::Tee::factory);
    r.register("Queue", basic::Queue::factory);
    r.register("Paint", basic::Paint::factory);
    r.register("CheckPaint", basic::CheckPaint::factory);
    r.register("SetTOS", basic::SetTos::factory);
    r.register("AverageCounter", basic::AverageCounter::factory);
    r.register("Classifier", classify::Classifier::factory);
    r.register("IPClassifier", classify::IpClassifier::factory);
    r.register("CheckIPHeader", classify::CheckIpHeader::factory);
    r.register("RoundRobinSwitch", classify::RoundRobinSwitch::factory);
    r.register("IPFilter", ipfilter::IpFilter::factory);
    r.register("IPAddrRewriter", rewrite::IpAddrRewriter::factory);
    r.register("Meter", rewrite::Meter::factory);
    r.register("IPRewriter", nf::StatefulNat::factory);
    r.register("TokenBucket", nf::TokenBucket::factory);
    r.register("ConnTracker", nf::ConnTracker::factory);
    r.register("IDSMatcher", ids::IdsMatcher::factory);
    r.register("TrustedSplitter", splitter::TrustedSplitter::factory);
    r.register("UntrustedSplitter", splitter::UntrustedSplitter::factory);
    r.register("TLSDecrypt", tlsdecrypt::TlsDecrypt::factory);
}
