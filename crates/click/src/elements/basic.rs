//! Basic elements: device endpoints, counters, fan-out, annotations.

use crate::element::{Element, ElementContext, ElementEnv, ElementState};
use crate::error::ClickError;
use endbox_netsim::Packet;

/// Entry point of a router: receives packets handed over by the host
/// (OpenVPN in EndBox, a tap device in vanilla Click).
#[derive(Debug)]
pub struct FromDevice {
    device: String,
}

impl FromDevice {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        let device = args.first().cloned().unwrap_or_else(|| "tun0".to_string());
        if args.len() > 1 {
            return Err("FromDevice takes at most one argument (device name)".into());
        }
        Ok(Box::new(FromDevice { device }))
    }

    /// The configured device name.
    pub fn device(&self) -> &str {
        &self.device
    }
}

impl Element for FromDevice {
    fn class_name(&self) -> &'static str {
        "FromDevice"
    }

    fn n_inputs(&self) -> usize {
        1 // fed by the router's entry path
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        if ctx.env.device_io {
            // Vanilla Click owns the device: poll + read per packet.
            ctx.env.meter.add(ctx.env.cost.device_io_per_packet);
        }
        ctx.output(0, pkt);
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        (name == "device").then(|| self.device.clone())
    }
}

/// Exit point: emits packets out of the router. EndBox modification: "the
/// ToDevice element is modified to signal OpenVPN when a packet was
/// accepted or rejected" (§IV) — emission marks the packet accepted.
#[derive(Debug)]
pub struct ToDevice {
    device: String,
    emitted: u64,
}

impl ToDevice {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        let device = args.first().cloned().unwrap_or_else(|| "tun0".to_string());
        if args.len() > 1 {
            return Err("ToDevice takes at most one argument (device name)".into());
        }
        Ok(Box::new(ToDevice { device, emitted: 0 }))
    }
}

impl Element for ToDevice {
    fn class_name(&self) -> &'static str {
        "ToDevice"
    }

    fn n_outputs(&self) -> usize {
        0
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        if ctx.env.device_io {
            ctx.env.meter.add(ctx.env.cost.device_io_per_packet);
        }
        self.emitted += 1;
        ctx.emit(pkt);
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "device" => Some(self.device.clone()),
            "emitted" => Some(self.emitted.to_string()),
            _ => None,
        }
    }
}

/// Swallows packets (implicit reject).
#[derive(Debug, Default)]
pub struct Discard {
    dropped: u64,
}

impl Discard {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        if !args.is_empty() {
            return Err("Discard takes no arguments".into());
        }
        Ok(Box::<Discard>::default())
    }
}

impl Element for Discard {
    fn class_name(&self) -> &'static str {
        "Discard"
    }

    fn n_outputs(&self) -> usize {
        0
    }

    fn process(&mut self, _port: usize, _pkt: Packet, _ctx: &mut ElementContext<'_>) {
        self.dropped += 1;
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        (name == "count").then(|| self.dropped.to_string())
    }
}

/// Counts packets and bytes; state survives hot-swaps.
#[derive(Debug, Default)]
pub struct Counter {
    count: u64,
    byte_count: u64,
}

impl Counter {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        if !args.is_empty() {
            return Err("Counter takes no arguments".into());
        }
        Ok(Box::<Counter>::default())
    }
}

impl Element for Counter {
    fn class_name(&self) -> &'static str {
        "Counter"
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        self.count += 1;
        self.byte_count += pkt.len() as u64;
        ctx.output(0, pkt);
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "count" => Some(self.count.to_string()),
            "byte_count" => Some(self.byte_count.to_string()),
            _ => None,
        }
    }

    fn write_handler(&mut self, name: &str, _value: &str) -> Result<(), ClickError> {
        if name == "reset" {
            self.count = 0;
            self.byte_count = 0;
            Ok(())
        } else {
            Err(ClickError::Handler(format!(
                "Counter has no write handler `{name}`"
            )))
        }
    }

    fn export_state(&self) -> Option<ElementState> {
        Some(vec![
            ("count".into(), self.count.to_string()),
            ("byte_count".into(), self.byte_count.to_string()),
        ])
    }

    fn import_state(&mut self, state: ElementState) {
        for (k, v) in state {
            match k.as_str() {
                "count" => self.count = v.parse().unwrap_or(0),
                "byte_count" => self.byte_count = v.parse().unwrap_or(0),
                _ => {}
            }
        }
    }
}

/// Duplicates each packet to all outputs.
#[derive(Debug)]
pub struct Tee {
    n: usize,
}

impl Tee {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        let n = match args {
            [] => 2,
            [n] => n
                .parse()
                .map_err(|_| format!("bad Tee output count `{n}`"))?,
            _ => return Err("Tee takes at most one argument".into()),
        };
        if n == 0 {
            return Err("Tee needs at least one output".into());
        }
        Ok(Box::new(Tee { n }))
    }
}

impl Element for Tee {
    fn class_name(&self) -> &'static str {
        "Tee"
    }

    fn n_outputs(&self) -> usize {
        self.n
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        for port in 1..self.n {
            ctx.output(port, pkt.clone());
        }
        ctx.output(0, pkt);
    }
}

/// A FIFO stage. In this push-mode reproduction the queue forwards
/// immediately but still enforces its capacity against bursts delivered
/// within one router invocation (packets beyond capacity are dropped and
/// counted).
#[derive(Debug)]
pub struct Queue {
    capacity: usize,
    drops: u64,
    in_flight: usize,
}

impl Queue {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        let capacity = match args {
            [] => 1000,
            [c] => c.parse().map_err(|_| format!("bad Queue capacity `{c}`"))?,
            _ => return Err("Queue takes at most one argument".into()),
        };
        Ok(Box::new(Queue {
            capacity,
            drops: 0,
            in_flight: 0,
        }))
    }
}

impl Element for Queue {
    fn class_name(&self) -> &'static str {
        "Queue"
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        if self.in_flight >= self.capacity {
            self.drops += 1;
            return;
        }
        // Forward immediately (push-to-pull conversion is a no-op here).
        ctx.output(0, pkt);
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "capacity" => Some(self.capacity.to_string()),
            "drops" => Some(self.drops.to_string()),
            _ => None,
        }
    }
}

/// Sets the paint annotation.
#[derive(Debug)]
pub struct Paint {
    color: u8,
}

impl Paint {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        match args {
            [c] => Ok(Box::new(Paint {
                color: parse_u8(c).ok_or_else(|| format!("bad paint color `{c}`"))?,
            })),
            _ => Err("Paint takes exactly one argument (color)".into()),
        }
    }
}

impl Element for Paint {
    fn class_name(&self) -> &'static str {
        "Paint"
    }

    fn process(&mut self, _port: usize, mut pkt: Packet, ctx: &mut ElementContext<'_>) {
        pkt.meta.paint = Some(self.color);
        ctx.output(0, pkt);
    }
}

/// Forwards packets painted `color` to output 0, others to output 1.
#[derive(Debug)]
pub struct CheckPaint {
    color: u8,
}

impl CheckPaint {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        match args {
            [c] => Ok(Box::new(CheckPaint {
                color: parse_u8(c).ok_or_else(|| format!("bad paint color `{c}`"))?,
            })),
            _ => Err("CheckPaint takes exactly one argument (color)".into()),
        }
    }
}

impl Element for CheckPaint {
    fn class_name(&self) -> &'static str {
        "CheckPaint"
    }

    fn n_outputs(&self) -> usize {
        2
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        let port = if pkt.meta.paint == Some(self.color) {
            0
        } else {
            1
        };
        ctx.output(port, pkt);
    }
}

/// Rewrites the IP TOS/QoS byte (EndBox uses value `0xeb` to flag packets
/// already processed by a client-side Click instance, §IV-A).
#[derive(Debug)]
pub struct SetTos {
    tos: u8,
}

impl SetTos {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        match args {
            [v] => Ok(Box::new(SetTos {
                tos: parse_u8(v).ok_or_else(|| format!("bad TOS value `{v}`"))?,
            })),
            _ => Err("SetTOS takes exactly one argument".into()),
        }
    }
}

impl Element for SetTos {
    fn class_name(&self) -> &'static str {
        "SetTOS"
    }

    fn process(&mut self, _port: usize, mut pkt: Packet, ctx: &mut ElementContext<'_>) {
        pkt.set_tos(self.tos);
        ctx.output(0, pkt);
    }
}

/// Counts packets and reports an average rate over the shared clock.
#[derive(Debug)]
pub struct AverageCounter {
    count: u64,
    bytes: u64,
    start: Option<endbox_netsim::SimTime>,
    clock: endbox_netsim::time::SharedClock,
}

impl AverageCounter {
    /// Factory for the registry.
    pub fn factory(args: &[String], env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        if !args.is_empty() {
            return Err("AverageCounter takes no arguments".into());
        }
        Ok(Box::new(AverageCounter {
            count: 0,
            bytes: 0,
            start: None,
            clock: env.clock.clone(),
        }))
    }
}

impl Element for AverageCounter {
    fn class_name(&self) -> &'static str {
        "AverageCounter"
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        if self.start.is_none() {
            self.start = Some(self.clock.now());
        }
        self.count += 1;
        self.bytes += pkt.len() as u64;
        ctx.output(0, pkt);
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "count" => Some(self.count.to_string()),
            "byte_rate" => {
                let start = self.start?;
                let elapsed = (self.clock.now() - start).as_secs_f64();
                if elapsed <= 0.0 {
                    return Some("0".into());
                }
                Some(format!("{:.0}", self.bytes as f64 / elapsed))
            }
            _ => None,
        }
    }
}

fn parse_u8(s: &str) -> Option<u8> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u8::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementEnv;
    use std::net::Ipv4Addr;

    fn pkt() -> Packet {
        Packet::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            1,
            2,
            b"data",
        )
    }

    fn run(elem: &mut dyn Element, p: Packet) -> (Vec<(usize, Packet)>, Vec<Packet>) {
        let env = ElementEnv::default();
        let mut outputs = Vec::new();
        let mut emitted = Vec::new();
        let mut ctx = ElementContext::new(&mut outputs, &mut emitted, &env);
        elem.process(0, p, &mut ctx);
        (outputs, emitted)
    }

    #[test]
    fn counter_counts_and_resets() {
        let env = ElementEnv::default();
        let mut c = Counter::factory(&[], &env).unwrap();
        run(c.as_mut(), pkt());
        run(c.as_mut(), pkt());
        assert_eq!(c.read_handler("count").as_deref(), Some("2"));
        assert_eq!(c.read_handler("byte_count").as_deref(), Some("64"));
        c.write_handler("reset", "").unwrap();
        assert_eq!(c.read_handler("count").as_deref(), Some("0"));
    }

    #[test]
    fn counter_state_transfer() {
        let env = ElementEnv::default();
        let mut a = Counter::factory(&[], &env).unwrap();
        run(a.as_mut(), pkt());
        let state = a.export_state().unwrap();
        let mut b = Counter::factory(&[], &env).unwrap();
        b.import_state(state);
        assert_eq!(b.read_handler("count").as_deref(), Some("1"));
    }

    #[test]
    fn tee_duplicates() {
        let env = ElementEnv::default();
        let mut t = Tee::factory(&["3".into()], &env).unwrap();
        let (outs, _) = run(t.as_mut(), pkt());
        assert_eq!(outs.len(), 3);
        let ports: Vec<usize> = outs.iter().map(|(p, _)| *p).collect();
        assert!(ports.contains(&0) && ports.contains(&1) && ports.contains(&2));
    }

    #[test]
    fn paint_and_checkpaint() {
        let env = ElementEnv::default();
        let mut paint = Paint::factory(&["7".into()], &env).unwrap();
        let (outs, _) = run(paint.as_mut(), pkt());
        let painted = outs.into_iter().next().unwrap().1;
        assert_eq!(painted.meta.paint, Some(7));

        let mut check = CheckPaint::factory(&["7".into()], &env).unwrap();
        let (outs, _) = run(check.as_mut(), painted);
        assert_eq!(outs[0].0, 0);
        let (outs, _) = run(check.as_mut(), pkt()); // unpainted
        assert_eq!(outs[0].0, 1);
    }

    #[test]
    fn set_tos_hex() {
        let env = ElementEnv::default();
        let mut s = SetTos::factory(&["0xEB".into()], &env).unwrap();
        let (outs, _) = run(s.as_mut(), pkt());
        assert_eq!(outs[0].1.tos(), 0xeb);
    }

    #[test]
    fn todevice_emits_accepted() {
        let env = ElementEnv::default();
        let mut t = ToDevice::factory(&["tun0".into()], &env).unwrap();
        let (_, emitted) = run(t.as_mut(), pkt());
        assert_eq!(emitted.len(), 1);
        assert_eq!(
            emitted[0].meta.verdict,
            endbox_netsim::packet::Verdict::Accept
        );
        assert_eq!(t.read_handler("emitted").as_deref(), Some("1"));
    }

    #[test]
    fn discard_swallows() {
        let env = ElementEnv::default();
        let mut d = Discard::factory(&[], &env).unwrap();
        let (outs, emitted) = run(d.as_mut(), pkt());
        assert!(outs.is_empty());
        assert!(emitted.is_empty());
        assert_eq!(d.read_handler("count").as_deref(), Some("1"));
    }

    #[test]
    fn factories_validate_args() {
        let env = ElementEnv::default();
        assert!(Counter::factory(&["x".into()], &env).is_err());
        assert!(Tee::factory(&["0".into()], &env).is_err());
        assert!(Paint::factory(&[], &env).is_err());
        assert!(SetTos::factory(&["256".into()], &env).is_err());
        assert!(Queue::factory(&["abc".into()], &env).is_err());
    }
}
