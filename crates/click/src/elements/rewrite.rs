//! Traffic-manipulation elements: address rewriting (NAT-style) and rate
//! metering — middleboxes "analysing, filtering, and manipulating network
//! traffic" (§II-B).

use crate::element::{Element, ElementContext, ElementEnv, ElementState};
use endbox_netsim::time::SimTime;
use endbox_netsim::Packet;
use std::net::Ipv4Addr;

/// Rewrites the source and/or destination address of every packet —
/// a one-way NAT/redirection element (`IPAddrRewriter(SRC 10.0.0.99)`,
/// `IPAddrRewriter(DST 10.1.0.5)`, or both). Checksums are fixed up.
#[derive(Debug)]
pub struct IpAddrRewriter {
    src: Option<Ipv4Addr>,
    dst: Option<Ipv4Addr>,
    rewritten: u64,
}

impl IpAddrRewriter {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        if args.is_empty() {
            return Err("IPAddrRewriter needs SRC <ip> and/or DST <ip>".into());
        }
        let mut src = None;
        let mut dst = None;
        for arg in args {
            let mut toks = arg.split_whitespace();
            match (toks.next(), toks.next(), toks.next()) {
                (Some("SRC"), Some(ip), None) => {
                    src = Some(ip.parse().map_err(|_| format!("bad SRC `{ip}`"))?);
                }
                (Some("DST"), Some(ip), None) => {
                    dst = Some(ip.parse().map_err(|_| format!("bad DST `{ip}`"))?);
                }
                _ => return Err(format!("bad IPAddrRewriter option `{arg}`")),
            }
        }
        Ok(Box::new(IpAddrRewriter {
            src,
            dst,
            rewritten: 0,
        }))
    }
}

impl Element for IpAddrRewriter {
    fn class_name(&self) -> &'static str {
        "IPAddrRewriter"
    }

    fn process(&mut self, _port: usize, mut pkt: Packet, ctx: &mut ElementContext<'_>) {
        if let Some(src) = self.src {
            pkt.set_src(src);
        }
        if let Some(dst) = self.dst {
            pkt.set_dst(dst);
        }
        self.rewritten += 1;
        ctx.output(0, pkt);
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        (name == "rewritten").then(|| self.rewritten.to_string())
    }
}

/// Classifies packets by measured arrival rate (Click's `Meter`): packets
/// while the exponentially-averaged rate is at or below the threshold go
/// to output 0, the overload goes to output 1. Unlike the splitters, the
/// meter does not shape: it only classifies.
#[derive(Debug)]
pub struct Meter {
    rate_bps: u64,
    /// Exponentially weighted moving average of the observed rate (bps).
    ewma_bps: f64,
    last: Option<SimTime>,
    below: u64,
    above: u64,
}

impl Meter {
    /// Factory for the registry: `Meter(<bits per second>)`.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        let rate_bps = match args {
            [r] => r.parse().map_err(|_| format!("bad Meter rate `{r}`"))?,
            _ => return Err("Meter takes exactly one argument (bits/s)".into()),
        };
        if rate_bps == 0 {
            return Err("Meter rate must be > 0".into());
        }
        Ok(Box::new(Meter {
            rate_bps,
            ewma_bps: 0.0,
            last: None,
            below: 0,
            above: 0,
        }))
    }
}

impl Element for Meter {
    fn class_name(&self) -> &'static str {
        "Meter"
    }

    fn n_outputs(&self) -> usize {
        2
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        let now = ctx.env.clock.now();
        let bits = pkt.len() as f64 * 8.0;
        if let Some(last) = self.last {
            let dt = (now - last).as_secs_f64().max(1e-9);
            let instant = bits / dt;
            // EWMA with ~8-sample memory.
            self.ewma_bps = self.ewma_bps * 0.875 + instant * 0.125;
        } else {
            self.ewma_bps = 0.0; // first packet: no rate estimate yet
        }
        self.last = Some(now);
        if self.ewma_bps <= self.rate_bps as f64 {
            self.below += 1;
            ctx.output(0, pkt);
        } else {
            self.above += 1;
            ctx.output(1, pkt);
        }
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "rate" => Some(format!("{:.0}", self.ewma_bps)),
            "below" => Some(self.below.to_string()),
            "above" => Some(self.above.to_string()),
            _ => None,
        }
    }

    fn export_state(&self) -> Option<ElementState> {
        Some(vec![
            ("below".into(), self.below.to_string()),
            ("above".into(), self.above.to_string()),
        ])
    }

    fn import_state(&mut self, state: ElementState) {
        for (k, v) in state {
            match k.as_str() {
                "below" => self.below = v.parse().unwrap_or(0),
                "above" => self.above = v.parse().unwrap_or(0),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use endbox_netsim::time::SimDuration;

    fn pkt(len: usize) -> Packet {
        Packet::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            1,
            2,
            &vec![b'm'; len],
        )
    }

    fn run(elem: &mut dyn Element, p: Packet, env: &ElementEnv) -> (usize, Packet) {
        let mut outputs = Vec::new();
        let mut emitted = Vec::new();
        let mut ctx = ElementContext::new(&mut outputs, &mut emitted, env);
        elem.process(0, p, &mut ctx);
        outputs.into_iter().next().unwrap()
    }

    #[test]
    fn rewriter_changes_addresses_and_fixes_checksums() {
        let env = ElementEnv::default();
        let mut e = IpAddrRewriter::factory(&["SRC 192.0.2.7".into(), "DST 10.1.0.5".into()], &env)
            .unwrap();
        let (_, out) = run(e.as_mut(), pkt(100), &env);
        assert_eq!(out.header().src, Ipv4Addr::new(192, 0, 2, 7));
        assert_eq!(out.header().dst, Ipv4Addr::new(10, 1, 0, 5));
        // Packet stays wire-valid.
        assert!(Packet::from_bytes(out.bytes().to_vec()).is_ok());
        assert_eq!(e.read_handler("rewritten").as_deref(), Some("1"));
    }

    #[test]
    fn rewriter_src_only() {
        let env = ElementEnv::default();
        let mut e = IpAddrRewriter::factory(&["SRC 192.0.2.7".into()], &env).unwrap();
        let (_, out) = run(e.as_mut(), pkt(10), &env);
        assert_eq!(out.header().src, Ipv4Addr::new(192, 0, 2, 7));
        assert_eq!(
            out.header().dst,
            Ipv4Addr::new(10, 0, 1, 1),
            "dst untouched"
        );
    }

    #[test]
    fn meter_classifies_by_rate() {
        let env = ElementEnv::default();
        // 1 Mbps threshold.
        let mut m = Meter::factory(&["1000000".into()], &env).unwrap();
        // Slow traffic: one 128-byte packet per 10 ms ~ 100 kbps.
        for _ in 0..20 {
            env.clock.advance(SimDuration::from_millis(10));
            let (port, _) = run(m.as_mut(), pkt(100), &env);
            assert_eq!(port, 0, "slow traffic passes on port 0");
        }
        // Burst: packets every 100 us ~ 10 Mbps -> port 1 once EWMA rises.
        let mut above = 0;
        for _ in 0..50 {
            env.clock.advance(SimDuration::from_micros(100));
            let (port, _) = run(m.as_mut(), pkt(100), &env);
            if port == 1 {
                above += 1;
            }
        }
        assert!(above > 20, "burst must overflow to port 1: {above}");
    }

    #[test]
    fn factories_validate() {
        let env = ElementEnv::default();
        assert!(IpAddrRewriter::factory(&[], &env).is_err());
        assert!(IpAddrRewriter::factory(&["SRC nonsense".into()], &env).is_err());
        assert!(IpAddrRewriter::factory(&["FOO 1.2.3.4".into()], &env).is_err());
        assert!(Meter::factory(&[], &env).is_err());
        assert!(Meter::factory(&["0".into()], &env).is_err());
        assert!(Meter::factory(&["fast".into()], &env).is_err());
    }
}
