//! `IDSMatcher`: the paper's custom intrusion detection element ("The IDPS
//! is implemented as a custom Click element called IDSMatcher", §V-B),
//! backed by the [`endbox_snort`] engine.

use crate::element::{Element, ElementContext, ElementEnv, ElementState};
use endbox_netsim::{Packet, PacketBatch};
use endbox_snort::engine::{CompiledRules, PacketView};
use endbox_snort::rule::parse_rules;

/// Intrusion detection/prevention element. Configuration arguments:
///
/// * `COMMUNITY <n>` — load `n` rules of the synthetic community set;
/// * any other argument — parsed as a literal Snort rule.
///
/// Clean packets leave on output 0; packets hit by a `drop` rule go to
/// output 1 (dropped if unconnected). Alert-only rules are recorded but do
/// not stop the packet.
#[derive(Debug)]
pub struct IdsMatcher {
    compiled: CompiledRules,
    alerts: u64,
    drops: u64,
    scanned_bytes: u64,
}

impl IdsMatcher {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        if args.is_empty() {
            return Err("IDSMatcher needs rules (COMMUNITY <n> or literal rules)".into());
        }
        let mut rules = Vec::new();
        for arg in args {
            let trimmed = arg.trim();
            if let Some(count) = trimmed.strip_prefix("COMMUNITY") {
                let n: usize = count
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad COMMUNITY count `{trimmed}`"))?;
                rules.extend(endbox_snort::community::synthetic_rules(n));
            } else {
                rules.extend(parse_rules(trimmed).map_err(|e| format!("bad inline rule: {e}"))?);
            }
        }
        if rules.is_empty() {
            return Err("IDSMatcher rule set is empty".into());
        }
        Ok(Box::new(IdsMatcher {
            compiled: CompiledRules::compile(&rules),
            alerts: 0,
            drops: 0,
            scanned_bytes: 0,
        }))
    }

    /// Number of compiled rules.
    pub fn rule_count(&self) -> usize {
        self.compiled.rule_count()
    }

    /// Scans one packet and routes it (no meter charge — callers charge).
    fn scan_one(&mut self, pkt: Packet, ctx: &mut ElementContext<'_>) {
        let payload = pkt.app_payload();
        self.scanned_bytes += payload.len() as u64;
        let header = pkt.header();
        let view = PacketView {
            src: header.src,
            dst: header.dst,
            protocol: header.protocol.to_u8(),
            src_port: pkt.src_port(),
            dst_port: pkt.dst_port(),
            payload,
        };
        let outcome = self.compiled.scan(&view);
        self.alerts += outcome.alerts.len() as u64;
        if outcome.drop {
            self.drops += 1;
            ctx.output(1, pkt);
        } else {
            ctx.output(0, pkt);
        }
    }
}

impl Element for IdsMatcher {
    fn class_name(&self) -> &'static str {
        "IDSMatcher"
    }

    fn n_outputs(&self) -> usize {
        2
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        let amplified = ctx.env.in_enclave && ctx.env.hardware_mode;
        ctx.env
            .meter
            .add(ctx.env.cost.ids_cycles(pkt.app_payload().len(), amplified));
        self.scan_one(pkt, ctx);
    }

    /// Vectorised fast path: the per-packet scan costs are summed and
    /// charged in one meter update, and the Aho–Corasick automaton stays
    /// hot in cache across the batch.
    fn process_batch(
        &mut self,
        _port: usize,
        batch: &mut PacketBatch,
        ctx: &mut ElementContext<'_>,
    ) {
        let amplified = ctx.env.in_enclave && ctx.env.hardware_mode;
        let cycles: u64 = batch
            .iter()
            .map(|pkt| ctx.env.cost.ids_cycles(pkt.app_payload().len(), amplified))
            .sum();
        ctx.env.meter.add(cycles);
        for pkt in batch.drain() {
            self.scan_one(pkt, ctx);
        }
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "alerts" => Some(self.alerts.to_string()),
            "drops" => Some(self.drops.to_string()),
            "rules" => Some(self.compiled.rule_count().to_string()),
            "scanned_bytes" => Some(self.scanned_bytes.to_string()),
            _ => None,
        }
    }

    fn export_state(&self) -> Option<ElementState> {
        Some(vec![
            ("alerts".into(), self.alerts.to_string()),
            ("drops".into(), self.drops.to_string()),
            ("scanned_bytes".into(), self.scanned_bytes.to_string()),
        ])
    }

    fn import_state(&mut self, state: ElementState) {
        for (k, v) in state {
            match k.as_str() {
                "alerts" => self.alerts = v.parse().unwrap_or(0),
                "drops" => self.drops = v.parse().unwrap_or(0),
                "scanned_bytes" => self.scanned_bytes = v.parse().unwrap_or(0),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementEnv;
    use std::net::Ipv4Addr;

    fn tcp(payload: &[u8]) -> Packet {
        Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            40000,
            80,
            0,
            payload,
        )
    }

    fn run_with_env(elem: &mut dyn Element, p: Packet, env: &ElementEnv) -> Vec<(usize, Packet)> {
        let mut outputs = Vec::new();
        let mut emitted = Vec::new();
        let mut ctx = ElementContext::new(&mut outputs, &mut emitted, env);
        elem.process(0, p, &mut ctx);
        outputs
    }

    #[test]
    fn batch_scan_matches_sequential_costs_and_outcomes() {
        let env_a = ElementEnv::default();
        let env_b = ElementEnv::default();
        let rule = r#"drop tcp any any -> any any (msg:"worm"; content:"EB-WORM"; sid:7777;)"#;
        let mut seq = IdsMatcher::factory(&[rule.to_string()], &env_a).unwrap();
        let mut bat = IdsMatcher::factory(&[rule.to_string()], &env_b).unwrap();
        let packets = [
            tcp(b"benign data"),
            tcp(b"xx EB-WORM xx"),
            tcp(b"more benign bytes here"),
        ];

        env_a.meter.take();
        let mut seq_ports = Vec::new();
        for p in packets.iter().cloned() {
            seq_ports.extend(
                run_with_env(seq.as_mut(), p, &env_a)
                    .into_iter()
                    .map(|(port, _)| port),
            );
        }
        let seq_cycles = env_a.meter.take();

        env_b.meter.take();
        let mut outputs = Vec::new();
        let mut emitted = Vec::new();
        let mut ctx = ElementContext::new(&mut outputs, &mut emitted, &env_b);
        let mut batch: PacketBatch = packets.into_iter().collect();
        bat.process_batch(0, &mut batch, &mut ctx);
        let bat_cycles = env_b.meter.take();
        let bat_ports: Vec<usize> = outputs.iter().map(|(port, _)| *port).collect();

        assert_eq!(bat_ports, seq_ports);
        assert_eq!(
            bat_cycles, seq_cycles,
            "summed batch charge equals per-packet charges"
        );
        assert_eq!(seq.read_handler("drops"), bat.read_handler("drops"));
        assert_eq!(
            seq.read_handler("scanned_bytes"),
            bat.read_handler("scanned_bytes")
        );
    }

    #[test]
    fn loads_community_rules() {
        let env = ElementEnv::default();
        let ids = IdsMatcher::factory(&["COMMUNITY 377".into()], &env).unwrap();
        assert_eq!(ids.read_handler("rules").as_deref(), Some("377"));
    }

    #[test]
    fn benign_traffic_passes() {
        let env = ElementEnv::default();
        let mut ids = IdsMatcher::factory(&["COMMUNITY 377".into()], &env).unwrap();
        let outs = run_with_env(ids.as_mut(), tcp(b"perfectly benign lowercase data"), &env);
        assert_eq!(outs[0].0, 0);
        assert_eq!(ids.read_handler("alerts").as_deref(), Some("0"));
    }

    #[test]
    fn malicious_content_detected_and_dropped() {
        let env = ElementEnv::default();
        let mut ids = IdsMatcher::factory(
            &[
                r#"drop tcp any any -> any any (msg:"worm"; content:"EB-WORM"; sid:7777;)"#
                    .to_string(),
            ],
            &env,
        )
        .unwrap();
        let outs = run_with_env(ids.as_mut(), tcp(b"payload EB-WORM payload"), &env);
        assert_eq!(outs[0].0, 1, "dropped packets exit port 1");
        assert_eq!(ids.read_handler("drops").as_deref(), Some("1"));
        assert_eq!(ids.read_handler("alerts").as_deref(), Some("1"));
    }

    #[test]
    fn alert_rules_pass_but_count() {
        let env = ElementEnv::default();
        let mut ids = IdsMatcher::factory(
            &[
                r#"alert tcp any any -> any any (msg:"sus"; content:"EB-SUS"; sid:7778;)"#
                    .to_string(),
            ],
            &env,
        )
        .unwrap();
        let outs = run_with_env(ids.as_mut(), tcp(b"EB-SUS"), &env);
        assert_eq!(outs[0].0, 0);
        assert_eq!(ids.read_handler("alerts").as_deref(), Some("1"));
    }

    #[test]
    fn enclave_hardware_mode_amplifies_cost() {
        let native_env = ElementEnv::default();
        let enclave_env = ElementEnv {
            in_enclave: true,
            hardware_mode: true,
            ..ElementEnv::default()
        };

        let mut ids_n = IdsMatcher::factory(&["COMMUNITY 10".into()], &native_env).unwrap();
        let mut ids_e = IdsMatcher::factory(&["COMMUNITY 10".into()], &enclave_env).unwrap();

        native_env.meter.take();
        run_with_env(ids_n.as_mut(), tcp(&[b'a'; 1000]), &native_env);
        let native_cost = native_env.meter.read();

        enclave_env.meter.take();
        run_with_env(ids_e.as_mut(), tcp(&[b'a'; 1000]), &enclave_env);
        let enclave_cost = enclave_env.meter.read();

        let ratio = enclave_cost as f64 / native_cost as f64;
        assert!(
            (ratio - native_env.cost.epc_amplification).abs() < 0.1,
            "ratio {ratio}"
        );
    }

    #[test]
    fn state_survives_export_import() {
        let env = ElementEnv::default();
        let mut a = IdsMatcher::factory(&["COMMUNITY 5".into()], &env).unwrap();
        run_with_env(a.as_mut(), tcp(b"data"), &env);
        let st = a.export_state().unwrap();
        let mut b = IdsMatcher::factory(&["COMMUNITY 5".into()], &env).unwrap();
        b.import_state(st);
        assert_eq!(b.read_handler("scanned_bytes").as_deref(), Some("4"));
    }

    #[test]
    fn factory_validates() {
        let env = ElementEnv::default();
        assert!(IdsMatcher::factory(&[], &env).is_err());
        assert!(IdsMatcher::factory(&["COMMUNITY x".into()], &env).is_err());
        assert!(IdsMatcher::factory(&["not a rule".into()], &env).is_err());
        assert!(IdsMatcher::factory(&["COMMUNITY 0".into()], &env).is_err());
    }
}
