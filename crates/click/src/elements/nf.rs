//! Stateful network functions: NAT, rate limiting, connection tracking —
//! the Slick-style catalogue of modular middlebox functions the paper's
//! click layer is meant to host ("analysing, filtering, and manipulating
//! network traffic", §II-B). All three are order-sensitive: their
//! routing decisions depend on the exact packet arrival order, which the
//! batched router's order-preserving scheduler now guarantees matches
//! the single-packet path (see `crate::router` module docs).

use crate::element::{Element, ElementContext, ElementEnv, ElementState};
use endbox_netsim::packet::IpProtocol;
use endbox_netsim::time::SimTime;
use endbox_netsim::Packet;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Directional 5-tuple identifying one side of a NAT'd flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct NatKey {
    src: Ipv4Addr,
    sport: u16,
    dst: Ipv4Addr,
    dport: u16,
    proto: u8,
}

/// Stateful NAPT (Click's `IPRewriter` pattern): the first packet of each
/// outbound TCP/UDP flow allocates the next free external port and
/// installs a flow-table entry; subsequent packets of the flow reuse it.
/// Outbound packets leave with `SRC <external-ip>:<allocated-port>`;
/// return traffic addressed to the external ip and an allocated port is
/// rewritten back to the original endpoint. Port allocation is strictly
/// arrival-ordered, which makes the element a canary for batched
/// re-merge ordering bugs.
///
/// Outputs: 0 = rewritten (or non-TCP/UDP passthrough), 1 = new flow
/// rejected because the port range is exhausted.
///
/// Config: `IPRewriter(SRC <ip>, PORTS <lo> <hi>)` — `PORTS` optional,
/// default 1024–65535.
#[derive(Debug)]
pub struct StatefulNat {
    external: Ipv4Addr,
    port_lo: u16,
    port_hi: u16,
    next_port: u16,
    /// Outbound 5-tuple → allocated external port.
    flows: HashMap<NatKey, u16>,
    /// Allocated external port → outbound 5-tuple (reverse rewrites).
    by_port: HashMap<u16, NatKey>,
    rewritten: u64,
    reversed: u64,
    passthrough: u64,
    exhausted: u64,
}

impl StatefulNat {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        let mut external = None;
        let mut range = (1024u16, 65535u16);
        for arg in args {
            let toks: Vec<&str> = arg.split_whitespace().collect();
            match toks.as_slice() {
                ["SRC", ip] => {
                    external = Some(ip.parse().map_err(|_| format!("bad SRC `{ip}`"))?);
                }
                ["PORTS", lo, hi] => {
                    let lo: u16 = lo.parse().map_err(|_| format!("bad port `{lo}`"))?;
                    let hi: u16 = hi.parse().map_err(|_| format!("bad port `{hi}`"))?;
                    if lo == 0 || lo > hi {
                        return Err(format!("bad PORTS range `{lo} {hi}`"));
                    }
                    range = (lo, hi);
                }
                _ => return Err(format!("bad IPRewriter option `{arg}`")),
            }
        }
        let external = external.ok_or("IPRewriter needs SRC <external-ip>")?;
        Ok(Box::new(StatefulNat {
            external,
            port_lo: range.0,
            port_hi: range.1,
            next_port: range.0,
            flows: HashMap::new(),
            by_port: HashMap::new(),
            rewritten: 0,
            reversed: 0,
            passthrough: 0,
            exhausted: 0,
        }))
    }

    /// Next free external port at or after `next_port` (wrapping within
    /// the range), or `None` when every port is allocated.
    fn allocate_port(&mut self) -> Option<u16> {
        let span = (self.port_hi - self.port_lo) as u32 + 1;
        if self.by_port.len() as u32 >= span {
            return None;
        }
        let mut candidate = self.next_port;
        loop {
            if !self.by_port.contains_key(&candidate) {
                self.next_port = if candidate == self.port_hi {
                    self.port_lo
                } else {
                    candidate + 1
                };
                return Some(candidate);
            }
            candidate = if candidate == self.port_hi {
                self.port_lo
            } else {
                candidate + 1
            };
        }
    }
}

impl Element for StatefulNat {
    fn class_name(&self) -> &'static str {
        "IPRewriter"
    }

    fn n_outputs(&self) -> usize {
        2
    }

    fn process(&mut self, _port: usize, mut pkt: Packet, ctx: &mut ElementContext<'_>) {
        ctx.env.meter.add(
            ctx.env
                .cost
                .lb_cycles(ctx.env.hardware_mode && ctx.env.in_enclave),
        );
        let header = pkt.header();
        let proto = header.protocol;
        let (Some(sport), Some(dport)) = (pkt.src_port(), pkt.dst_port()) else {
            // No L4 ports (ICMP etc.): forward untouched.
            self.passthrough += 1;
            ctx.output(0, pkt);
            return;
        };

        // Return traffic: addressed to the external ip on an allocated
        // port — rewrite back to the original endpoint.
        if header.dst == self.external {
            if let Some(orig) = self.by_port.get(&dport).copied() {
                if orig.proto == proto.to_u8() {
                    pkt.set_dst(orig.src);
                    pkt.set_dst_port(orig.sport);
                    self.reversed += 1;
                    ctx.output(0, pkt);
                    return;
                }
            }
        }

        let key = NatKey {
            src: header.src,
            sport,
            dst: header.dst,
            dport,
            proto: proto.to_u8(),
        };
        let ext_port = match self.flows.get(&key).copied() {
            Some(p) => p,
            None => match self.allocate_port() {
                Some(p) => {
                    self.flows.insert(key, p);
                    self.by_port.insert(p, key);
                    p
                }
                None => {
                    self.exhausted += 1;
                    ctx.output(1, pkt);
                    return;
                }
            },
        };
        pkt.set_src(self.external);
        pkt.set_src_port(ext_port);
        self.rewritten += 1;
        ctx.output(0, pkt);
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "flows" => Some(self.flows.len().to_string()),
            "rewritten" => Some(self.rewritten.to_string()),
            "reversed" => Some(self.reversed.to_string()),
            "passthrough" => Some(self.passthrough.to_string()),
            "exhausted" => Some(self.exhausted.to_string()),
            _ => None,
        }
    }

    fn export_state(&self) -> Option<ElementState> {
        let mut state = vec![
            ("next_port".into(), self.next_port.to_string()),
            ("rewritten".into(), self.rewritten.to_string()),
            ("reversed".into(), self.reversed.to_string()),
            ("passthrough".into(), self.passthrough.to_string()),
            ("exhausted".into(), self.exhausted.to_string()),
        ];
        let mut flows: Vec<(&NatKey, &u16)> = self.flows.iter().collect();
        flows.sort();
        for (k, ext) in flows {
            state.push((
                format!(
                    "flow:{}:{}:{}:{}:{}",
                    k.src, k.sport, k.dst, k.dport, k.proto
                ),
                ext.to_string(),
            ));
        }
        Some(state)
    }

    fn import_state(&mut self, state: ElementState) {
        for (k, v) in state {
            match k.as_str() {
                "next_port" => self.next_port = v.parse().unwrap_or(self.port_lo),
                "rewritten" => self.rewritten = v.parse().unwrap_or(0),
                "reversed" => self.reversed = v.parse().unwrap_or(0),
                "passthrough" => self.passthrough = v.parse().unwrap_or(0),
                "exhausted" => self.exhausted = v.parse().unwrap_or(0),
                _ => {
                    let Some(rest) = k.strip_prefix("flow:") else {
                        continue;
                    };
                    let parts: Vec<&str> = rest.split(':').collect();
                    let [src, sport, dst, dport, proto] = parts.as_slice() else {
                        continue;
                    };
                    let (Ok(src), Ok(sport), Ok(dst), Ok(dport), Ok(proto), Ok(ext)) = (
                        src.parse(),
                        sport.parse(),
                        dst.parse(),
                        dport.parse(),
                        proto.parse(),
                        v.parse(),
                    ) else {
                        continue;
                    };
                    let key = NatKey {
                        src,
                        sport,
                        dst,
                        dport,
                        proto,
                    };
                    self.flows.insert(key, ext);
                    self.by_port.insert(ext, key);
                }
            }
        }
    }
}

/// Packet-granular token-bucket rate limiter: conforming packets go to
/// output 0, the overflow to output 1 (dropped if unconnected). Tokens
/// refill from the element clock at `RATE` packets per second up to
/// `BURST`; the bucket starts full. Whether a given packet conforms
/// depends on how many came before it — order-sensitive by construction.
///
/// Config: `TokenBucket(RATE <pps>, BURST <packets>)` — `BURST`
/// optional, default 32.
#[derive(Debug)]
pub struct TokenBucket {
    rate_pps: u64,
    burst: u64,
    tokens: f64,
    last: Option<SimTime>,
    conformed: u64,
    exceeded: u64,
}

impl TokenBucket {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        let mut rate = None;
        let mut burst = 32u64;
        for arg in args {
            let toks: Vec<&str> = arg.split_whitespace().collect();
            match toks.as_slice() {
                ["RATE", r] => {
                    rate = Some(r.parse().map_err(|_| format!("bad RATE `{r}`"))?);
                }
                ["BURST", b] => {
                    burst = b.parse().map_err(|_| format!("bad BURST `{b}`"))?;
                }
                _ => return Err(format!("bad TokenBucket option `{arg}`")),
            }
        }
        let rate_pps = rate.ok_or("TokenBucket needs RATE <packets/s>")?;
        if rate_pps == 0 || burst == 0 {
            return Err("TokenBucket RATE and BURST must be > 0".into());
        }
        Ok(Box::new(TokenBucket {
            rate_pps,
            burst,
            tokens: burst as f64,
            last: None,
            conformed: 0,
            exceeded: 0,
        }))
    }
}

impl Element for TokenBucket {
    fn class_name(&self) -> &'static str {
        "TokenBucket"
    }

    fn n_outputs(&self) -> usize {
        2
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        ctx.env.meter.add(ctx.env.cost.splitter_per_packet);
        let now = ctx.env.clock.now();
        if let Some(last) = self.last {
            let dt = (now - last).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate_pps as f64).min(self.burst as f64);
        }
        self.last = Some(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.conformed += 1;
            ctx.output(0, pkt);
        } else {
            self.exceeded += 1;
            ctx.output(1, pkt);
        }
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "conformed" => Some(self.conformed.to_string()),
            "exceeded" => Some(self.exceeded.to_string()),
            "tokens" => Some(format!("{:.3}", self.tokens)),
            _ => None,
        }
    }

    fn export_state(&self) -> Option<ElementState> {
        Some(vec![
            ("tokens".into(), self.tokens.to_bits().to_string()),
            ("conformed".into(), self.conformed.to_string()),
            ("exceeded".into(), self.exceeded.to_string()),
        ])
    }

    fn import_state(&mut self, state: ElementState) {
        for (k, v) in state {
            match k.as_str() {
                "tokens" => {
                    if let Ok(bits) = v.parse::<u64>() {
                        self.tokens = f64::from_bits(bits).clamp(0.0, self.burst as f64);
                    }
                }
                "conformed" => self.conformed = v.parse().unwrap_or(0),
                "exceeded" => self.exceeded = v.parse().unwrap_or(0),
                _ => {}
            }
        }
    }
}

/// Direction-agnostic 5-tuple (both directions of a connection map to
/// the same entry), including the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct ConnKey {
    a: (Ipv4Addr, u16),
    b: (Ipv4Addr, u16),
    proto: u8,
}

impl ConnKey {
    fn new(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16, proto: IpProtocol) -> Self {
        let x = (src, sport);
        let y = (dst, dport);
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        ConnKey {
            a,
            b,
            proto: proto.to_u8(),
        }
    }
}

/// Connection tracker with a bounded flow table: packets of tracked
/// connections (and the first packet of a new connection while the table
/// has room) go to output 0; packets of new connections arriving at a
/// full table are rejected to output 1. Which connections win table
/// slots is decided strictly by arrival order.
///
/// Config: `ConnTracker(MAX <flows>)` — optional, default 1024.
#[derive(Debug)]
pub struct ConnTracker {
    max_flows: usize,
    /// Tracked connection → packets seen.
    conns: HashMap<ConnKey, u64>,
    new_flows: u64,
    established: u64,
    rejected: u64,
}

impl ConnTracker {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        let mut max_flows = 1024usize;
        for arg in args {
            let toks: Vec<&str> = arg.split_whitespace().collect();
            match toks.as_slice() {
                ["MAX", n] => {
                    max_flows = n.parse().map_err(|_| format!("bad MAX `{n}`"))?;
                }
                _ => return Err(format!("bad ConnTracker option `{arg}`")),
            }
        }
        if max_flows == 0 {
            return Err("ConnTracker MAX must be > 0".into());
        }
        Ok(Box::new(ConnTracker {
            max_flows,
            conns: HashMap::new(),
            new_flows: 0,
            established: 0,
            rejected: 0,
        }))
    }
}

impl Element for ConnTracker {
    fn class_name(&self) -> &'static str {
        "ConnTracker"
    }

    fn n_outputs(&self) -> usize {
        2
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        ctx.env.meter.add(
            ctx.env
                .cost
                .lb_cycles(ctx.env.hardware_mode && ctx.env.in_enclave),
        );
        let header = pkt.header();
        let key = ConnKey::new(
            header.src,
            pkt.src_port().unwrap_or(0),
            header.dst,
            pkt.dst_port().unwrap_or(0),
            header.protocol,
        );
        if let Some(count) = self.conns.get_mut(&key) {
            *count += 1;
            self.established += 1;
            ctx.output(0, pkt);
        } else if self.conns.len() < self.max_flows {
            self.conns.insert(key, 1);
            self.new_flows += 1;
            ctx.output(0, pkt);
        } else {
            self.rejected += 1;
            ctx.output(1, pkt);
        }
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "flows" => Some(self.conns.len().to_string()),
            "new_flows" => Some(self.new_flows.to_string()),
            "established" => Some(self.established.to_string()),
            "rejected" => Some(self.rejected.to_string()),
            _ => None,
        }
    }

    fn export_state(&self) -> Option<ElementState> {
        let mut state = vec![
            ("new_flows".into(), self.new_flows.to_string()),
            ("established".into(), self.established.to_string()),
            ("rejected".into(), self.rejected.to_string()),
        ];
        let mut conns: Vec<(&ConnKey, &u64)> = self.conns.iter().collect();
        conns.sort();
        for (k, count) in conns {
            state.push((
                format!("conn:{}:{}:{}:{}:{}", k.a.0, k.a.1, k.b.0, k.b.1, k.proto),
                count.to_string(),
            ));
        }
        Some(state)
    }

    fn import_state(&mut self, state: ElementState) {
        for (k, v) in state {
            match k.as_str() {
                "new_flows" => self.new_flows = v.parse().unwrap_or(0),
                "established" => self.established = v.parse().unwrap_or(0),
                "rejected" => self.rejected = v.parse().unwrap_or(0),
                _ => {
                    let Some(rest) = k.strip_prefix("conn:") else {
                        continue;
                    };
                    let parts: Vec<&str> = rest.split(':').collect();
                    let [a_ip, a_port, b_ip, b_port, proto] = parts.as_slice() else {
                        continue;
                    };
                    let (Ok(a_ip), Ok(a_port), Ok(b_ip), Ok(b_port), Ok(proto), Ok(count)) = (
                        a_ip.parse(),
                        a_port.parse(),
                        b_ip.parse(),
                        b_port.parse(),
                        proto.parse(),
                        v.parse(),
                    ) else {
                        continue;
                    };
                    if self.conns.len() < self.max_flows {
                        self.conns.insert(
                            ConnKey {
                                a: (a_ip, a_port),
                                b: (b_ip, b_port),
                                proto,
                            },
                            count,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use endbox_netsim::time::SimDuration;

    fn udp(sport: u16, dport: u16) -> Packet {
        Packet::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            sport,
            dport,
            b"payload",
        )
    }

    fn run(elem: &mut dyn Element, p: Packet, env: &ElementEnv) -> (usize, Packet) {
        let mut outputs = Vec::new();
        let mut emitted = Vec::new();
        let mut ctx = ElementContext::new(&mut outputs, &mut emitted, env);
        elem.process(0, p, &mut ctx);
        outputs.into_iter().next().expect("one output")
    }

    #[test]
    fn nat_allocates_ports_in_arrival_order() {
        let env = ElementEnv::default();
        let mut nat =
            StatefulNat::factory(&["SRC 198.51.100.1".into(), "PORTS 6000 6003".into()], &env)
                .unwrap();
        let (port, out) = run(nat.as_mut(), udp(1111, 80), &env);
        assert_eq!(port, 0);
        assert_eq!(out.header().src, Ipv4Addr::new(198, 51, 100, 1));
        assert_eq!(out.src_port(), Some(6000));
        assert!(
            Packet::from_bytes(out.bytes().to_vec()).is_ok(),
            "NAT output stays wire-valid"
        );
        // Second flow gets the next port; repeat of the first reuses 6000.
        let (_, out2) = run(nat.as_mut(), udp(2222, 80), &env);
        assert_eq!(out2.src_port(), Some(6001));
        let (_, out1b) = run(nat.as_mut(), udp(1111, 80), &env);
        assert_eq!(out1b.src_port(), Some(6000));
        assert_eq!(nat.read_handler("flows").as_deref(), Some("2"));
    }

    #[test]
    fn nat_reverses_return_traffic() {
        let env = ElementEnv::default();
        let mut nat = StatefulNat::factory(&["SRC 198.51.100.1".into()], &env).unwrap();
        let (_, out) = run(nat.as_mut(), udp(1111, 80), &env);
        let ext_port = out.src_port().unwrap();
        // Return packet: server -> external:allocated.
        let ret = Packet::udp(
            Ipv4Addr::new(10, 0, 1, 1),
            Ipv4Addr::new(198, 51, 100, 1),
            80,
            ext_port,
            b"reply",
        );
        let (port, back) = run(nat.as_mut(), ret, &env);
        assert_eq!(port, 0);
        assert_eq!(back.header().dst, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(back.dst_port(), Some(1111));
        assert_eq!(nat.read_handler("reversed").as_deref(), Some("1"));
    }

    #[test]
    fn nat_exhaustion_rejects_new_flows() {
        let env = ElementEnv::default();
        let mut nat =
            StatefulNat::factory(&["SRC 198.51.100.1".into(), "PORTS 6000 6001".into()], &env)
                .unwrap();
        assert_eq!(run(nat.as_mut(), udp(1, 80), &env).0, 0);
        assert_eq!(run(nat.as_mut(), udp(2, 80), &env).0, 0);
        let (port, _) = run(nat.as_mut(), udp(3, 80), &env);
        assert_eq!(port, 1, "range exhausted: new flow rejected");
        assert_eq!(nat.read_handler("exhausted").as_deref(), Some("1"));
        // Existing flows still pass.
        assert_eq!(run(nat.as_mut(), udp(1, 80), &env).0, 0);
    }

    #[test]
    fn nat_state_roundtrips_through_hot_swap() {
        let env = ElementEnv::default();
        let mut nat =
            StatefulNat::factory(&["SRC 198.51.100.1".into(), "PORTS 6000 6010".into()], &env)
                .unwrap();
        run(nat.as_mut(), udp(1111, 80), &env);
        run(nat.as_mut(), udp(2222, 80), &env);
        let state = nat.export_state().unwrap();
        let mut nat2 =
            StatefulNat::factory(&["SRC 198.51.100.1".into(), "PORTS 6000 6010".into()], &env)
                .unwrap();
        nat2.import_state(state);
        // Existing flow keeps its mapping; a new flow continues from
        // where the allocator left off.
        let (_, out) = run(nat2.as_mut(), udp(1111, 80), &env);
        assert_eq!(out.src_port(), Some(6000));
        let (_, out3) = run(nat2.as_mut(), udp(3333, 80), &env);
        assert_eq!(out3.src_port(), Some(6002));
    }

    #[test]
    fn nat_passes_portless_traffic() {
        let env = ElementEnv::default();
        let mut nat = StatefulNat::factory(&["SRC 198.51.100.1".into()], &env).unwrap();
        let icmp = Packet::icmp_echo_request(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            7,
            1,
            b"ping",
        );
        let (port, out) = run(nat.as_mut(), icmp, &env);
        assert_eq!(port, 0);
        assert_eq!(out.header().src, Ipv4Addr::new(10, 0, 0, 1), "untouched");
        assert_eq!(nat.read_handler("passthrough").as_deref(), Some("1"));
    }

    #[test]
    fn token_bucket_conforms_burst_then_rejects() {
        let env = ElementEnv::default();
        let mut tb = TokenBucket::factory(&["RATE 1000".into(), "BURST 4".into()], &env).unwrap();
        let ports: Vec<usize> = (0..6)
            .map(|_| run(tb.as_mut(), udp(1, 2), &env).0)
            .collect();
        assert_eq!(ports, vec![0, 0, 0, 0, 1, 1], "burst of 4 then overflow");
        assert_eq!(tb.read_handler("conformed").as_deref(), Some("4"));
        assert_eq!(tb.read_handler("exceeded").as_deref(), Some("2"));
        // Refill at 1000 pps: 2 ms buys two tokens.
        env.clock.advance(SimDuration::from_millis(2));
        assert_eq!(run(tb.as_mut(), udp(1, 2), &env).0, 0);
        assert_eq!(run(tb.as_mut(), udp(1, 2), &env).0, 0);
        assert_eq!(run(tb.as_mut(), udp(1, 2), &env).0, 1);
    }

    #[test]
    fn token_bucket_state_roundtrips() {
        let env = ElementEnv::default();
        let mut tb = TokenBucket::factory(&["RATE 10".into(), "BURST 8".into()], &env).unwrap();
        for _ in 0..5 {
            run(tb.as_mut(), udp(1, 2), &env);
        }
        let state = tb.export_state().unwrap();
        let mut tb2 = TokenBucket::factory(&["RATE 10".into(), "BURST 8".into()], &env).unwrap();
        tb2.import_state(state);
        assert_eq!(tb2.read_handler("conformed").as_deref(), Some("5"));
        assert_eq!(tb2.read_handler("tokens").as_deref(), Some("3.000"));
    }

    #[test]
    fn conn_tracker_bounds_table_by_arrival_order() {
        let env = ElementEnv::default();
        let mut ct = ConnTracker::factory(&["MAX 2".into()], &env).unwrap();
        assert_eq!(run(ct.as_mut(), udp(1, 80), &env).0, 0, "flow 1 admitted");
        assert_eq!(run(ct.as_mut(), udp(2, 80), &env).0, 0, "flow 2 admitted");
        assert_eq!(run(ct.as_mut(), udp(3, 80), &env).0, 1, "table full");
        // Established flows keep flowing; the reverse direction maps to
        // the same connection.
        assert_eq!(run(ct.as_mut(), udp(1, 80), &env).0, 0);
        let reverse = Packet::udp(
            Ipv4Addr::new(10, 0, 1, 1),
            Ipv4Addr::new(10, 0, 0, 1),
            80,
            1,
            b"reply",
        );
        assert_eq!(run(ct.as_mut(), reverse, &env).0, 0);
        assert_eq!(ct.read_handler("flows").as_deref(), Some("2"));
        assert_eq!(ct.read_handler("established").as_deref(), Some("2"));
        assert_eq!(ct.read_handler("rejected").as_deref(), Some("1"));
    }

    #[test]
    fn conn_tracker_state_roundtrips() {
        let env = ElementEnv::default();
        let mut ct = ConnTracker::factory(&["MAX 4".into()], &env).unwrap();
        run(ct.as_mut(), udp(1, 80), &env);
        run(ct.as_mut(), udp(2, 80), &env);
        let state = ct.export_state().unwrap();
        let mut ct2 = ConnTracker::factory(&["MAX 4".into()], &env).unwrap();
        ct2.import_state(state);
        assert_eq!(ct2.read_handler("flows").as_deref(), Some("2"));
        // Transferred connections count as established, not new.
        assert_eq!(run(ct2.as_mut(), udp(1, 80), &env).0, 0);
        assert_eq!(ct2.read_handler("established").as_deref(), Some("1"));
    }

    #[test]
    fn factories_validate() {
        let env = ElementEnv::default();
        assert!(StatefulNat::factory(&[], &env).is_err());
        assert!(StatefulNat::factory(&["SRC nonsense".into()], &env).is_err());
        assert!(StatefulNat::factory(&["SRC 1.2.3.4".into(), "PORTS 9 5".into()], &env).is_err());
        assert!(TokenBucket::factory(&[], &env).is_err());
        assert!(TokenBucket::factory(&["RATE 0".into()], &env).is_err());
        assert!(TokenBucket::factory(&["SPEED 5".into()], &env).is_err());
        assert!(ConnTracker::factory(&["MAX 0".into()], &env).is_err());
        assert!(ConnTracker::factory(&["BOGUS".into()], &env).is_err());
    }
}
