//! `TLSDecrypt`: in-enclave decryption of application TLS traffic
//! (§III-D). The client's patched TLS library "forwards all negotiated
//! session keys to the trusted Click instance … The keys are used to
//! decrypt the packets inside a special Click element."
//!
//! Record format used by the reproduction's TLS shim: an 8-byte big-endian
//! record sequence number followed by AES-128-CTR ciphertext keyed by the
//! forwarded session key with the sequence number as nonce. Equal-length
//! plaintext replaces ciphertext in place, so downstream elements (the
//! IDS) inspect cleartext while packet sizes stay unchanged.

use crate::element::{Element, ElementContext, ElementEnv, FlowId};
use endbox_crypto::aes::Aes128;
use endbox_crypto::modes::ctr_xor;
use endbox_netsim::packet::IpProtocol;
use endbox_netsim::Packet;

/// Serialised record header length (sequence number).
pub const RECORD_HEADER_LEN: usize = 8;

fn nonce_for(seq: u64) -> [u8; 16] {
    let mut n = [0u8; 16];
    n[..8].copy_from_slice(b"endboxtl");
    n[8..].copy_from_slice(&seq.to_be_bytes());
    n
}

/// Encrypts `plaintext` into a record (used by the TLS shim on the client
/// application side).
pub fn seal_record(key: &[u8; 16], seq: u64, plaintext: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + plaintext.len());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(plaintext);
    let aes = Aes128::new(key);
    ctr_xor(&aes, &nonce_for(seq), &mut out[RECORD_HEADER_LEN..]);
    out
}

/// Decrypts a record, returning `(seq, plaintext)`; `None` if too short.
pub fn open_record(key: &[u8; 16], record: &[u8]) -> Option<(u64, Vec<u8>)> {
    if record.len() < RECORD_HEADER_LEN {
        return None;
    }
    let seq = u64::from_be_bytes(record[..RECORD_HEADER_LEN].try_into().unwrap());
    let mut pt = record[RECORD_HEADER_LEN..].to_vec();
    let aes = Aes128::new(key);
    ctr_xor(&aes, &nonce_for(seq), &mut pt);
    Some((seq, pt))
}

/// The decryption element. TCP packets whose flow has a registered session
/// key get their payload decrypted in place; all other packets pass
/// through unchanged.
#[derive(Debug, Default)]
pub struct TlsDecrypt {
    decrypted: u64,
    misses: u64,
}

impl TlsDecrypt {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        if !args.is_empty() {
            return Err("TLSDecrypt takes no arguments".into());
        }
        Ok(Box::<TlsDecrypt>::default())
    }
}

impl Element for TlsDecrypt {
    fn class_name(&self) -> &'static str {
        "TLSDecrypt"
    }

    fn process(&mut self, _port: usize, mut pkt: Packet, ctx: &mut ElementContext<'_>) {
        let header = pkt.header();
        if header.protocol == IpProtocol::Tcp {
            if let (Some(sport), Some(dport)) = (pkt.src_port(), pkt.dst_port()) {
                let flow = FlowId::new(header.src, sport, header.dst, dport);
                if let Some(key) = ctx.env.tls_keys.lookup(&flow) {
                    let payload = pkt.app_payload();
                    if let Some((seq, plaintext)) = open_record(&key, payload) {
                        ctx.env
                            .meter
                            .add(ctx.env.cost.crypto_cycles(plaintext.len()));
                        let mut rebuilt = Vec::with_capacity(RECORD_HEADER_LEN + plaintext.len());
                        rebuilt.extend_from_slice(&seq.to_be_bytes());
                        rebuilt.extend_from_slice(&plaintext);
                        pkt.replace_app_payload(&rebuilt);
                        self.decrypted += 1;
                        ctx.output(0, pkt);
                        return;
                    }
                }
            }
        }
        self.misses += 1;
        ctx.output(0, pkt);
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "decrypted" => Some(self.decrypted.to_string()),
            "misses" => Some(self.misses.to_string()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn run(elem: &mut dyn Element, p: Packet, env: &ElementEnv) -> Packet {
        let mut outputs = Vec::new();
        let mut emitted = Vec::new();
        let mut ctx = ElementContext::new(&mut outputs, &mut emitted, env);
        elem.process(0, p, &mut ctx);
        outputs.into_iter().next().unwrap().1
    }

    #[test]
    fn record_roundtrip() {
        let key = [0x42u8; 16];
        let rec = seal_record(&key, 7, b"GET /secret HTTP/1.1");
        let (seq, pt) = open_record(&key, &rec).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(pt, b"GET /secret HTTP/1.1");
        // Ciphertext differs from plaintext.
        assert_ne!(&rec[8..], b"GET /secret HTTP/1.1".as_slice());
    }

    #[test]
    fn different_seq_different_keystream() {
        let key = [1u8; 16];
        let a = seal_record(&key, 1, b"same plaintext");
        let b = seal_record(&key, 2, b"same plaintext");
        assert_ne!(a[8..], b[8..]);
    }

    #[test]
    fn decrypts_registered_flow() {
        let env = ElementEnv::default();
        let key = [9u8; 16];
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(93, 184, 216, 34);
        env.tls_keys
            .register(FlowId::new(src, 40000, dst, 443), key);

        let record = seal_record(&key, 3, b"confidential request body!");
        let pkt = Packet::tcp(src, dst, 40000, 443, 0, &record);
        let mut elem = TlsDecrypt::factory(&[], &env).unwrap();
        let out = run(elem.as_mut(), pkt, &env);
        assert_eq!(&out.app_payload()[8..], b"confidential request body!");
        assert_eq!(elem.read_handler("decrypted").as_deref(), Some("1"));
    }

    #[test]
    fn unknown_flow_passes_through_unchanged() {
        let env = ElementEnv::default();
        let key = [9u8; 16];
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(93, 184, 216, 34);
        let record = seal_record(&key, 3, b"still encrypted");
        let pkt = Packet::tcp(src, dst, 40000, 443, 0, &record);
        let original = pkt.clone();
        let mut elem = TlsDecrypt::factory(&[], &env).unwrap();
        let out = run(elem.as_mut(), pkt, &env);
        assert_eq!(out.bytes(), original.bytes());
        assert_eq!(elem.read_handler("misses").as_deref(), Some("1"));
    }

    #[test]
    fn non_tcp_ignored() {
        let env = ElementEnv::default();
        let pkt = Packet::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            b"u",
        );
        let mut elem = TlsDecrypt::factory(&[], &env).unwrap();
        let out = run(elem.as_mut(), pkt.clone(), &env);
        assert_eq!(out.bytes(), pkt.bytes());
    }

    #[test]
    fn short_record_is_a_miss() {
        let env = ElementEnv::default();
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(2, 2, 2, 2);
        env.tls_keys
            .register(FlowId::new(src, 1, dst, 443), [1u8; 16]);
        let pkt = Packet::tcp(src, dst, 1, 443, 0, b"abc"); // < 8 bytes
        let mut elem = TlsDecrypt::factory(&[], &env).unwrap();
        run(elem.as_mut(), pkt, &env);
        assert_eq!(elem.read_handler("misses").as_deref(), Some("1"));
    }
}
