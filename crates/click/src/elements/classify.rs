//! Classification and dispatch elements.

use crate::element::{Element, ElementContext, ElementEnv, ElementState};
use endbox_netsim::packet::{IpProtocol, Ipv4Header};
use endbox_netsim::{Packet, PacketBatch};
use std::net::Ipv4Addr;

/// Byte-pattern classifier (Click's `Classifier`). Each argument is a
/// space-separated list of `offset/hexbytes` terms; `-` matches
/// everything. The first matching argument's index selects the output
/// port; non-matching packets are dropped (as in Click).
/// One pattern: `(offset, expected bytes)` terms that must all match.
type BytePattern = Vec<(usize, Vec<u8>)>;

#[derive(Debug)]
pub struct Classifier {
    patterns: Vec<Option<BytePattern>>, // None = match-all
}

impl Classifier {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        if args.is_empty() {
            return Err("Classifier needs at least one pattern".into());
        }
        let mut patterns = Vec::with_capacity(args.len());
        for arg in args {
            if arg.trim() == "-" {
                patterns.push(None);
                continue;
            }
            let mut terms = Vec::new();
            for term in arg.split_whitespace() {
                let (off, hex) = term
                    .split_once('/')
                    .ok_or_else(|| format!("bad classifier term `{term}`"))?;
                let off: usize = off.parse().map_err(|_| format!("bad offset in `{term}`"))?;
                let bytes =
                    endbox_crypto::hex::decode(hex).map_err(|_| format!("bad hex in `{term}`"))?;
                if bytes.is_empty() {
                    return Err(format!("empty value in `{term}`"));
                }
                terms.push((off, bytes));
            }
            patterns.push(Some(terms));
        }
        Ok(Box::new(Classifier { patterns }))
    }

    fn matches(pattern: &[(usize, Vec<u8>)], data: &[u8]) -> bool {
        pattern.iter().all(|(off, bytes)| {
            data.len() >= off + bytes.len() && &data[*off..*off + bytes.len()] == bytes.as_slice()
        })
    }

    /// First matching pattern's output port, or `None` (drop).
    fn classify(&self, data: &[u8]) -> Option<usize> {
        self.patterns.iter().position(|pattern| match pattern {
            None => true,
            Some(terms) => Self::matches(terms, data),
        })
    }
}

impl Element for Classifier {
    fn class_name(&self) -> &'static str {
        "Classifier"
    }

    fn n_outputs(&self) -> usize {
        self.patterns.len()
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        if let Some(port) = self.classify(pkt.bytes()) {
            ctx.output(port, pkt);
        }
        // No match: dropped.
    }

    /// Vectorised fast path: classifies the whole batch in one tight loop
    /// with no per-packet virtual dispatch.
    fn process_batch(
        &mut self,
        _port: usize,
        batch: &mut PacketBatch,
        ctx: &mut ElementContext<'_>,
    ) {
        for pkt in batch.drain() {
            if let Some(port) = self.classify(pkt.bytes()) {
                ctx.output(port, pkt);
            }
        }
    }
}

/// A small IP-level classifier: each argument is one expression of
/// `tcp` / `udp` / `icmp` / `src|dst port N` / `src|dst host A.B.C.D`
/// terms joined with `and`; `-` matches everything.
#[derive(Debug)]
pub struct IpClassifier {
    exprs: Vec<Option<Vec<IpTerm>>>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum IpTerm {
    Proto(IpProtocol),
    SrcPort(u16),
    DstPort(u16),
    SrcHost(Ipv4Addr),
    DstHost(Ipv4Addr),
}

impl IpClassifier {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        if args.is_empty() {
            return Err("IPClassifier needs at least one expression".into());
        }
        let mut exprs = Vec::with_capacity(args.len());
        for arg in args {
            if arg.trim() == "-" {
                exprs.push(None);
                continue;
            }
            let mut terms = Vec::new();
            let tokens: Vec<&str> = arg.split_whitespace().collect();
            let mut i = 0;
            while i < tokens.len() {
                match tokens[i] {
                    "and" => i += 1,
                    "tcp" => {
                        terms.push(IpTerm::Proto(IpProtocol::Tcp));
                        i += 1;
                    }
                    "udp" => {
                        terms.push(IpTerm::Proto(IpProtocol::Udp));
                        i += 1;
                    }
                    "icmp" => {
                        terms.push(IpTerm::Proto(IpProtocol::Icmp));
                        i += 1;
                    }
                    dir @ ("src" | "dst") => {
                        let kind = tokens.get(i + 1).copied().ok_or("truncated expression")?;
                        let value = tokens.get(i + 2).copied().ok_or("truncated expression")?;
                        let term = match kind {
                            "port" => {
                                let p: u16 =
                                    value.parse().map_err(|_| format!("bad port `{value}`"))?;
                                if dir == "src" {
                                    IpTerm::SrcPort(p)
                                } else {
                                    IpTerm::DstPort(p)
                                }
                            }
                            "host" => {
                                let a: Ipv4Addr =
                                    value.parse().map_err(|_| format!("bad host `{value}`"))?;
                                if dir == "src" {
                                    IpTerm::SrcHost(a)
                                } else {
                                    IpTerm::DstHost(a)
                                }
                            }
                            other => return Err(format!("unknown selector `{dir} {other}`")),
                        };
                        terms.push(term);
                        i += 3;
                    }
                    other => return Err(format!("unknown IPClassifier token `{other}`")),
                }
            }
            exprs.push(Some(terms));
        }
        Ok(Box::new(IpClassifier { exprs }))
    }

    fn matches(terms: &[IpTerm], header: &Ipv4Header, pkt: &Packet) -> bool {
        terms.iter().all(|t| match t {
            IpTerm::Proto(p) => header.protocol == *p,
            IpTerm::SrcPort(p) => pkt.src_port() == Some(*p),
            IpTerm::DstPort(p) => pkt.dst_port() == Some(*p),
            IpTerm::SrcHost(a) => header.src == *a,
            IpTerm::DstHost(a) => header.dst == *a,
        })
    }
}

impl Element for IpClassifier {
    fn class_name(&self) -> &'static str {
        "IPClassifier"
    }

    fn n_outputs(&self) -> usize {
        self.exprs.len()
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        let header = pkt.header();
        for (i, expr) in self.exprs.iter().enumerate() {
            let hit = match expr {
                None => true,
                Some(terms) => Self::matches(terms, &header, &pkt),
            };
            if hit {
                ctx.output(i, pkt);
                return;
            }
        }
    }
}

/// Validates the IP header; valid packets to output 0, invalid to output 1
/// (dropped if unconnected).
#[derive(Debug, Default)]
pub struct CheckIpHeader {
    bad: u64,
}

impl CheckIpHeader {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        if !args.is_empty() {
            return Err("CheckIPHeader takes no arguments".into());
        }
        Ok(Box::<CheckIpHeader>::default())
    }
}

impl Element for CheckIpHeader {
    fn class_name(&self) -> &'static str {
        "CheckIPHeader"
    }

    fn n_outputs(&self) -> usize {
        2
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        match Ipv4Header::parse(pkt.bytes()) {
            Ok(_) => ctx.output(0, pkt),
            Err(_) => {
                self.bad += 1;
                ctx.output(1, pkt);
            }
        }
    }

    /// Vectorised fast path: header validation over the whole batch in one
    /// tight loop.
    fn process_batch(
        &mut self,
        _port: usize,
        batch: &mut PacketBatch,
        ctx: &mut ElementContext<'_>,
    ) {
        for pkt in batch.drain() {
            match Ipv4Header::parse(pkt.bytes()) {
                Ok(_) => ctx.output(0, pkt),
                Err(_) => {
                    self.bad += 1;
                    ctx.output(1, pkt);
                }
            }
        }
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        (name == "bad").then(|| self.bad.to_string())
    }
}

/// Round-robin packet dispatch across N outputs — the paper's load
/// balancing element ("The RoundRobinSwitch Click element allows us to
/// balance IP packets or TCP flows across several machines", §V-B).
#[derive(Debug)]
pub struct RoundRobinSwitch {
    n: usize,
    next: usize,
}

impl RoundRobinSwitch {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        let n = match args {
            [] => 2,
            [n] => n.parse().map_err(|_| format!("bad output count `{n}`"))?,
            _ => return Err("RoundRobinSwitch takes at most one argument".into()),
        };
        if n == 0 {
            return Err("RoundRobinSwitch needs at least one output".into());
        }
        Ok(Box::new(RoundRobinSwitch { n, next: 0 }))
    }
}

impl Element for RoundRobinSwitch {
    fn class_name(&self) -> &'static str {
        "RoundRobinSwitch"
    }

    fn n_outputs(&self) -> usize {
        self.n
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        ctx.env.meter.add(
            ctx.env
                .cost
                .lb_cycles(ctx.env.hardware_mode && ctx.env.in_enclave),
        );
        let port = self.next;
        self.next = (self.next + 1) % self.n;
        ctx.output(port, pkt);
    }

    fn export_state(&self) -> Option<ElementState> {
        Some(vec![("next".into(), self.next.to_string())])
    }

    fn import_state(&mut self, state: ElementState) {
        for (k, v) in state {
            if k == "next" {
                self.next = v.parse::<usize>().unwrap_or(0) % self.n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementEnv;

    fn pkt(proto: u8) -> Packet {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 1, 1);
        match proto {
            6 => Packet::tcp(src, dst, 40000, 80, 0, b"x"),
            17 => Packet::udp(src, dst, 40000, 53, b"x"),
            _ => Packet::icmp_echo_request(src, dst, 1, 1, b"x"),
        }
    }

    fn run(elem: &mut dyn Element, p: Packet) -> Vec<(usize, Packet)> {
        let env = ElementEnv::default();
        let mut outputs = Vec::new();
        let mut emitted = Vec::new();
        let mut ctx = ElementContext::new(&mut outputs, &mut emitted, &env);
        elem.process(0, p, &mut ctx);
        outputs
    }

    #[test]
    fn classifier_batch_matches_sequential() {
        let env = ElementEnv::default();
        let args = ["9/06".to_string(), "9/11".to_string(), "-".to_string()];
        let mut seq = Classifier::factory(&args, &env).unwrap();
        let mut bat = Classifier::factory(&args, &env).unwrap();
        let packets = [pkt(6), pkt(17), pkt(1), pkt(6)];

        let mut seq_ports = Vec::new();
        for p in packets.iter().cloned() {
            seq_ports.extend(run(seq.as_mut(), p).into_iter().map(|(port, _)| port));
        }
        let mut outputs = Vec::new();
        let mut emitted = Vec::new();
        let mut ctx = ElementContext::new(&mut outputs, &mut emitted, &env);
        let mut batch: PacketBatch = packets.into_iter().collect();
        bat.process_batch(0, &mut batch, &mut ctx);
        let bat_ports: Vec<usize> = outputs.iter().map(|(port, _)| *port).collect();
        assert_eq!(bat_ports, seq_ports);
    }

    #[test]
    fn classifier_matches_ip_proto_byte() {
        let env = ElementEnv::default();
        // Byte 9 of the IP header is the protocol: 06 TCP, 11 UDP.
        let mut c = Classifier::factory(&["9/06".into(), "9/11".into(), "-".into()], &env).unwrap();
        assert_eq!(run(c.as_mut(), pkt(6))[0].0, 0);
        assert_eq!(run(c.as_mut(), pkt(17))[0].0, 1);
        assert_eq!(run(c.as_mut(), pkt(1))[0].0, 2);
    }

    #[test]
    fn classifier_no_match_drops() {
        let env = ElementEnv::default();
        let mut c = Classifier::factory(&["9/06".into()], &env).unwrap();
        assert!(run(c.as_mut(), pkt(17)).is_empty());
    }

    #[test]
    fn ip_classifier_port_and_proto() {
        let env = ElementEnv::default();
        let mut c = IpClassifier::factory(
            &["tcp and dst port 80".into(), "udp".into(), "-".into()],
            &env,
        )
        .unwrap();
        assert_eq!(run(c.as_mut(), pkt(6))[0].0, 0);
        assert_eq!(run(c.as_mut(), pkt(17))[0].0, 1);
        assert_eq!(run(c.as_mut(), pkt(1))[0].0, 2);
    }

    #[test]
    fn ip_classifier_host_terms() {
        let env = ElementEnv::default();
        let mut c = IpClassifier::factory(&["src host 10.0.0.1".into(), "-".into()], &env).unwrap();
        assert_eq!(run(c.as_mut(), pkt(6))[0].0, 0);
    }

    #[test]
    fn round_robin_rotates_and_transfers_state() {
        let env = ElementEnv::default();
        let mut rr = RoundRobinSwitch::factory(&["3".into()], &env).unwrap();
        let ports: Vec<usize> = (0..5).map(|_| run(rr.as_mut(), pkt(6))[0].0).collect();
        assert_eq!(ports, vec![0, 1, 2, 0, 1]);
        let state = rr.export_state().unwrap();
        let mut rr2 = RoundRobinSwitch::factory(&["3".into()], &env).unwrap();
        rr2.import_state(state);
        assert_eq!(run(rr2.as_mut(), pkt(6))[0].0, 2);
    }

    #[test]
    fn check_ip_header_separates_bad_packets() {
        let env = ElementEnv::default();
        let mut c = CheckIpHeader::factory(&[], &env).unwrap();
        assert_eq!(run(c.as_mut(), pkt(6))[0].0, 0);
        assert_eq!(c.read_handler("bad").as_deref(), Some("0"));
    }

    #[test]
    fn factories_validate() {
        let env = ElementEnv::default();
        assert!(Classifier::factory(&[], &env).is_err());
        assert!(Classifier::factory(&["nonsense".into()], &env).is_err());
        assert!(Classifier::factory(&["4/zz".into()], &env).is_err());
        assert!(IpClassifier::factory(&["quux".into()], &env).is_err());
        assert!(IpClassifier::factory(&["src port x".into()], &env).is_err());
        assert!(RoundRobinSwitch::factory(&["0".into()], &env).is_err());
    }
}
