//! `IPFilter`: the firewall element ("We use the IPFilter Click element
//! without any code modifications. For our evaluation we use a set of 16
//! rules that do not match any packet", §V-B).
//!
//! Rule syntax (one rule per configuration argument, evaluated top-down;
//! first match decides):
//!
//! ```text
//! allow src host 10.0.0.1 && dst port 80
//! deny src net 192.168.0.0/16
//! drop proto udp && dst port 53
//! allow all
//! ```

use crate::element::{Element, ElementContext, ElementEnv};
use endbox_netsim::packet::IpProtocol;
use endbox_netsim::{Packet, PacketBatch};
use std::net::Ipv4Addr;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FilterAction {
    Allow,
    Deny,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Predicate {
    All,
    SrcHost(Ipv4Addr),
    DstHost(Ipv4Addr),
    SrcNet(Ipv4Addr, u8),
    DstNet(Ipv4Addr, u8),
    SrcPort(u16, u16),
    DstPort(u16, u16),
    Proto(IpProtocol),
}

impl Predicate {
    fn matches(&self, pkt: &Packet) -> bool {
        let header = pkt.header();
        match self {
            Predicate::All => true,
            Predicate::SrcHost(a) => header.src == *a,
            Predicate::DstHost(a) => header.dst == *a,
            Predicate::SrcNet(base, p) => in_net(header.src, *base, *p),
            Predicate::DstNet(base, p) => in_net(header.dst, *base, *p),
            Predicate::SrcPort(lo, hi) => pkt.src_port().is_some_and(|p| (*lo..=*hi).contains(&p)),
            Predicate::DstPort(lo, hi) => pkt.dst_port().is_some_and(|p| (*lo..=*hi).contains(&p)),
            Predicate::Proto(proto) => header.protocol == *proto,
        }
    }
}

fn in_net(addr: Ipv4Addr, base: Ipv4Addr, prefix: u8) -> bool {
    let mask = if prefix == 0 {
        0
    } else {
        u32::MAX << (32 - prefix as u32)
    };
    (u32::from(addr) & mask) == (u32::from(base) & mask)
}

#[derive(Debug, Clone)]
struct FilterRule {
    action: FilterAction,
    conjuncts: Vec<Predicate>,
}

impl FilterRule {
    fn matches(&self, pkt: &Packet) -> bool {
        self.conjuncts.iter().all(|p| p.matches(pkt))
    }
}

/// The firewall element. Allowed packets go to output 0; denied packets
/// go to output 1 if connected, otherwise they are dropped. Packets
/// matching no rule are allowed (configurations end with an explicit
/// catch-all in practice).
#[derive(Debug)]
pub struct IpFilter {
    rules: Vec<FilterRule>,
    allowed: u64,
    denied: u64,
}

impl IpFilter {
    /// Factory for the registry.
    pub fn factory(args: &[String], _env: &ElementEnv) -> Result<Box<dyn Element>, String> {
        if args.is_empty() {
            return Err("IPFilter needs at least one rule".into());
        }
        let rules = args
            .iter()
            .map(|a| parse_rule(a))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Box::new(IpFilter {
            rules,
            allowed: 0,
            denied: 0,
        }))
    }

    /// Number of configured rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    fn classify_one(&mut self, pkt: Packet, ctx: &mut ElementContext<'_>) {
        let action = self
            .rules
            .iter()
            .find(|r| r.matches(&pkt))
            .map_or(FilterAction::Allow, |r| r.action);
        match action {
            FilterAction::Allow => {
                self.allowed += 1;
                ctx.output(0, pkt);
            }
            FilterAction::Deny => {
                self.denied += 1;
                ctx.output(1, pkt);
            }
        }
    }
}

fn parse_rule(text: &str) -> Result<FilterRule, String> {
    let text = text.trim();
    let (action_tok, rest) = text
        .split_once(char::is_whitespace)
        .unwrap_or((text, "all"));
    let action = match action_tok {
        "allow" | "accept" | "pass" => FilterAction::Allow,
        "deny" | "drop" | "reject" => FilterAction::Deny,
        other => return Err(format!("unknown filter action `{other}`")),
    };
    let mut conjuncts = Vec::new();
    for clause in rest.split("&&") {
        conjuncts.push(parse_predicate(clause.trim())?);
    }
    Ok(FilterRule { action, conjuncts })
}

fn parse_predicate(clause: &str) -> Result<Predicate, String> {
    let toks: Vec<&str> = clause.split_whitespace().collect();
    match toks.as_slice() {
        ["all"] | [] => Ok(Predicate::All),
        ["proto", p] => match *p {
            "tcp" => Ok(Predicate::Proto(IpProtocol::Tcp)),
            "udp" => Ok(Predicate::Proto(IpProtocol::Udp)),
            "icmp" => Ok(Predicate::Proto(IpProtocol::Icmp)),
            other => Err(format!("unknown protocol `{other}`")),
        },
        [dir @ ("src" | "dst"), "host", addr] => {
            let a: Ipv4Addr = addr.parse().map_err(|_| format!("bad host `{addr}`"))?;
            Ok(if *dir == "src" {
                Predicate::SrcHost(a)
            } else {
                Predicate::DstHost(a)
            })
        }
        [dir @ ("src" | "dst"), "net", net] => {
            let (base, prefix) = net
                .split_once('/')
                .ok_or_else(|| format!("bad net `{net}`"))?;
            let base: Ipv4Addr = base.parse().map_err(|_| format!("bad net `{net}`"))?;
            let prefix: u8 = prefix.parse().map_err(|_| format!("bad net `{net}`"))?;
            if prefix > 32 {
                return Err(format!("prefix out of range `{net}`"));
            }
            Ok(if *dir == "src" {
                Predicate::SrcNet(base, prefix)
            } else {
                Predicate::DstNet(base, prefix)
            })
        }
        [dir @ ("src" | "dst"), "port", spec] => {
            let (lo, hi) = if let Some((lo, hi)) = spec.split_once('-') {
                (
                    lo.parse().map_err(|_| format!("bad port `{spec}`"))?,
                    hi.parse().map_err(|_| format!("bad port `{spec}`"))?,
                )
            } else {
                let p: u16 = spec.parse().map_err(|_| format!("bad port `{spec}`"))?;
                (p, p)
            };
            if lo > hi {
                return Err(format!("inverted port range `{spec}`"));
            }
            Ok(if *dir == "src" {
                Predicate::SrcPort(lo, hi)
            } else {
                Predicate::DstPort(lo, hi)
            })
        }
        _ => Err(format!("cannot parse predicate `{clause}`")),
    }
}

impl Element for IpFilter {
    fn class_name(&self) -> &'static str {
        "IPFilter"
    }

    fn n_outputs(&self) -> usize {
        2
    }

    fn process(&mut self, _port: usize, pkt: Packet, ctx: &mut ElementContext<'_>) {
        ctx.env.meter.add(ctx.env.cost.fw_cycles(self.rules.len()));
        self.classify_one(pkt, ctx);
    }

    /// Vectorised fast path: one rule-cost meter charge for the whole
    /// batch, one tight classification loop (identical totals and
    /// per-packet outcomes to the sequential path).
    fn process_batch(
        &mut self,
        _port: usize,
        batch: &mut PacketBatch,
        ctx: &mut ElementContext<'_>,
    ) {
        ctx.env
            .meter
            .add(ctx.env.cost.fw_cycles(self.rules.len()) * batch.len() as u64);
        for pkt in batch.drain() {
            self.classify_one(pkt, ctx);
        }
    }

    fn read_handler(&self, name: &str) -> Option<String> {
        match name {
            "allowed" => Some(self.allowed.to_string()),
            "denied" => Some(self.denied.to_string()),
            "rules" => Some(self.rules.len().to_string()),
            _ => None,
        }
    }
}

/// The paper's evaluation firewall: 16 rules that match no evaluation
/// packet, ending in an allow-all (§V-B).
pub fn evaluation_rules() -> Vec<String> {
    let mut rules: Vec<String> = (0..15)
        .map(|i| {
            format!(
                "deny src host 203.0.113.{} && dst port {}",
                i + 1,
                20_000 + i * 13
            )
        })
        .collect();
    rules.push("allow all".to_string());
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementEnv;

    fn tcp(dst_port: u16) -> Packet {
        Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 5),
            Ipv4Addr::new(10, 0, 1, 9),
            40000,
            dst_port,
            0,
            b"p",
        )
    }

    fn run(f: &mut dyn Element, p: Packet) -> Vec<(usize, Packet)> {
        let env = ElementEnv::default();
        let mut outputs = Vec::new();
        let mut emitted = Vec::new();
        let mut ctx = ElementContext::new(&mut outputs, &mut emitted, &env);
        f.process(0, p, &mut ctx);
        outputs
    }

    #[test]
    fn first_match_decides() {
        let env = ElementEnv::default();
        let mut f = IpFilter::factory(
            &[
                "deny dst port 23".into(),
                "allow all".into(),
                "deny all".into(),
            ],
            &env,
        )
        .unwrap();
        assert_eq!(run(f.as_mut(), tcp(23))[0].0, 1); // denied
        assert_eq!(run(f.as_mut(), tcp(80))[0].0, 0); // allowed by rule 2
        assert_eq!(f.read_handler("allowed").as_deref(), Some("1"));
        assert_eq!(f.read_handler("denied").as_deref(), Some("1"));
    }

    #[test]
    fn conjunction_requires_all_terms() {
        let env = ElementEnv::default();
        let mut f = IpFilter::factory(
            &[
                "deny src host 10.0.0.5 && dst port 22".into(),
                "allow all".into(),
            ],
            &env,
        )
        .unwrap();
        assert_eq!(run(f.as_mut(), tcp(22))[0].0, 1);
        assert_eq!(run(f.as_mut(), tcp(80))[0].0, 0); // port differs
    }

    #[test]
    fn net_and_range_predicates() {
        let env = ElementEnv::default();
        let mut f = IpFilter::factory(
            &[
                "deny dst net 10.0.1.0/24 && dst port 1000-2000".into(),
                "allow all".into(),
            ],
            &env,
        )
        .unwrap();
        assert_eq!(run(f.as_mut(), tcp(1500))[0].0, 1);
        assert_eq!(run(f.as_mut(), tcp(2500))[0].0, 0);
    }

    #[test]
    fn proto_predicate() {
        let env = ElementEnv::default();
        let mut f =
            IpFilter::factory(&["deny proto udp".into(), "allow all".into()], &env).unwrap();
        let udp = Packet::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            b"u",
        );
        assert_eq!(run(f.as_mut(), udp)[0].0, 1);
        assert_eq!(run(f.as_mut(), tcp(80))[0].0, 0);
    }

    #[test]
    fn evaluation_rules_match_nothing() {
        let env = ElementEnv::default();
        let mut f = IpFilter::factory(&evaluation_rules(), &env).unwrap();
        assert_eq!(evaluation_rules().len(), 16);
        for port in [80, 443, 5001, 22] {
            assert_eq!(run(f.as_mut(), tcp(port))[0].0, 0, "port {port} must pass");
        }
    }

    #[test]
    fn charges_per_rule_cost() {
        let env = ElementEnv::default();
        let mut f = IpFilter::factory(&evaluation_rules(), &env).unwrap();
        env.meter.take();
        let mut outputs = Vec::new();
        let mut emitted = Vec::new();
        let mut ctx = crate::element::ElementContext::new(&mut outputs, &mut emitted, &env);
        f.process(0, tcp(80), &mut ctx);
        assert_eq!(env.meter.read(), env.cost.fw_cycles(16));
    }

    #[test]
    fn batch_fast_path_matches_sequential() {
        let env = ElementEnv::default();
        let rules = vec!["deny dst port 23".to_string(), "allow all".to_string()];
        let mut seq = IpFilter::factory(&rules, &env).unwrap();
        let mut bat = IpFilter::factory(&rules, &env).unwrap();
        let packets: Vec<Packet> = [23u16, 80, 23, 443].iter().map(|&p| tcp(p)).collect();

        let mut seq_ports = Vec::new();
        for p in packets.iter().cloned() {
            for (port, _) in run(seq.as_mut(), p) {
                seq_ports.push(port);
            }
        }

        env.meter.take();
        let mut outputs = Vec::new();
        let mut emitted = Vec::new();
        let mut ctx = ElementContext::new(&mut outputs, &mut emitted, &env);
        let mut batch: PacketBatch = packets.into_iter().collect();
        bat.process_batch(0, &mut batch, &mut ctx);
        let bat_ports: Vec<usize> = outputs.iter().map(|(p, _)| *p).collect();
        assert_eq!(bat_ports, seq_ports);
        assert_eq!(
            env.meter.take(),
            env.cost.fw_cycles(2) * 4,
            "one coalesced charge"
        );
        assert_eq!(bat.read_handler("denied").as_deref(), Some("2"));
    }

    #[test]
    fn rejects_bad_rules() {
        let env = ElementEnv::default();
        for bad in [
            "explode all",
            "deny src host not-an-ip",
            "deny dst net 10.0.0.0",
            "deny dst net 10.0.0.0/40",
            "deny src port 10-5",
            "deny proto ospf",
            "deny frobnicate 7",
        ] {
            assert!(
                IpFilter::factory(&[bad.to_string()], &env).is_err(),
                "{bad}"
            );
        }
        assert!(IpFilter::factory(&[], &env).is_err());
    }
}
