//! The router: instantiates a parsed configuration into an element graph,
//! pushes packets (singly or as whole batches) through it, and hot-swaps
//! configurations at runtime.
//!
//! # Batched datapath
//!
//! [`Router::process`] pushes one packet; [`Router::process_batch`]
//! pushes a whole [`PacketBatch`] with one graph traversal, calling each
//! element's [`Element::process_batch`] over every packet queued at that
//! element. All per-traversal state (the work queues, the per-element
//! pending queues, the output scratch) lives in the `Router` and is
//! recycled across calls, so the steady-state hot path allocates nothing.
//!
//! Batch processing is equivalent to pushing the same packets one at a
//! time for **linear pipelines** (every evaluation use case): per-element
//! arrival order preserves the input order, handler-visible element state
//! evolves identically, total cycle charges match, and the emitted packet
//! sequence is byte-identical — property-tested in
//! `tests/batch_parity.rs`. For fan-out configurations the batched
//! scheduler processes per element rather than depth-first per packet, so
//! emission order differs (`Tee` into several `ToDevice`s groups
//! emissions per exit element), and where fan-out paths *re-merge* into
//! an order-sensitive stateful element (e.g. two `Tee` branches feeding
//! one `RoundRobinSwitch`) the interleaving seen by that element — and
//! hence its routing decisions — can diverge from the single-packet
//! path's.

use crate::config::ConfigGraph;
use crate::element::{Element, ElementContext, ElementEnv};
use crate::error::ClickError;
use crate::registry::ElementRegistry;
use endbox_netsim::packet::Verdict;
use endbox_netsim::{Packet, PacketBatch};
use std::collections::VecDeque;

/// Result of pushing one packet through the router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterOutput {
    /// Packets emitted by `ToDevice` elements (verdict `Accept`).
    pub emitted: Vec<Packet>,
    /// True if at least one packet was emitted — the signal the modified
    /// `ToDevice` gives OpenVPN (§IV).
    pub accepted: bool,
    /// Packets discarded because an element pushed them to an unconnected
    /// output port. Previously these vanished silently; the counter makes
    /// configuration gaps observable.
    pub dropped: u64,
}

/// Result of pushing a [`PacketBatch`] through the router.
#[derive(Debug)]
pub struct BatchOutput {
    /// Packets emitted by `ToDevice` elements, each carrying the
    /// `batch_slot` annotation of the input packet it originated from.
    pub emitted: PacketBatch,
    /// Per input packet (by batch position): `Accept` if at least one
    /// emission originated from it, `Drop` otherwise.
    pub verdicts: Vec<Verdict>,
    /// Number of input packets with verdict `Accept`.
    pub accepted: usize,
    /// Packets discarded at unconnected output ports.
    pub dropped: u64,
}

impl BatchOutput {
    /// First emitted packet per input slot (slot-indexed; `None` for
    /// inputs with no emission), with the batch-slot annotation cleared.
    ///
    /// This mirrors the single-packet hot path, which seals exactly the
    /// *first* emission of each accepted packet.
    pub fn first_emissions_by_slot(self) -> Vec<Option<Packet>> {
        let mut by_slot: Vec<Option<Packet>> = (0..self.verdicts.len()).map(|_| None).collect();
        for mut pkt in self.emitted {
            if let Some(slot) = pkt.meta.batch_slot {
                let cell = &mut by_slot[slot as usize];
                if cell.is_none() {
                    pkt.meta.batch_slot = None;
                    *cell = Some(pkt);
                }
            }
        }
        by_slot
    }

    /// First emitted packet of each accepted input, in input order, with
    /// the batch-slot annotation cleared.
    pub fn into_first_emissions(self) -> Vec<Packet> {
        self.first_emissions_by_slot()
            .into_iter()
            .flatten()
            .collect()
    }
}

/// A running Click router.
pub struct Router {
    elements: Vec<Box<dyn Element>>,
    names: Vec<String>,
    classes: Vec<String>,
    /// `out_edges[element][out_port] = Some((to_element, to_port))`.
    out_edges: Vec<Vec<Option<(usize, usize)>>>,
    entry: Option<usize>,
    env: ElementEnv,
    config_text: String,
    hotswaps: u64,
    /// Single-packet traversal worklist (allocation reused across calls).
    scratch_queue: VecDeque<(usize, usize, Packet)>,
    /// Element-output scratch handed to every `ElementContext`.
    scratch_outputs: Vec<(usize, Packet)>,
    /// Per-element pending queues for batch traversal.
    pending: Vec<VecDeque<(usize, Packet)>>,
    /// Batch handed to `Element::process_batch` (allocation reused).
    scratch_batch: PacketBatch,
    /// Packets dropped at unconnected ports during a batch traversal,
    /// recycled to their pools in one `give_many` at the end instead of
    /// one lock round-trip per packet.
    scratch_drops: Vec<Packet>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("elements", &self.names)
            .field("hotswaps", &self.hotswaps)
            .finish()
    }
}

struct BuiltGraph {
    elements: Vec<Box<dyn Element>>,
    names: Vec<String>,
    classes: Vec<String>,
    out_edges: Vec<Vec<Option<(usize, usize)>>>,
    entry: Option<usize>,
}

fn build(
    graph: &ConfigGraph,
    registry: &ElementRegistry,
    env: &ElementEnv,
) -> Result<BuiltGraph, ClickError> {
    let mut elements = Vec::with_capacity(graph.elements.len());
    let mut names = Vec::with_capacity(graph.elements.len());
    let mut classes = Vec::with_capacity(graph.elements.len());
    for decl in &graph.elements {
        let element = registry.create(&decl.name, &decl.class, &decl.args, env)?;
        names.push(decl.name.clone());
        classes.push(decl.class.clone());
        elements.push(element);
    }

    let mut out_edges: Vec<Vec<Option<(usize, usize)>>> =
        elements.iter().map(|e| vec![None; e.n_outputs()]).collect();
    for conn in &graph.connections {
        let n_out = elements[conn.from].n_outputs();
        if conn.from_port >= n_out {
            return Err(ClickError::BadConnection(format!(
                "`{}` has {} output(s), port {} out of range",
                names[conn.from], n_out, conn.from_port
            )));
        }
        let n_in = elements[conn.to].n_inputs();
        if conn.to_port >= n_in {
            return Err(ClickError::BadConnection(format!(
                "`{}` has {} input(s), port {} out of range",
                names[conn.to], n_in, conn.to_port
            )));
        }
        if out_edges[conn.from][conn.from_port].is_some() {
            return Err(ClickError::BadConnection(format!(
                "output {}[{}] connected twice",
                names[conn.from], conn.from_port
            )));
        }
        out_edges[conn.from][conn.from_port] = Some((conn.to, conn.to_port));
    }

    let entry = classes.iter().position(|c| c == "FromDevice");
    Ok(BuiltGraph {
        elements,
        names,
        classes,
        out_edges,
        entry,
    })
}

impl Router {
    /// Parses and instantiates `config_text` with the standard registry.
    ///
    /// # Errors
    ///
    /// Propagates parse, class-lookup, configuration and connection
    /// errors.
    pub fn from_config(config_text: &str, env: ElementEnv) -> Result<Router, ClickError> {
        Self::from_config_with_registry(config_text, env, &ElementRegistry::standard())
    }

    /// Same as [`Router::from_config`] with a caller-provided registry.
    ///
    /// # Errors
    ///
    /// See [`Router::from_config`].
    pub fn from_config_with_registry(
        config_text: &str,
        env: ElementEnv,
        registry: &ElementRegistry,
    ) -> Result<Router, ClickError> {
        let graph = ConfigGraph::parse(config_text)?;
        let built = build(&graph, registry, &env)?;
        let n = built.elements.len();
        let mut pending = Vec::with_capacity(n);
        pending.resize_with(n, VecDeque::new);
        Ok(Router {
            elements: built.elements,
            names: built.names,
            classes: built.classes,
            out_edges: built.out_edges,
            entry: built.entry,
            env,
            config_text: config_text.to_string(),
            hotswaps: 0,
            scratch_queue: VecDeque::with_capacity(4),
            scratch_outputs: Vec::with_capacity(4),
            pending,
            scratch_batch: PacketBatch::new(),
            scratch_drops: Vec::new(),
        })
    }

    /// Pushes one packet into the router at its `FromDevice` entry and runs
    /// it to completion. Returns emitted packets, the accept/reject
    /// verdict, and the unconnected-port drop count.
    pub fn process(&mut self, pkt: Packet) -> RouterOutput {
        let mut emitted = Vec::new();
        let mut dropped = 0u64;
        let Some(entry) = self.entry else {
            // No FromDevice: nothing to do, packet rejected.
            return RouterOutput {
                emitted,
                accepted: false,
                dropped,
            };
        };
        // Scratch buffers are moved out of `self` for the traversal so the
        // element calls can borrow `self.elements` mutably; their
        // allocations return afterwards.
        let mut queue = std::mem::take(&mut self.scratch_queue);
        let mut outputs = std::mem::take(&mut self.scratch_outputs);
        queue.push_back((entry, 0, pkt));
        while let Some((idx, port, pkt)) = queue.pop_front() {
            self.env.meter.add(self.env.cost.click_element_base);
            let mut ctx = ElementContext::new(&mut outputs, &mut emitted, &self.env);
            self.elements[idx].process(port, pkt, &mut ctx);
            for (out_port, mut out_pkt) in outputs.drain(..) {
                match self.out_edges[idx].get(out_port).copied().flatten() {
                    Some((to, to_port)) => queue.push_back((to, to_port, out_pkt)),
                    None => {
                        // Packet pushed to an unconnected port: dropped.
                        out_pkt.meta.verdict = Verdict::Drop;
                        dropped += 1;
                    }
                }
            }
        }
        self.scratch_queue = queue;
        self.scratch_outputs = outputs;
        let accepted = !emitted.is_empty();
        RouterOutput {
            emitted,
            accepted,
            dropped,
        }
    }

    /// Pushes a whole batch through the router in one traversal.
    ///
    /// Packets are queued per element and handed to
    /// [`Element::process_batch`] together, so hot elements amortise their
    /// fixed costs across the batch. See the module docs for the
    /// equivalence guarantees relative to N single [`Router::process`]
    /// calls.
    pub fn process_batch(&mut self, mut batch: PacketBatch) -> BatchOutput {
        let n_in = batch.len();
        let mut emitted: Vec<Packet> = Vec::with_capacity(n_in);
        let mut dropped = 0u64;
        let Some(entry) = self.entry else {
            batch.clear();
            return BatchOutput {
                emitted: PacketBatch::new(),
                verdicts: vec![Verdict::Drop; n_in],
                accepted: 0,
                dropped,
            };
        };

        let mut pending = std::mem::take(&mut self.pending);
        if pending.len() != self.elements.len() {
            pending.clear();
            pending.resize_with(self.elements.len(), VecDeque::new);
        }
        for (slot, mut pkt) in batch.drain().enumerate() {
            pkt.meta.batch_slot = Some(slot as u32);
            pending[entry].push_back((0usize, pkt));
        }

        let mut outputs = std::mem::take(&mut self.scratch_outputs);
        let mut work = std::mem::take(&mut self.scratch_batch);
        let mut drops = std::mem::take(&mut self.scratch_drops);
        while let Some(idx) = (0..self.elements.len()).find(|&i| !pending[i].is_empty()) {
            // Longest same-input-port run currently queued at `idx`.
            let port = pending[idx].front().expect("non-empty").0;
            work.clear();
            while pending[idx].front().is_some_and(|&(p, _)| p == port) {
                work.push(pending[idx].pop_front().expect("checked front").1);
            }
            self.env
                .meter
                .add(self.env.cost.click_element_base * work.len() as u64);
            let mut ctx = ElementContext::new(&mut outputs, &mut emitted, &self.env);
            self.elements[idx].process_batch(port, &mut work, &mut ctx);
            for (out_port, mut out_pkt) in outputs.drain(..) {
                match self.out_edges[idx].get(out_port).copied().flatten() {
                    Some((to, to_port)) => pending[to].push_back((to_port, out_pkt)),
                    None => {
                        out_pkt.meta.verdict = Verdict::Drop;
                        dropped += 1;
                        drops.push(out_pkt);
                    }
                }
            }
        }
        // Batch-granular recycling: all unconnected-port drops return
        // their buffers under one pool lock acquisition.
        endbox_netsim::recycle_packets(drops.drain(..));
        self.pending = pending;
        self.scratch_outputs = outputs;
        self.scratch_batch = work;
        self.scratch_drops = drops;

        let mut verdicts = vec![Verdict::Drop; n_in];
        let mut accepted = 0usize;
        for pkt in &emitted {
            // The sharded server's re-merge relies on every emission
            // carrying a valid slot annotation for its originating input.
            debug_assert!(
                pkt.meta.batch_slot.is_some_and(|s| (s as usize) < n_in),
                "batched emission lost its batch_slot annotation"
            );
            if let Some(slot) = pkt.meta.batch_slot {
                let v = &mut verdicts[slot as usize];
                if *v != Verdict::Accept {
                    *v = Verdict::Accept;
                    accepted += 1;
                }
            }
        }
        BatchOutput {
            emitted: PacketBatch::from(emitted),
            verdicts,
            accepted,
            dropped,
        }
    }

    /// Hot-swaps to a new configuration, transferring state between
    /// same-name same-class elements ("we adapt the hot-swapping mechanism
    /// to work with configuration files stored in memory", §IV). On error
    /// the old configuration keeps running.
    ///
    /// # Errors
    ///
    /// Any parse/build error for the new configuration; the router is
    /// unchanged in that case.
    pub fn hot_swap(&mut self, new_config: &str) -> Result<(), ClickError> {
        let registry = ElementRegistry::standard();
        let graph = ConfigGraph::parse(new_config)?;
        let mut built = build(&graph, &registry, &self.env)?;

        // Charge the hot-swap cost model (Table II): parse + instantiate,
        // plus device setup when this Click owns its devices (vanilla).
        let cost = &self.env.cost;
        let mut cycles = cost.hotswap_base + cost.element_instantiate * built.elements.len() as u64;
        if self.env.device_io {
            cycles += cost.device_setup;
        }
        self.env.meter.add(cycles);

        // State transfer: match by (name, class).
        for (new_idx, name) in built.names.iter().enumerate() {
            let matching_old = self
                .names
                .iter()
                .position(|n| n == name)
                .filter(|&old_idx| self.classes[old_idx] == built.classes[new_idx]);
            if let Some(old_idx) = matching_old {
                if let Some(state) = self.elements[old_idx].export_state() {
                    built.elements[new_idx].import_state(state);
                }
            }
        }

        self.elements = built.elements;
        self.names = built.names;
        self.classes = built.classes;
        self.out_edges = built.out_edges;
        self.entry = built.entry;
        self.config_text = new_config.to_string();
        self.hotswaps += 1;
        // The per-element pending queues must track the new graph size.
        self.pending.clear();
        self.pending.resize_with(self.elements.len(), VecDeque::new);
        Ok(())
    }

    /// Reads a handler on a named element (e.g. `("counter", "count")`).
    pub fn read_handler(&self, element: &str, handler: &str) -> Option<String> {
        let idx = self.names.iter().position(|n| n == element)?;
        self.elements[idx].read_handler(handler)
    }

    /// Writes a handler on a named element.
    ///
    /// # Errors
    ///
    /// [`ClickError::Handler`] if the element or handler does not exist.
    pub fn write_handler(
        &mut self,
        element: &str,
        handler: &str,
        value: &str,
    ) -> Result<(), ClickError> {
        let idx = self
            .names
            .iter()
            .position(|n| n == element)
            .ok_or_else(|| ClickError::Handler(format!("no element `{element}`")))?;
        self.elements[idx].write_handler(handler, value)
    }

    /// Element instance names in declaration order.
    pub fn element_names(&self) -> &[String] {
        &self.names
    }

    /// The currently active configuration text.
    pub fn config_text(&self) -> &str {
        &self.config_text
    }

    /// Number of successful hot-swaps.
    pub fn hotswap_count(&self) -> u64 {
        self.hotswaps
    }

    /// The router's environment.
    pub fn env(&self) -> &ElementEnv {
        &self.env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn pkt() -> Packet {
        Packet::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            1,
            2,
            b"payload",
        )
    }

    #[test]
    fn nop_config_forwards() {
        let mut r =
            Router::from_config("FromDevice(tun0) -> ToDevice(tun0);", ElementEnv::default())
                .unwrap();
        let out = r.process(pkt());
        assert!(out.accepted);
        assert_eq!(out.emitted.len(), 1);
        assert_eq!(out.emitted[0].meta.verdict, Verdict::Accept);
    }

    #[test]
    fn discard_rejects() {
        let mut r =
            Router::from_config("FromDevice(tun0) -> Discard;", ElementEnv::default()).unwrap();
        let out = r.process(pkt());
        assert!(!out.accepted);
        assert!(out.emitted.is_empty());
    }

    #[test]
    fn unconnected_port_drops() {
        // IPFilter's deny port (1) is unconnected: denied packets are
        // dropped — and now counted instead of vanishing silently.
        let mut r = Router::from_config(
            "FromDevice(t) -> f :: IPFilter(deny dst port 2, allow all) -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        let out = r.process(pkt()); // dst port 2 -> denied
        assert!(!out.accepted);
        assert_eq!(out.dropped, 1, "unconnected-port drop must be observable");
        assert_eq!(r.read_handler("f", "denied").as_deref(), Some("1"));

        // Accepted packets record no drops.
        let ok = Packet::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            1,
            99,
            b"x",
        );
        let out = r.process(ok);
        assert!(out.accepted);
        assert_eq!(out.dropped, 0);
    }

    #[test]
    fn batch_matches_single_packet_path() {
        let config = "FromDevice(t) -> c :: Counter \
                      -> f :: IPFilter(deny dst port 2, allow all) -> ToDevice(t);";
        let mut single = Router::from_config(config, ElementEnv::default()).unwrap();
        let mut batched = Router::from_config(config, ElementEnv::default()).unwrap();

        let packets: Vec<Packet> = (0..8)
            .map(|i| {
                Packet::udp(
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 1, 1),
                    1,
                    if i % 3 == 0 { 2 } else { 40 + i }, // every third denied
                    b"payload",
                )
            })
            .collect();

        let mut single_emitted = Vec::new();
        let mut single_verdicts = Vec::new();
        for p in packets.iter().cloned() {
            let out = single.process(p);
            single_verdicts.push(if out.accepted {
                Verdict::Accept
            } else {
                Verdict::Drop
            });
            single_emitted.extend(out.emitted);
        }

        let out = batched.process_batch(PacketBatch::from(packets));
        assert_eq!(out.verdicts, single_verdicts);
        assert_eq!(out.accepted, 5);
        assert_eq!(out.dropped, 3);
        let batch_bytes: Vec<&[u8]> = out.emitted.iter().map(Packet::bytes).collect();
        let single_bytes: Vec<&[u8]> = single_emitted.iter().map(Packet::bytes).collect();
        assert_eq!(batch_bytes, single_bytes);
        // Element state (Counter) evolved identically.
        assert_eq!(
            single.read_handler("c", "count"),
            batched.read_handler("c", "count")
        );
    }

    #[test]
    fn batch_charges_same_cycles_as_singles() {
        let config = "FromDevice(t) -> f :: IPFilter(deny dst port 2, allow all) \
                      -> ids :: IDSMatcher(COMMUNITY 20) -> ToDevice(t); ids[1] -> Discard;";
        let env_a = ElementEnv::default();
        let meter_a = env_a.meter.clone();
        let mut single = Router::from_config(config, env_a).unwrap();
        let env_b = ElementEnv::default();
        let meter_b = env_b.meter.clone();
        let mut batched = Router::from_config(config, env_b).unwrap();

        let packets: Vec<Packet> = (0..6).map(|_| pkt()).collect();
        meter_a.take();
        for p in packets.iter().cloned() {
            single.process(p);
        }
        meter_b.take();
        batched.process_batch(PacketBatch::from(packets));
        assert_eq!(
            meter_a.take(),
            meter_b.take(),
            "batching must not change cycle totals"
        );
    }

    #[test]
    fn batch_emitted_carry_slot_annotations() {
        let mut r =
            Router::from_config("FromDevice(t) -> ToDevice(t);", ElementEnv::default()).unwrap();
        let batch: PacketBatch = (0..3).map(|_| pkt()).collect();
        let out = r.process_batch(batch);
        let slots: Vec<Option<u32>> = out.emitted.iter().map(|p| p.meta.batch_slot).collect();
        assert_eq!(slots, vec![Some(0), Some(1), Some(2)]);
        assert!(out
            .emitted
            .iter()
            .all(|p| p.meta.verdict == Verdict::Accept));
    }

    #[test]
    fn fan_out_batch_remerge_order_is_pinned() {
        // Regression pin for the documented fan-out caveat: the batched
        // scheduler runs per element, so a Tee into two ToDevices emits
        // *grouped per exit element* (all of branch 0 first, then all of
        // branch 1), each group in input (batch-slot) order. The sharded
        // server's deterministic re-merge builds on exactly this order;
        // if the scheduler changes, this test must be revisited together
        // with `BatchOutput::first_emissions_by_slot`.
        let mut r = Router::from_config(
            "FromDevice(t) -> tee :: Tee(2); tee[0] -> ToDevice(t); tee[1] -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        let out = r.process_batch((0..3).map(|_| pkt()).collect());
        let slots: Vec<Option<u32>> = out.emitted.iter().map(|p| p.meta.batch_slot).collect();
        assert_eq!(
            slots,
            vec![Some(0), Some(1), Some(2), Some(0), Some(1), Some(2)],
            "emissions grouped per exit element, slot-ordered within each group"
        );
        assert_eq!(out.accepted, 3);
        // And the slot-indexed re-merge picks the *first* emission of each
        // input, in input order.
        let firsts = out.into_first_emissions();
        let first_slots: Vec<Option<u32>> = firsts.iter().map(|p| p.meta.batch_slot).collect();
        assert_eq!(first_slots, vec![None, None, None], "annotation cleared");
        assert_eq!(firsts.len(), 3);
    }

    #[test]
    fn batched_drops_recycle_buffers_under_one_lock() {
        use endbox_netsim::BufferPool;
        // Every packet is denied and lands on IPFilter's unconnected deny
        // port; the batch path must give all buffers back in one
        // `give_many` call.
        let mut r = Router::from_config(
            "FromDevice(t) -> f :: IPFilter(deny dst port 2, allow all) -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        let pool = BufferPool::new();
        let batch: PacketBatch = (0..6)
            .map(|_| {
                Packet::udp_in(
                    &pool,
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 1, 1),
                    1,
                    2,
                    b"denied",
                )
            })
            .collect();
        let before = pool.stats();
        let out = r.process_batch(batch);
        assert_eq!(out.dropped, 6);
        let after = pool.stats();
        assert_eq!(after.returned - before.returned, 6, "all buffers recycled");
        assert_eq!(
            after.batched_ops - before.batched_ops,
            1,
            "one pool lock for the whole drop batch"
        );
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut r =
            Router::from_config("FromDevice(t) -> ToDevice(t);", ElementEnv::default()).unwrap();
        let out = r.process_batch(PacketBatch::new());
        assert_eq!(out.accepted, 0);
        assert!(out.emitted.is_empty());
        assert!(out.verdicts.is_empty());
    }

    #[test]
    fn batch_after_hotswap_uses_new_graph() {
        let mut r =
            Router::from_config("FromDevice(t) -> ToDevice(t);", ElementEnv::default()).unwrap();
        r.process_batch((0..4).map(|_| pkt()).collect());
        r.hot_swap("FromDevice(t) -> Discard;").unwrap();
        let out = r.process_batch((0..4).map(|_| pkt()).collect());
        assert_eq!(out.accepted, 0, "new config discards everything");
    }

    #[test]
    fn tee_emits_multiple() {
        let mut r = Router::from_config(
            "FromDevice(t) -> tee :: Tee(2); tee[0] -> ToDevice(t); tee[1] -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        let out = r.process(pkt());
        assert_eq!(out.emitted.len(), 2);
    }

    #[test]
    fn handlers_reachable_by_name() {
        let mut r = Router::from_config(
            "FromDevice(t) -> c :: Counter -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        r.process(pkt());
        r.process(pkt());
        assert_eq!(r.read_handler("c", "count").as_deref(), Some("2"));
        r.write_handler("c", "reset", "").unwrap();
        assert_eq!(r.read_handler("c", "count").as_deref(), Some("0"));
        assert!(r.read_handler("nope", "count").is_none());
        assert!(r.write_handler("c", "bogus", "").is_err());
    }

    #[test]
    fn hotswap_preserves_counter_state() {
        let mut r = Router::from_config(
            "FromDevice(t) -> c :: Counter -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        r.process(pkt());
        r.hot_swap("FromDevice(t) -> c :: Counter -> f :: IPFilter(allow all) -> ToDevice(t);")
            .unwrap();
        assert_eq!(
            r.read_handler("c", "count").as_deref(),
            Some("1"),
            "state transferred"
        );
        r.process(pkt());
        assert_eq!(r.read_handler("c", "count").as_deref(), Some("2"));
        assert_eq!(r.hotswap_count(), 1);
    }

    #[test]
    fn hotswap_failure_keeps_old_config() {
        let mut r =
            Router::from_config("FromDevice(t) -> ToDevice(t);", ElementEnv::default()).unwrap();
        let old = r.config_text().to_string();
        assert!(r
            .hot_swap("FromDevice(t) -> NoSuchElement -> ToDevice(t);")
            .is_err());
        assert_eq!(r.config_text(), old);
        assert!(r.process(pkt()).accepted, "old config still works");
        assert_eq!(r.hotswap_count(), 0);
    }

    #[test]
    fn hotswap_charges_device_setup_only_for_vanilla() {
        let cost = endbox_netsim::CostModel::calibrated();

        let env_endbox = ElementEnv::default();
        let meter_endbox = env_endbox.meter.clone();
        let mut r1 = Router::from_config("FromDevice(t) -> ToDevice(t);", env_endbox).unwrap();
        meter_endbox.take();
        r1.hot_swap("FromDevice(t) -> ToDevice(t);").unwrap();
        let endbox_cycles = meter_endbox.read();

        let env_vanilla = ElementEnv {
            device_io: true,
            ..ElementEnv::default()
        };
        let meter_vanilla = env_vanilla.meter.clone();
        let mut r2 = Router::from_config("FromDevice(t) -> ToDevice(t);", env_vanilla).unwrap();
        meter_vanilla.take();
        r2.hot_swap("FromDevice(t) -> ToDevice(t);").unwrap();
        let vanilla_cycles = meter_vanilla.read();

        assert_eq!(vanilla_cycles - endbox_cycles, cost.device_setup);
    }

    #[test]
    fn bad_port_connections_rejected() {
        let err = Router::from_config("FromDevice(t) -> [1]ToDevice(t);", ElementEnv::default())
            .unwrap_err();
        assert!(matches!(err, ClickError::BadConnection(_)));

        let err = Router::from_config(
            "a :: Discard; FromDevice(t)[2] -> a;",
            ElementEnv::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ClickError::BadConnection(_)));
    }

    #[test]
    fn double_connection_rejected() {
        let err = Router::from_config(
            "f :: FromDevice(t); f -> Discard; f -> Discard;",
            ElementEnv::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ClickError::BadConnection(_)));
    }

    #[test]
    fn full_use_case_chain() {
        // The paper's DDoS prevention chain: IDS + rate limiting.
        let mut r = Router::from_config(
            "FromDevice(tun0) \
             -> ids :: IDSMatcher(COMMUNITY 50) \
             -> ts :: TrustedSplitter(RATE 1000000000, SAMPLE 100) \
             -> ToDevice(tun0); \
             ids[1] -> Discard; \
             ts[1] -> Discard;",
            ElementEnv::default(),
        )
        .unwrap();
        let out = r.process(pkt());
        assert!(out.accepted);
        assert_eq!(r.read_handler("ids", "alerts").as_deref(), Some("0"));
        assert_eq!(r.read_handler("ts", "conformed").as_deref(), Some("1"));
    }

    #[test]
    fn element_base_cost_charged_per_traversal() {
        let env = ElementEnv::default();
        let meter = env.meter.clone();
        let cost = env.cost.clone();
        let mut r = Router::from_config("FromDevice(t) -> Counter -> Counter -> ToDevice(t);", env)
            .unwrap();
        meter.take();
        r.process(pkt());
        // 4 elements traversed.
        assert_eq!(meter.read(), 4 * cost.click_element_base);
    }
}
