//! The router: instantiates a parsed configuration into an element graph,
//! pushes packets through it, and hot-swaps configurations at runtime.

use crate::config::ConfigGraph;
use crate::element::{Element, ElementContext, ElementEnv};
use crate::error::ClickError;
use crate::registry::ElementRegistry;
use endbox_netsim::packet::Verdict;
use endbox_netsim::Packet;
use std::collections::VecDeque;

/// Result of pushing one packet through the router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterOutput {
    /// Packets emitted by `ToDevice` elements (verdict `Accept`).
    pub emitted: Vec<Packet>,
    /// True if at least one packet was emitted — the signal the modified
    /// `ToDevice` gives OpenVPN (§IV).
    pub accepted: bool,
}

/// A running Click router.
pub struct Router {
    elements: Vec<Box<dyn Element>>,
    names: Vec<String>,
    classes: Vec<String>,
    /// `out_edges[element][out_port] = Some((to_element, to_port))`.
    out_edges: Vec<Vec<Option<(usize, usize)>>>,
    entry: Option<usize>,
    env: ElementEnv,
    config_text: String,
    hotswaps: u64,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("elements", &self.names)
            .field("hotswaps", &self.hotswaps)
            .finish()
    }
}

struct BuiltGraph {
    elements: Vec<Box<dyn Element>>,
    names: Vec<String>,
    classes: Vec<String>,
    out_edges: Vec<Vec<Option<(usize, usize)>>>,
    entry: Option<usize>,
}

fn build(
    graph: &ConfigGraph,
    registry: &ElementRegistry,
    env: &ElementEnv,
) -> Result<BuiltGraph, ClickError> {
    let mut elements = Vec::with_capacity(graph.elements.len());
    let mut names = Vec::with_capacity(graph.elements.len());
    let mut classes = Vec::with_capacity(graph.elements.len());
    for decl in &graph.elements {
        let element = registry.create(&decl.name, &decl.class, &decl.args, env)?;
        names.push(decl.name.clone());
        classes.push(decl.class.clone());
        elements.push(element);
    }

    let mut out_edges: Vec<Vec<Option<(usize, usize)>>> =
        elements.iter().map(|e| vec![None; e.n_outputs()]).collect();
    for conn in &graph.connections {
        let n_out = elements[conn.from].n_outputs();
        if conn.from_port >= n_out {
            return Err(ClickError::BadConnection(format!(
                "`{}` has {} output(s), port {} out of range",
                names[conn.from], n_out, conn.from_port
            )));
        }
        let n_in = elements[conn.to].n_inputs();
        if conn.to_port >= n_in {
            return Err(ClickError::BadConnection(format!(
                "`{}` has {} input(s), port {} out of range",
                names[conn.to], n_in, conn.to_port
            )));
        }
        if out_edges[conn.from][conn.from_port].is_some() {
            return Err(ClickError::BadConnection(format!(
                "output {}[{}] connected twice",
                names[conn.from], conn.from_port
            )));
        }
        out_edges[conn.from][conn.from_port] = Some((conn.to, conn.to_port));
    }

    let entry = classes.iter().position(|c| c == "FromDevice");
    Ok(BuiltGraph { elements, names, classes, out_edges, entry })
}

impl Router {
    /// Parses and instantiates `config_text` with the standard registry.
    ///
    /// # Errors
    ///
    /// Propagates parse, class-lookup, configuration and connection
    /// errors.
    pub fn from_config(config_text: &str, env: ElementEnv) -> Result<Router, ClickError> {
        Self::from_config_with_registry(config_text, env, &ElementRegistry::standard())
    }

    /// Same as [`Router::from_config`] with a caller-provided registry.
    ///
    /// # Errors
    ///
    /// See [`Router::from_config`].
    pub fn from_config_with_registry(
        config_text: &str,
        env: ElementEnv,
        registry: &ElementRegistry,
    ) -> Result<Router, ClickError> {
        let graph = ConfigGraph::parse(config_text)?;
        let built = build(&graph, registry, &env)?;
        Ok(Router {
            elements: built.elements,
            names: built.names,
            classes: built.classes,
            out_edges: built.out_edges,
            entry: built.entry,
            env,
            config_text: config_text.to_string(),
            hotswaps: 0,
        })
    }

    /// Pushes one packet into the router at its `FromDevice` entry and runs
    /// it to completion. Returns emitted packets and the accept/reject
    /// verdict.
    pub fn process(&mut self, pkt: Packet) -> RouterOutput {
        let mut emitted = Vec::new();
        let Some(entry) = self.entry else {
            // No FromDevice: nothing to do, packet rejected.
            return RouterOutput { emitted, accepted: false };
        };
        let mut queue: VecDeque<(usize, usize, Packet)> = VecDeque::with_capacity(4);
        queue.push_back((entry, 0, pkt));
        while let Some((idx, port, pkt)) = queue.pop_front() {
            self.env.meter.add(self.env.cost.click_element_base);
            let mut ctx = ElementContext::new(&mut emitted, &self.env);
            self.elements[idx].process(port, pkt, &mut ctx);
            for (out_port, mut out_pkt) in ctx.outputs {
                match self.out_edges[idx].get(out_port).copied().flatten() {
                    Some((to, to_port)) => queue.push_back((to, to_port, out_pkt)),
                    None => {
                        // Packet pushed to an unconnected port: dropped.
                        out_pkt.meta.verdict = Verdict::Drop;
                    }
                }
            }
        }
        let accepted = !emitted.is_empty();
        RouterOutput { emitted, accepted }
    }

    /// Hot-swaps to a new configuration, transferring state between
    /// same-name same-class elements ("we adapt the hot-swapping mechanism
    /// to work with configuration files stored in memory", §IV). On error
    /// the old configuration keeps running.
    ///
    /// # Errors
    ///
    /// Any parse/build error for the new configuration; the router is
    /// unchanged in that case.
    pub fn hot_swap(&mut self, new_config: &str) -> Result<(), ClickError> {
        let registry = ElementRegistry::standard();
        let graph = ConfigGraph::parse(new_config)?;
        let mut built = build(&graph, &registry, &self.env)?;

        // Charge the hot-swap cost model (Table II): parse + instantiate,
        // plus device setup when this Click owns its devices (vanilla).
        let cost = &self.env.cost;
        let mut cycles =
            cost.hotswap_base + cost.element_instantiate * built.elements.len() as u64;
        if self.env.device_io {
            cycles += cost.device_setup;
        }
        self.env.meter.add(cycles);

        // State transfer: match by (name, class).
        for (new_idx, name) in built.names.iter().enumerate() {
            let matching_old = self
                .names
                .iter()
                .position(|n| n == name)
                .filter(|&old_idx| self.classes[old_idx] == built.classes[new_idx]);
            if let Some(old_idx) = matching_old {
                if let Some(state) = self.elements[old_idx].export_state() {
                    built.elements[new_idx].import_state(state);
                }
            }
        }

        self.elements = built.elements;
        self.names = built.names;
        self.classes = built.classes;
        self.out_edges = built.out_edges;
        self.entry = built.entry;
        self.config_text = new_config.to_string();
        self.hotswaps += 1;
        Ok(())
    }

    /// Reads a handler on a named element (e.g. `("counter", "count")`).
    pub fn read_handler(&self, element: &str, handler: &str) -> Option<String> {
        let idx = self.names.iter().position(|n| n == element)?;
        self.elements[idx].read_handler(handler)
    }

    /// Writes a handler on a named element.
    ///
    /// # Errors
    ///
    /// [`ClickError::Handler`] if the element or handler does not exist.
    pub fn write_handler(
        &mut self,
        element: &str,
        handler: &str,
        value: &str,
    ) -> Result<(), ClickError> {
        let idx = self
            .names
            .iter()
            .position(|n| n == element)
            .ok_or_else(|| ClickError::Handler(format!("no element `{element}`")))?;
        self.elements[idx].write_handler(handler, value)
    }

    /// Element instance names in declaration order.
    pub fn element_names(&self) -> &[String] {
        &self.names
    }

    /// The currently active configuration text.
    pub fn config_text(&self) -> &str {
        &self.config_text
    }

    /// Number of successful hot-swaps.
    pub fn hotswap_count(&self) -> u64 {
        self.hotswaps
    }

    /// The router's environment.
    pub fn env(&self) -> &ElementEnv {
        &self.env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn pkt() -> Packet {
        Packet::udp(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 1, 1), 1, 2, b"payload")
    }

    #[test]
    fn nop_config_forwards() {
        let mut r =
            Router::from_config("FromDevice(tun0) -> ToDevice(tun0);", ElementEnv::default())
                .unwrap();
        let out = r.process(pkt());
        assert!(out.accepted);
        assert_eq!(out.emitted.len(), 1);
        assert_eq!(out.emitted[0].meta.verdict, Verdict::Accept);
    }

    #[test]
    fn discard_rejects() {
        let mut r =
            Router::from_config("FromDevice(tun0) -> Discard;", ElementEnv::default()).unwrap();
        let out = r.process(pkt());
        assert!(!out.accepted);
        assert!(out.emitted.is_empty());
    }

    #[test]
    fn unconnected_port_drops() {
        // IPFilter's deny port (1) is unconnected: denied packets vanish.
        let mut r = Router::from_config(
            "FromDevice(t) -> f :: IPFilter(deny dst port 2, allow all) -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        let out = r.process(pkt()); // dst port 2 -> denied
        assert!(!out.accepted);
        assert_eq!(r.read_handler("f", "denied").as_deref(), Some("1"));
    }

    #[test]
    fn tee_emits_multiple() {
        let mut r = Router::from_config(
            "FromDevice(t) -> tee :: Tee(2); tee[0] -> ToDevice(t); tee[1] -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        let out = r.process(pkt());
        assert_eq!(out.emitted.len(), 2);
    }

    #[test]
    fn handlers_reachable_by_name() {
        let mut r = Router::from_config(
            "FromDevice(t) -> c :: Counter -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        r.process(pkt());
        r.process(pkt());
        assert_eq!(r.read_handler("c", "count").as_deref(), Some("2"));
        r.write_handler("c", "reset", "").unwrap();
        assert_eq!(r.read_handler("c", "count").as_deref(), Some("0"));
        assert!(r.read_handler("nope", "count").is_none());
        assert!(r.write_handler("c", "bogus", "").is_err());
    }

    #[test]
    fn hotswap_preserves_counter_state() {
        let mut r = Router::from_config(
            "FromDevice(t) -> c :: Counter -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        r.process(pkt());
        r.hot_swap(
            "FromDevice(t) -> c :: Counter -> f :: IPFilter(allow all) -> ToDevice(t);",
        )
        .unwrap();
        assert_eq!(r.read_handler("c", "count").as_deref(), Some("1"), "state transferred");
        r.process(pkt());
        assert_eq!(r.read_handler("c", "count").as_deref(), Some("2"));
        assert_eq!(r.hotswap_count(), 1);
    }

    #[test]
    fn hotswap_failure_keeps_old_config() {
        let mut r = Router::from_config(
            "FromDevice(t) -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        let old = r.config_text().to_string();
        assert!(r.hot_swap("FromDevice(t) -> NoSuchElement -> ToDevice(t);").is_err());
        assert_eq!(r.config_text(), old);
        assert!(r.process(pkt()).accepted, "old config still works");
        assert_eq!(r.hotswap_count(), 0);
    }

    #[test]
    fn hotswap_charges_device_setup_only_for_vanilla() {
        let cost = endbox_netsim::CostModel::calibrated();

        let env_endbox = ElementEnv::default();
        let meter_endbox = env_endbox.meter.clone();
        let mut r1 = Router::from_config("FromDevice(t) -> ToDevice(t);", env_endbox).unwrap();
        meter_endbox.take();
        r1.hot_swap("FromDevice(t) -> ToDevice(t);").unwrap();
        let endbox_cycles = meter_endbox.read();

        let mut env_vanilla = ElementEnv::default();
        env_vanilla.device_io = true;
        let meter_vanilla = env_vanilla.meter.clone();
        let mut r2 = Router::from_config("FromDevice(t) -> ToDevice(t);", env_vanilla).unwrap();
        meter_vanilla.take();
        r2.hot_swap("FromDevice(t) -> ToDevice(t);").unwrap();
        let vanilla_cycles = meter_vanilla.read();

        assert_eq!(vanilla_cycles - endbox_cycles, cost.device_setup);
    }

    #[test]
    fn bad_port_connections_rejected() {
        let err = Router::from_config(
            "FromDevice(t) -> [1]ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ClickError::BadConnection(_)));

        let err = Router::from_config(
            "a :: Discard; FromDevice(t)[2] -> a;",
            ElementEnv::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ClickError::BadConnection(_)));
    }

    #[test]
    fn double_connection_rejected() {
        let err = Router::from_config(
            "f :: FromDevice(t); f -> Discard; f -> Discard;",
            ElementEnv::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ClickError::BadConnection(_)));
    }

    #[test]
    fn full_use_case_chain() {
        // The paper's DDoS prevention chain: IDS + rate limiting.
        let mut r = Router::from_config(
            "FromDevice(tun0) \
             -> ids :: IDSMatcher(COMMUNITY 50) \
             -> ts :: TrustedSplitter(RATE 1000000000, SAMPLE 100) \
             -> ToDevice(tun0); \
             ids[1] -> Discard; \
             ts[1] -> Discard;",
            ElementEnv::default(),
        )
        .unwrap();
        let out = r.process(pkt());
        assert!(out.accepted);
        assert_eq!(r.read_handler("ids", "alerts").as_deref(), Some("0"));
        assert_eq!(r.read_handler("ts", "conformed").as_deref(), Some("1"));
    }

    #[test]
    fn element_base_cost_charged_per_traversal() {
        let env = ElementEnv::default();
        let meter = env.meter.clone();
        let cost = env.cost.clone();
        let mut r = Router::from_config(
            "FromDevice(t) -> Counter -> Counter -> ToDevice(t);",
            env,
        )
        .unwrap();
        meter.take();
        r.process(pkt());
        // 4 elements traversed.
        assert_eq!(meter.read(), 4 * cost.click_element_base);
    }
}
