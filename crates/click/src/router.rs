//! The router: instantiates a parsed configuration into an element graph,
//! pushes packets (singly or as whole batches) through it, and hot-swaps
//! configurations at runtime.
//!
//! # Batched datapath
//!
//! [`Router::process`] pushes one packet; [`Router::process_batch`]
//! pushes a whole [`PacketBatch`] with one graph traversal, calling each
//! element's [`Element::process_batch`] over every packet queued at that
//! element. All per-traversal state (the work queues, the per-element
//! pending queues, the output scratch) lives in the `Router` and is
//! recycled across calls; the only steady-state allocations on the hot
//! path are the small per-hop sequence keys described below.
//!
//! ## Order preservation
//!
//! Batch processing is observably equivalent to pushing the same packets
//! one at a time for **arbitrary graphs**, including fan-out (`Tee`) and
//! fan-out paths that *re-merge* into order-sensitive stateful elements
//! (e.g. two `Tee` branches feeding one `RoundRobinSwitch`): per-element
//! arrival order, handler-visible element state, total cycle charges,
//! and the emitted byte sequence all match the single-packet path.
//!
//! The scheduler achieves this by tagging every in-flight packet with a
//! hierarchical sequence key `(batch_slot, emission_path)` — the path
//! records, hop by hop, which output of its parent each packet was — and
//! ordering keys *shortlex* per slot (shorter paths first, then
//! lexicographic), which is exactly the breadth-first order the
//! single-packet traversal visits events in. Each element's pending
//! queue is kept key-sorted; each step runs the element whose queued
//! front key is globally minimal, over the longest front run that no
//! other queued packet can still preempt (bounded by the smallest front
//! key among elements with a graph path into it). Linear pipelines and
//! independent fan-out sinks therefore still process whole batches per
//! element; only genuine re-merge points degrade to the interleaving the
//! single-packet path would produce.
//!
//! The invariant is pinned by `tests/batch_parity.rs` (a property-test
//! grid over random fan-out/re-merge graphs with stateful elements) and
//! by `fan_out_batch_remerge_order_is_pinned` below.

use crate::config::ConfigGraph;
use crate::element::{Element, ElementContext, ElementEnv};
use crate::error::ClickError;
use crate::registry::ElementRegistry;
use endbox_netsim::packet::Verdict;
use endbox_netsim::{Packet, PacketBatch};
use std::collections::VecDeque;

/// Result of pushing one packet through the router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterOutput {
    /// Packets emitted by `ToDevice` elements (verdict `Accept`).
    pub emitted: Vec<Packet>,
    /// True if at least one packet was emitted — the signal the modified
    /// `ToDevice` gives OpenVPN (§IV).
    pub accepted: bool,
    /// Packets discarded because an element pushed them to an unconnected
    /// output port. Previously these vanished silently; the counter makes
    /// configuration gaps observable.
    pub dropped: u64,
}

/// Result of pushing a [`PacketBatch`] through the router.
#[derive(Debug)]
pub struct BatchOutput {
    /// Packets emitted by `ToDevice` elements, each carrying the
    /// `batch_slot` annotation of the input packet it originated from.
    pub emitted: PacketBatch,
    /// Per input packet (by batch position): `Accept` if at least one
    /// emission originated from it, `Drop` otherwise.
    pub verdicts: Vec<Verdict>,
    /// Number of input packets with verdict `Accept`.
    pub accepted: usize,
    /// Packets discarded at unconnected output ports.
    pub dropped: u64,
}

impl BatchOutput {
    /// First emitted packet per input slot (slot-indexed; `None` for
    /// inputs with no emission), with the batch-slot annotation cleared.
    ///
    /// This mirrors the single-packet hot path, which seals exactly the
    /// *first* emission of each accepted packet.
    ///
    /// Packets not kept — non-first emissions for a slot, and packets
    /// whose slot annotation is missing or out of range (possible after a
    /// mid-batch hot-swap) — are recycled to their [`BufferPool`]s in one
    /// batched `give_many` pass per pool instead of one lock round-trip
    /// per packet.
    ///
    /// [`BufferPool`]: endbox_netsim::BufferPool
    pub fn first_emissions_by_slot(self) -> Vec<Option<Packet>> {
        let mut by_slot: Vec<Option<Packet>> = (0..self.verdicts.len()).map(|_| None).collect();
        let mut extras: Vec<Packet> = Vec::new();
        for mut pkt in self.emitted {
            match pkt
                .meta
                .batch_slot
                .and_then(|slot| by_slot.get_mut(slot as usize))
            {
                Some(cell) if cell.is_none() => {
                    pkt.meta.batch_slot = None;
                    *cell = Some(pkt);
                }
                _ => extras.push(pkt),
            }
        }
        endbox_netsim::recycle_packets(extras);
        by_slot
    }

    /// First emitted packet of each accepted input, in input order, with
    /// the batch-slot annotation cleared.
    pub fn into_first_emissions(self) -> Vec<Packet> {
        self.first_emissions_by_slot()
            .into_iter()
            .flatten()
            .collect()
    }
}

/// Hierarchical sequence key ordering in-flight packets of a batch
/// traversal by their single-packet traversal order.
///
/// `slot` is the packet's position in the input batch; `path` records,
/// hop by hop, the sibling index each descendant was assigned when its
/// parent's outputs were drained (the input packet itself has an empty
/// path). Keys compare *shortlex* within a slot — shorter paths first,
/// then lexicographic — which is exactly the order the single-packet
/// breadth-first traversal visits events in, and keys are globally
/// unique per traversal (each packet instance is processed once).
#[derive(Debug, Clone, PartialEq, Eq)]
struct SeqKey {
    slot: u32,
    path: Vec<u32>,
}

impl Ord for SeqKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.slot
            .cmp(&other.slot)
            .then_with(|| self.path.len().cmp(&other.path.len()))
            .then_with(|| self.path.cmp(&other.path))
    }
}

impl PartialOrd for SeqKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One entry of an element's pending queue during a batch traversal.
#[derive(Debug)]
struct PendingPacket {
    key: SeqKey,
    port: usize,
    pkt: Packet,
}

/// One input event of the element run currently being processed: where
/// its packet sat in the sequence order, and how many children (output
/// packets) it has produced so far — the next sibling index.
#[derive(Debug)]
struct RunEvent {
    slot: u32,
    path: Vec<u32>,
    children: u32,
}

/// Inserts `entry` into a key-sorted queue. Arrivals are mostly already
/// in order (whole upstream runs drain in key order), so appending is the
/// fast path; re-merges falling back to a binary-search insert.
fn insert_sorted(queue: &mut VecDeque<PendingPacket>, entry: PendingPacket) {
    match queue.back() {
        Some(last) if last.key <= entry.key => queue.push_back(entry),
        None => queue.push_back(entry),
        Some(_) => {
            let pos = queue.partition_point(|e| e.key < entry.key);
            queue.insert(pos, entry);
        }
    }
}

/// Transitive closure of the element graph: `reach[a][b]` is true when a
/// packet leaving `a` can arrive at `b` after one or more hops. The
/// batched scheduler uses it to bound how far ahead an element may run
/// before a packet still queued elsewhere could preempt it.
fn compute_reach(out_edges: &[Vec<Option<(usize, usize)>>]) -> Vec<Vec<bool>> {
    let n = out_edges.len();
    let adj: Vec<Vec<usize>> = out_edges
        .iter()
        .map(|ports| ports.iter().filter_map(|e| e.map(|(to, _)| to)).collect())
        .collect();
    let mut reach = vec![vec![false; n]; n];
    for (start, row) in reach.iter_mut().enumerate() {
        let mut stack: Vec<usize> = adj[start].clone();
        while let Some(x) = stack.pop() {
            if !row[x] {
                row[x] = true;
                stack.extend(adj[x].iter().copied());
            }
        }
    }
    reach
}

/// A running Click router.
pub struct Router {
    elements: Vec<Box<dyn Element>>,
    names: Vec<String>,
    classes: Vec<String>,
    /// `out_edges[element][out_port] = Some((to_element, to_port))`.
    out_edges: Vec<Vec<Option<(usize, usize)>>>,
    entry: Option<usize>,
    env: ElementEnv,
    config_text: String,
    hotswaps: u64,
    /// Transitive closure of the element graph (recomputed on hot-swap).
    reach: Vec<Vec<bool>>,
    /// Single-packet traversal worklist (allocation reused across calls).
    scratch_queue: VecDeque<(usize, usize, Packet)>,
    /// Element-output scratch handed to every `ElementContext`.
    scratch_outputs: Vec<(usize, Packet)>,
    /// Per-element key-sorted pending queues for batch traversal. Kept in
    /// `self` (not moved out) during traversal so an element panic leaves
    /// in-flight packets observable and recyclable instead of lost.
    pending: Vec<VecDeque<PendingPacket>>,
    /// Batch handed to `Element::process_batch` (allocation reused).
    scratch_batch: PacketBatch,
    /// Packets dropped at unconnected ports during a batch traversal,
    /// recycled to their pools in one `give_many` at the end instead of
    /// one lock round-trip per packet.
    scratch_drops: Vec<Packet>,
    /// Packets recovered from stale pending queues (after an element
    /// panicked mid-batch) and recycled to their pools.
    stale_recycled: u64,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("elements", &self.names)
            .field("hotswaps", &self.hotswaps)
            .finish()
    }
}

struct BuiltGraph {
    elements: Vec<Box<dyn Element>>,
    names: Vec<String>,
    classes: Vec<String>,
    out_edges: Vec<Vec<Option<(usize, usize)>>>,
    entry: Option<usize>,
}

fn build(
    graph: &ConfigGraph,
    registry: &ElementRegistry,
    env: &ElementEnv,
) -> Result<BuiltGraph, ClickError> {
    let mut elements = Vec::with_capacity(graph.elements.len());
    let mut names = Vec::with_capacity(graph.elements.len());
    let mut classes = Vec::with_capacity(graph.elements.len());
    for decl in &graph.elements {
        let element = registry.create(&decl.name, &decl.class, &decl.args, env)?;
        names.push(decl.name.clone());
        classes.push(decl.class.clone());
        elements.push(element);
    }

    let mut out_edges: Vec<Vec<Option<(usize, usize)>>> =
        elements.iter().map(|e| vec![None; e.n_outputs()]).collect();
    for conn in &graph.connections {
        let n_out = elements[conn.from].n_outputs();
        if conn.from_port >= n_out {
            return Err(ClickError::BadConnection(format!(
                "`{}` has {} output(s), port {} out of range",
                names[conn.from], n_out, conn.from_port
            )));
        }
        let n_in = elements[conn.to].n_inputs();
        if conn.to_port >= n_in {
            return Err(ClickError::BadConnection(format!(
                "`{}` has {} input(s), port {} out of range",
                names[conn.to], n_in, conn.to_port
            )));
        }
        if out_edges[conn.from][conn.from_port].is_some() {
            return Err(ClickError::BadConnection(format!(
                "output {}[{}] connected twice",
                names[conn.from], conn.from_port
            )));
        }
        out_edges[conn.from][conn.from_port] = Some((conn.to, conn.to_port));
    }

    let entry = classes.iter().position(|c| c == "FromDevice");
    Ok(BuiltGraph {
        elements,
        names,
        classes,
        out_edges,
        entry,
    })
}

impl Router {
    /// Parses and instantiates `config_text` with the standard registry.
    ///
    /// # Errors
    ///
    /// Propagates parse, class-lookup, configuration and connection
    /// errors.
    pub fn from_config(config_text: &str, env: ElementEnv) -> Result<Router, ClickError> {
        Self::from_config_with_registry(config_text, env, &ElementRegistry::standard())
    }

    /// Same as [`Router::from_config`] with a caller-provided registry.
    ///
    /// # Errors
    ///
    /// See [`Router::from_config`].
    pub fn from_config_with_registry(
        config_text: &str,
        env: ElementEnv,
        registry: &ElementRegistry,
    ) -> Result<Router, ClickError> {
        let graph = ConfigGraph::parse(config_text)?;
        let built = build(&graph, registry, &env)?;
        let n = built.elements.len();
        let mut pending = Vec::with_capacity(n);
        pending.resize_with(n, VecDeque::new);
        let reach = compute_reach(&built.out_edges);
        Ok(Router {
            elements: built.elements,
            names: built.names,
            classes: built.classes,
            out_edges: built.out_edges,
            entry: built.entry,
            env,
            config_text: config_text.to_string(),
            hotswaps: 0,
            reach,
            scratch_queue: VecDeque::with_capacity(4),
            scratch_outputs: Vec::with_capacity(4),
            pending,
            scratch_batch: PacketBatch::new(),
            scratch_drops: Vec::new(),
            stale_recycled: 0,
        })
    }

    /// Pushes one packet into the router at its `FromDevice` entry and runs
    /// it to completion. Returns emitted packets, the accept/reject
    /// verdict, and the unconnected-port drop count.
    pub fn process(&mut self, pkt: Packet) -> RouterOutput {
        let mut emitted = Vec::new();
        let mut dropped = 0u64;
        let Some(entry) = self.entry else {
            // No FromDevice: nothing to do, packet rejected.
            return RouterOutput {
                emitted,
                accepted: false,
                dropped,
            };
        };
        // Scratch buffers are moved out of `self` for the traversal so the
        // element calls can borrow `self.elements` mutably; their
        // allocations return afterwards.
        let mut queue = std::mem::take(&mut self.scratch_queue);
        let mut outputs = std::mem::take(&mut self.scratch_outputs);
        queue.push_back((entry, 0, pkt));
        while let Some((idx, port, pkt)) = queue.pop_front() {
            self.env.meter.add(self.env.cost.click_element_base);
            let mut ctx = ElementContext::new(&mut outputs, &mut emitted, &self.env);
            self.elements[idx].process(port, pkt, &mut ctx);
            for (out_port, mut out_pkt) in outputs.drain(..) {
                match self.out_edges[idx].get(out_port).copied().flatten() {
                    Some((to, to_port)) => queue.push_back((to, to_port, out_pkt)),
                    None => {
                        // Packet pushed to an unconnected port: dropped.
                        out_pkt.meta.verdict = Verdict::Drop;
                        dropped += 1;
                    }
                }
            }
        }
        self.scratch_queue = queue;
        self.scratch_outputs = outputs;
        let accepted = !emitted.is_empty();
        RouterOutput {
            emitted,
            accepted,
            dropped,
        }
    }

    /// Pushes a whole batch through the router in one traversal.
    ///
    /// Packets are queued per element and handed to
    /// [`Element::process_batch`] in runs, so hot elements amortise their
    /// fixed costs across the batch, while the key-ordered scheduler
    /// keeps every element's arrival order — and hence its state and the
    /// emitted sequence — identical to N single [`Router::process`]
    /// calls. See the module docs for the scheduling discipline.
    pub fn process_batch(&mut self, mut batch: PacketBatch) -> BatchOutput {
        let n_in = batch.len();
        let mut emitted: Vec<Packet> = Vec::with_capacity(n_in);
        let mut emitted_keys: Vec<SeqKey> = Vec::with_capacity(n_in);
        let mut dropped = 0u64;
        // A panic during an earlier traversal may have left in-flight
        // packets queued; recover them before seeding the new batch.
        self.drain_stale_pending();
        let Some(entry) = self.entry else {
            batch.clear();
            return BatchOutput {
                emitted: PacketBatch::new(),
                verdicts: vec![Verdict::Drop; n_in],
                accepted: 0,
                dropped,
            };
        };

        for (slot, mut pkt) in batch.drain().enumerate() {
            let slot = slot as u32;
            pkt.meta.batch_slot = Some(slot);
            self.pending[entry].push_back(PendingPacket {
                key: SeqKey {
                    slot,
                    path: Vec::new(),
                },
                port: 0,
                pkt,
            });
        }

        let mut outputs = std::mem::take(&mut self.scratch_outputs);
        let mut work = std::mem::take(&mut self.scratch_batch);
        let mut drops = std::mem::take(&mut self.scratch_drops);
        let mut run_events: Vec<RunEvent> = Vec::new();
        loop {
            // Run the element whose queued front key is globally minimal.
            let mut min_idx: Option<usize> = None;
            for (i, queue) in self.pending.iter().enumerate() {
                let Some(front) = queue.front() else { continue };
                let better = match min_idx {
                    None => true,
                    Some(m) => front.key < self.pending[m].front().expect("non-empty").key,
                };
                if better {
                    min_idx = Some(i);
                }
            }
            let Some(idx) = min_idx else { break };

            // Preemption bound: the smallest front key among *other*
            // elements with a graph path into `idx`. Entries at or past
            // the bound could still gain earlier-keyed predecessors from
            // those packets' descendants, so they wait for a later run.
            let mut bound: Option<SeqKey> = None;
            for (i, queue) in self.pending.iter().enumerate() {
                if i == idx || !self.reach[i][idx] {
                    continue;
                }
                if let Some(front) = queue.front() {
                    if bound.as_ref().is_none_or(|b| front.key < *b) {
                        bound = Some(front.key.clone());
                    }
                }
            }
            let self_loop = self.reach[idx][idx];

            // Longest front run with one input port, below the bound, and
            // with pairwise-distinct slots (output→input attribution
            // below keys on `batch_slot`).
            let port = self.pending[idx].front().expect("non-empty").port;
            work.clear();
            run_events.clear();
            while let Some(front) = self.pending[idx].front() {
                if front.port != port
                    || bound.as_ref().is_some_and(|b| front.key >= *b)
                    || run_events.iter().any(|e| e.slot == front.key.slot)
                {
                    break;
                }
                let entry_pkt = self.pending[idx].pop_front().expect("checked front");
                run_events.push(RunEvent {
                    slot: entry_pkt.key.slot,
                    path: entry_pkt.key.path,
                    children: 0,
                });
                work.push(entry_pkt.pkt);
                if self_loop {
                    // An element that can reach itself may enqueue
                    // descendants keyed between this entry and the next;
                    // process one packet at a time so they get their turn.
                    break;
                }
            }
            if work.is_empty() {
                // The front entry is at/past the bound: some other element
                // holds the globally minimal key — impossible, since `idx`
                // was chosen as the global minimum and bounds only come
                // from other elements' front keys.
                unreachable!("scheduler made no progress");
            }

            self.env
                .meter
                .add(self.env.cost.click_element_base * work.len() as u64);
            let emitted_before = emitted.len();
            let mut ctx = ElementContext::new(&mut outputs, &mut emitted, &self.env);
            self.elements[idx].process_batch(port, &mut work, &mut ctx);

            // Emissions carry the key of the event that produced them;
            // the final stable sort restores single-packet order.
            for pkt in emitted.iter().skip(emitted_before) {
                let ev_idx = pkt
                    .meta
                    .batch_slot
                    .and_then(|s| run_events.iter().position(|e| e.slot == s))
                    .unwrap_or_else(|| {
                        debug_assert!(false, "batched emission lost its batch_slot annotation");
                        0
                    });
                let ev = &run_events[ev_idx];
                emitted_keys.push(SeqKey {
                    slot: ev.slot,
                    path: ev.path.clone(),
                });
            }

            // Outputs extend their parent's path by the next sibling
            // index, in drain order — the order the single-packet path
            // would have enqueued them in.
            for (out_port, mut out_pkt) in outputs.drain(..) {
                let ev_idx = out_pkt
                    .meta
                    .batch_slot
                    .and_then(|s| run_events.iter().position(|e| e.slot == s))
                    .unwrap_or_else(|| {
                        debug_assert!(false, "element output lost its batch_slot annotation");
                        0
                    });
                let ev = &mut run_events[ev_idx];
                let mut path = ev.path.clone();
                path.push(ev.children);
                ev.children += 1;
                match self.out_edges[idx].get(out_port).copied().flatten() {
                    Some((to, to_port)) => insert_sorted(
                        &mut self.pending[to],
                        PendingPacket {
                            key: SeqKey {
                                slot: ev.slot,
                                path,
                            },
                            port: to_port,
                            pkt: out_pkt,
                        },
                    ),
                    None => {
                        out_pkt.meta.verdict = Verdict::Drop;
                        dropped += 1;
                        drops.push(out_pkt);
                    }
                }
            }
        }
        // Batch-granular recycling: all unconnected-port drops return
        // their buffers under one pool lock acquisition.
        endbox_netsim::recycle_packets(drops.drain(..));
        self.scratch_outputs = outputs;
        self.scratch_batch = work;
        self.scratch_drops = drops;

        // Restore the single-packet emission order: stable argsort by the
        // producing event's key (ties — several emissions from one event —
        // keep their call order).
        let mut order: Vec<usize> = (0..emitted.len()).collect();
        order.sort_by(|&a, &b| emitted_keys[a].cmp(&emitted_keys[b]).then(a.cmp(&b)));
        if order.iter().enumerate().any(|(i, &o)| i != o) {
            let mut cells: Vec<Option<Packet>> = emitted.into_iter().map(Some).collect();
            emitted = order
                .iter()
                .map(|&o| cells[o].take().expect("permutation"))
                .collect();
        }

        let mut verdicts = vec![Verdict::Drop; n_in];
        let mut accepted = 0usize;
        for pkt in &emitted {
            // The sharded server's re-merge relies on every emission
            // carrying a valid slot annotation for its originating input.
            debug_assert!(
                pkt.meta.batch_slot.is_some_and(|s| (s as usize) < n_in),
                "batched emission lost its batch_slot annotation"
            );
            if let Some(slot) = pkt.meta.batch_slot {
                let v = &mut verdicts[slot as usize];
                if *v != Verdict::Accept {
                    *v = Verdict::Accept;
                    accepted += 1;
                }
            }
        }
        BatchOutput {
            emitted: PacketBatch::from(emitted),
            verdicts,
            accepted,
            dropped,
        }
    }

    /// Hot-swaps to a new configuration, transferring state between
    /// same-name same-class elements ("we adapt the hot-swapping mechanism
    /// to work with configuration files stored in memory", §IV). On error
    /// the old configuration keeps running.
    ///
    /// # Errors
    ///
    /// Any parse/build error for the new configuration; the router is
    /// unchanged in that case.
    pub fn hot_swap(&mut self, new_config: &str) -> Result<(), ClickError> {
        let registry = ElementRegistry::standard();
        let graph = ConfigGraph::parse(new_config)?;
        let mut built = build(&graph, &registry, &self.env)?;

        // Charge the hot-swap cost model (Table II): parse + instantiate,
        // plus device setup when this Click owns its devices (vanilla).
        let cost = &self.env.cost;
        let mut cycles = cost.hotswap_base + cost.element_instantiate * built.elements.len() as u64;
        if self.env.device_io {
            cycles += cost.device_setup;
        }
        self.env.meter.add(cycles);

        // State transfer: match by (name, class).
        for (new_idx, name) in built.names.iter().enumerate() {
            let matching_old = self
                .names
                .iter()
                .position(|n| n == name)
                .filter(|&old_idx| self.classes[old_idx] == built.classes[new_idx]);
            if let Some(old_idx) = matching_old {
                if let Some(state) = self.elements[old_idx].export_state() {
                    built.elements[new_idx].import_state(state);
                }
            }
        }

        // A hot-swap requested while a traversal sits interrupted (an
        // element panicked mid-batch) must not leak or misroute the
        // in-flight packets: drain them back to their pools first, then
        // size the queues for the new graph.
        self.drain_stale_pending();
        self.elements = built.elements;
        self.names = built.names;
        self.classes = built.classes;
        self.out_edges = built.out_edges;
        self.entry = built.entry;
        self.config_text = new_config.to_string();
        self.hotswaps += 1;
        self.reach = compute_reach(&self.out_edges);
        // The per-element pending queues must track the new graph size.
        self.pending.clear();
        self.pending.resize_with(self.elements.len(), VecDeque::new);
        Ok(())
    }

    /// Recycles packets stranded in the pending queues by a traversal
    /// that did not run to completion (an element panic caught by the
    /// caller). Deterministic: buffers return to their pools in one
    /// batched pass and the count is recorded in
    /// [`Router::stale_recycled`]. Called automatically at the start of
    /// every [`Router::process_batch`] and by [`Router::hot_swap`].
    fn drain_stale_pending(&mut self) {
        let stale: usize = self.pending.iter().map(VecDeque::len).sum();
        if stale == 0 {
            return;
        }
        self.stale_recycled += stale as u64;
        endbox_netsim::recycle_packets(
            self.pending
                .iter_mut()
                .flat_map(|queue| queue.drain(..))
                .map(|entry| entry.pkt),
        );
    }

    /// Number of packets currently queued inside an interrupted batch
    /// traversal (always 0 after a `process_batch` that returned).
    pub fn pending_depth(&self) -> usize {
        self.pending.iter().map(VecDeque::len).sum()
    }

    /// Total packets recovered from interrupted traversals and recycled
    /// to their buffer pools.
    pub fn stale_recycled(&self) -> u64 {
        self.stale_recycled
    }

    /// Reads a handler on a named element (e.g. `("counter", "count")`).
    pub fn read_handler(&self, element: &str, handler: &str) -> Option<String> {
        let idx = self.names.iter().position(|n| n == element)?;
        self.elements[idx].read_handler(handler)
    }

    /// Writes a handler on a named element.
    ///
    /// # Errors
    ///
    /// [`ClickError::Handler`] if the element or handler does not exist.
    pub fn write_handler(
        &mut self,
        element: &str,
        handler: &str,
        value: &str,
    ) -> Result<(), ClickError> {
        let idx = self
            .names
            .iter()
            .position(|n| n == element)
            .ok_or_else(|| ClickError::Handler(format!("no element `{element}`")))?;
        self.elements[idx].write_handler(handler, value)
    }

    /// Element instance names in declaration order.
    pub fn element_names(&self) -> &[String] {
        &self.names
    }

    /// The currently active configuration text.
    pub fn config_text(&self) -> &str {
        &self.config_text
    }

    /// Number of successful hot-swaps.
    pub fn hotswap_count(&self) -> u64 {
        self.hotswaps
    }

    /// The router's environment.
    pub fn env(&self) -> &ElementEnv {
        &self.env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn pkt() -> Packet {
        Packet::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            1,
            2,
            b"payload",
        )
    }

    #[test]
    fn nop_config_forwards() {
        let mut r =
            Router::from_config("FromDevice(tun0) -> ToDevice(tun0);", ElementEnv::default())
                .unwrap();
        let out = r.process(pkt());
        assert!(out.accepted);
        assert_eq!(out.emitted.len(), 1);
        assert_eq!(out.emitted[0].meta.verdict, Verdict::Accept);
    }

    #[test]
    fn discard_rejects() {
        let mut r =
            Router::from_config("FromDevice(tun0) -> Discard;", ElementEnv::default()).unwrap();
        let out = r.process(pkt());
        assert!(!out.accepted);
        assert!(out.emitted.is_empty());
    }

    #[test]
    fn unconnected_port_drops() {
        // IPFilter's deny port (1) is unconnected: denied packets are
        // dropped — and now counted instead of vanishing silently.
        let mut r = Router::from_config(
            "FromDevice(t) -> f :: IPFilter(deny dst port 2, allow all) -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        let out = r.process(pkt()); // dst port 2 -> denied
        assert!(!out.accepted);
        assert_eq!(out.dropped, 1, "unconnected-port drop must be observable");
        assert_eq!(r.read_handler("f", "denied").as_deref(), Some("1"));

        // Accepted packets record no drops.
        let ok = Packet::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 1),
            1,
            99,
            b"x",
        );
        let out = r.process(ok);
        assert!(out.accepted);
        assert_eq!(out.dropped, 0);
    }

    #[test]
    fn batch_matches_single_packet_path() {
        let config = "FromDevice(t) -> c :: Counter \
                      -> f :: IPFilter(deny dst port 2, allow all) -> ToDevice(t);";
        let mut single = Router::from_config(config, ElementEnv::default()).unwrap();
        let mut batched = Router::from_config(config, ElementEnv::default()).unwrap();

        let packets: Vec<Packet> = (0..8)
            .map(|i| {
                Packet::udp(
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 1, 1),
                    1,
                    if i % 3 == 0 { 2 } else { 40 + i }, // every third denied
                    b"payload",
                )
            })
            .collect();

        let mut single_emitted = Vec::new();
        let mut single_verdicts = Vec::new();
        for p in packets.iter().cloned() {
            let out = single.process(p);
            single_verdicts.push(if out.accepted {
                Verdict::Accept
            } else {
                Verdict::Drop
            });
            single_emitted.extend(out.emitted);
        }

        let out = batched.process_batch(PacketBatch::from(packets));
        assert_eq!(out.verdicts, single_verdicts);
        assert_eq!(out.accepted, 5);
        assert_eq!(out.dropped, 3);
        let batch_bytes: Vec<&[u8]> = out.emitted.iter().map(Packet::bytes).collect();
        let single_bytes: Vec<&[u8]> = single_emitted.iter().map(Packet::bytes).collect();
        assert_eq!(batch_bytes, single_bytes);
        // Element state (Counter) evolved identically.
        assert_eq!(
            single.read_handler("c", "count"),
            batched.read_handler("c", "count")
        );
    }

    #[test]
    fn batch_charges_same_cycles_as_singles() {
        let config = "FromDevice(t) -> f :: IPFilter(deny dst port 2, allow all) \
                      -> ids :: IDSMatcher(COMMUNITY 20) -> ToDevice(t); ids[1] -> Discard;";
        let env_a = ElementEnv::default();
        let meter_a = env_a.meter.clone();
        let mut single = Router::from_config(config, env_a).unwrap();
        let env_b = ElementEnv::default();
        let meter_b = env_b.meter.clone();
        let mut batched = Router::from_config(config, env_b).unwrap();

        let packets: Vec<Packet> = (0..6).map(|_| pkt()).collect();
        meter_a.take();
        for p in packets.iter().cloned() {
            single.process(p);
        }
        meter_b.take();
        batched.process_batch(PacketBatch::from(packets));
        assert_eq!(
            meter_a.take(),
            meter_b.take(),
            "batching must not change cycle totals"
        );
    }

    #[test]
    fn batch_emitted_carry_slot_annotations() {
        let mut r =
            Router::from_config("FromDevice(t) -> ToDevice(t);", ElementEnv::default()).unwrap();
        let batch: PacketBatch = (0..3).map(|_| pkt()).collect();
        let out = r.process_batch(batch);
        let slots: Vec<Option<u32>> = out.emitted.iter().map(|p| p.meta.batch_slot).collect();
        assert_eq!(slots, vec![Some(0), Some(1), Some(2)]);
        assert!(out
            .emitted
            .iter()
            .all(|p| p.meta.verdict == Verdict::Accept));
    }

    #[test]
    fn fan_out_batch_remerge_order_is_pinned() {
        // Pin of the order-preservation invariant at a fan-out: a Tee
        // into two ToDevices emits exactly as N single `process` calls
        // would — per input slot, both branch emissions together (Tee
        // pushes its clone ports first, then port 0), slots in input
        // order. This is the order the module docs promise and the
        // sharded server's deterministic re-merge consumes.
        let mut r = Router::from_config(
            "FromDevice(t) -> tee :: Tee(2); tee[0] -> ToDevice(t); tee[1] -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        let out = r.process_batch((0..3).map(|_| pkt()).collect());
        let slots: Vec<Option<u32>> = out.emitted.iter().map(|p| p.meta.batch_slot).collect();
        assert_eq!(
            slots,
            vec![Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)],
            "emissions interleave per input slot, matching the single-packet path"
        );
        assert_eq!(out.accepted, 3);
        // And the slot-indexed re-merge picks the *first* emission of each
        // input, in input order.
        let firsts = out.into_first_emissions();
        let first_slots: Vec<Option<u32>> = firsts.iter().map(|p| p.meta.batch_slot).collect();
        assert_eq!(first_slots, vec![None, None, None], "annotation cleared");
        assert_eq!(firsts.len(), 3);
    }

    #[test]
    fn fan_out_remerge_into_round_robin_matches_single_path() {
        // The re-merge bug this PR fixes: two Tee branches of different
        // depth re-merging into one order-sensitive RoundRobinSwitch.
        // Batched and single-packet routers must make identical routing
        // decisions (same `next` evolution, same per-port counts).
        let config = "rr :: RoundRobinSwitch(2); \
                      FromDevice(t) -> tee :: Tee(2); \
                      tee[0] -> c0 :: Counter -> rr; \
                      tee[1] -> rr; \
                      rr[0] -> a :: Counter -> ToDevice(t); \
                      rr[1] -> b :: Counter -> ToDevice(t);";
        let mut single = Router::from_config(config, ElementEnv::default()).unwrap();
        let mut batched = Router::from_config(config, ElementEnv::default()).unwrap();

        let packets: Vec<Packet> = (0..7).map(|_| pkt()).collect();
        let mut single_emitted = Vec::new();
        for p in packets.iter().cloned() {
            single_emitted.extend(single.process(p).emitted);
        }
        let out = batched.process_batch(PacketBatch::from(packets));

        let batch_bytes: Vec<&[u8]> = out.emitted.iter().map(Packet::bytes).collect();
        let single_bytes: Vec<&[u8]> = single_emitted.iter().map(Packet::bytes).collect();
        assert_eq!(batch_bytes, single_bytes, "byte-identical emission order");
        for (name, handler) in [("c0", "count"), ("a", "count"), ("b", "count")] {
            let s = single.read_handler(name, handler);
            let b = batched.read_handler(name, handler);
            assert_eq!(s, b, "{name}.{handler} diverged");
        }
    }

    #[test]
    fn first_emissions_recycles_non_kept_packets() {
        use endbox_netsim::BufferPool;
        // A Tee doubles every pooled packet; `first_emissions_by_slot`
        // keeps one per slot and must recycle the rest back to the pool
        // in one batched pass — the satellite fix for the buffer leak.
        let mut r = Router::from_config(
            "FromDevice(t) -> tee :: Tee(2); tee[0] -> ToDevice(t); tee[1] -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        let pool = BufferPool::new();
        let batch: PacketBatch = (0..4)
            .map(|_| {
                Packet::udp_in(
                    &pool,
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 1, 1),
                    1,
                    2,
                    b"dup",
                )
            })
            .collect();
        let before = pool.stats();
        let out = r.process_batch(batch);
        assert_eq!(out.emitted.len(), 8, "tee duplicated each packet");
        let firsts = out.first_emissions_by_slot();
        let after = pool.stats();
        assert_eq!(firsts.iter().flatten().count(), 4);
        assert_eq!(
            after.returned - before.returned,
            4,
            "the non-first emissions went back to the pool"
        );
        assert_eq!(
            after.batched_ops - before.batched_ops,
            1,
            "one pool lock for all non-kept emissions"
        );
        drop(firsts);
        let end = pool.stats();
        assert_eq!(
            end.returned - before.returned,
            8,
            "pool reconciles: every buffer eventually returned"
        );
    }

    #[test]
    fn first_emissions_survives_stale_slots() {
        // Emissions whose slot annotation is out of range (e.g. produced
        // before a mid-batch reconfiguration) must be recycled, not
        // panic the slot-indexed re-merge.
        let mut r =
            Router::from_config("FromDevice(t) -> ToDevice(t);", ElementEnv::default()).unwrap();
        let out = r.process_batch((0..3).map(|_| pkt()).collect());
        let shrunk = BatchOutput {
            emitted: out.emitted,
            verdicts: out.verdicts[..1].to_vec(), // pretend only 1 input
            accepted: 1,
            dropped: 0,
        };
        let firsts = shrunk.first_emissions_by_slot();
        assert_eq!(firsts.len(), 1);
        assert!(firsts[0].is_some());
    }

    #[test]
    fn batched_drops_recycle_buffers_under_one_lock() {
        use endbox_netsim::BufferPool;
        // Every packet is denied and lands on IPFilter's unconnected deny
        // port; the batch path must give all buffers back in one
        // `give_many` call.
        let mut r = Router::from_config(
            "FromDevice(t) -> f :: IPFilter(deny dst port 2, allow all) -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        let pool = BufferPool::new();
        let batch: PacketBatch = (0..6)
            .map(|_| {
                Packet::udp_in(
                    &pool,
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 1, 1),
                    1,
                    2,
                    b"denied",
                )
            })
            .collect();
        let before = pool.stats();
        let out = r.process_batch(batch);
        assert_eq!(out.dropped, 6);
        let after = pool.stats();
        assert_eq!(after.returned - before.returned, 6, "all buffers recycled");
        assert_eq!(
            after.batched_ops - before.batched_ops,
            1,
            "one pool lock for the whole drop batch"
        );
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut r =
            Router::from_config("FromDevice(t) -> ToDevice(t);", ElementEnv::default()).unwrap();
        let out = r.process_batch(PacketBatch::new());
        assert_eq!(out.accepted, 0);
        assert!(out.emitted.is_empty());
        assert!(out.verdicts.is_empty());
    }

    #[test]
    fn batch_after_hotswap_uses_new_graph() {
        let mut r =
            Router::from_config("FromDevice(t) -> ToDevice(t);", ElementEnv::default()).unwrap();
        r.process_batch((0..4).map(|_| pkt()).collect());
        r.hot_swap("FromDevice(t) -> Discard;").unwrap();
        let out = r.process_batch((0..4).map(|_| pkt()).collect());
        assert_eq!(out.accepted, 0, "new config discards everything");
    }

    #[test]
    fn tee_emits_multiple() {
        let mut r = Router::from_config(
            "FromDevice(t) -> tee :: Tee(2); tee[0] -> ToDevice(t); tee[1] -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        let out = r.process(pkt());
        assert_eq!(out.emitted.len(), 2);
    }

    #[test]
    fn handlers_reachable_by_name() {
        let mut r = Router::from_config(
            "FromDevice(t) -> c :: Counter -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        r.process(pkt());
        r.process(pkt());
        assert_eq!(r.read_handler("c", "count").as_deref(), Some("2"));
        r.write_handler("c", "reset", "").unwrap();
        assert_eq!(r.read_handler("c", "count").as_deref(), Some("0"));
        assert!(r.read_handler("nope", "count").is_none());
        assert!(r.write_handler("c", "bogus", "").is_err());
    }

    #[test]
    fn hotswap_preserves_counter_state() {
        let mut r = Router::from_config(
            "FromDevice(t) -> c :: Counter -> ToDevice(t);",
            ElementEnv::default(),
        )
        .unwrap();
        r.process(pkt());
        r.hot_swap("FromDevice(t) -> c :: Counter -> f :: IPFilter(allow all) -> ToDevice(t);")
            .unwrap();
        assert_eq!(
            r.read_handler("c", "count").as_deref(),
            Some("1"),
            "state transferred"
        );
        r.process(pkt());
        assert_eq!(r.read_handler("c", "count").as_deref(), Some("2"));
        assert_eq!(r.hotswap_count(), 1);
    }

    #[test]
    fn hotswap_failure_keeps_old_config() {
        let mut r =
            Router::from_config("FromDevice(t) -> ToDevice(t);", ElementEnv::default()).unwrap();
        let old = r.config_text().to_string();
        assert!(r
            .hot_swap("FromDevice(t) -> NoSuchElement -> ToDevice(t);")
            .is_err());
        assert_eq!(r.config_text(), old);
        assert!(r.process(pkt()).accepted, "old config still works");
        assert_eq!(r.hotswap_count(), 0);
    }

    #[test]
    fn hotswap_charges_device_setup_only_for_vanilla() {
        let cost = endbox_netsim::CostModel::calibrated();

        let env_endbox = ElementEnv::default();
        let meter_endbox = env_endbox.meter.clone();
        let mut r1 = Router::from_config("FromDevice(t) -> ToDevice(t);", env_endbox).unwrap();
        meter_endbox.take();
        r1.hot_swap("FromDevice(t) -> ToDevice(t);").unwrap();
        let endbox_cycles = meter_endbox.read();

        let env_vanilla = ElementEnv {
            device_io: true,
            ..ElementEnv::default()
        };
        let meter_vanilla = env_vanilla.meter.clone();
        let mut r2 = Router::from_config("FromDevice(t) -> ToDevice(t);", env_vanilla).unwrap();
        meter_vanilla.take();
        r2.hot_swap("FromDevice(t) -> ToDevice(t);").unwrap();
        let vanilla_cycles = meter_vanilla.read();

        assert_eq!(vanilla_cycles - endbox_cycles, cost.device_setup);
    }

    #[test]
    fn bad_port_connections_rejected() {
        let err = Router::from_config("FromDevice(t) -> [1]ToDevice(t);", ElementEnv::default())
            .unwrap_err();
        assert!(matches!(err, ClickError::BadConnection(_)));

        let err = Router::from_config(
            "a :: Discard; FromDevice(t)[2] -> a;",
            ElementEnv::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ClickError::BadConnection(_)));
    }

    #[test]
    fn double_connection_rejected() {
        let err = Router::from_config(
            "f :: FromDevice(t); f -> Discard; f -> Discard;",
            ElementEnv::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ClickError::BadConnection(_)));
    }

    #[test]
    fn full_use_case_chain() {
        // The paper's DDoS prevention chain: IDS + rate limiting.
        let mut r = Router::from_config(
            "FromDevice(tun0) \
             -> ids :: IDSMatcher(COMMUNITY 50) \
             -> ts :: TrustedSplitter(RATE 1000000000, SAMPLE 100) \
             -> ToDevice(tun0); \
             ids[1] -> Discard; \
             ts[1] -> Discard;",
            ElementEnv::default(),
        )
        .unwrap();
        let out = r.process(pkt());
        assert!(out.accepted);
        assert_eq!(r.read_handler("ids", "alerts").as_deref(), Some("0"));
        assert_eq!(r.read_handler("ts", "conformed").as_deref(), Some("1"));
    }

    #[test]
    fn element_base_cost_charged_per_traversal() {
        let env = ElementEnv::default();
        let meter = env.meter.clone();
        let cost = env.cost.clone();
        let mut r = Router::from_config("FromDevice(t) -> Counter -> Counter -> ToDevice(t);", env)
            .unwrap();
        meter.take();
        r.process(pkt());
        // 4 elements traversed.
        assert_eq!(meter.read(), 4 * cost.click_element_base);
    }
}
