//! Parser for the Click configuration language (the subset EndBox uses).
//!
//! Supported syntax:
//!
//! ```text
//! // line comment            /* block comment */
//! name :: Class(arg1, arg2);           // declaration
//! a -> b -> c;                          // connection chain
//! a[1] -> [0]b;                         // explicit ports
//! x :: Class;                           // no arguments
//! a -> Counter -> b;                    // anonymous element in a chain
//! a -> c2 :: Counter -> b;              // inline declaration in a chain
//! ```

use crate::error::ClickError;

/// A declared element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    /// Instance name (generated for anonymous elements, e.g. `Counter@2`).
    pub name: String,
    /// Element class.
    pub class: String,
    /// Configuration arguments (top-level comma-separated, quotes
    /// respected).
    pub args: Vec<String>,
}

/// A directed connection `from[from_port] -> [to_port]to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connection {
    /// Index into [`ConfigGraph::elements`].
    pub from: usize,
    /// Output port on `from`.
    pub from_port: usize,
    /// Index into [`ConfigGraph::elements`].
    pub to: usize,
    /// Input port on `to`.
    pub to_port: usize,
}

/// A parsed configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConfigGraph {
    /// Declared elements in declaration order.
    pub elements: Vec<ElementDecl>,
    /// Connections between them.
    pub connections: Vec<Connection>,
}

impl ConfigGraph {
    /// Parses configuration text.
    ///
    /// # Errors
    ///
    /// Returns [`ClickError::Parse`] with a line number on syntax errors,
    /// or [`ClickError::DuplicateName`] / [`ClickError::BadConnection`] on
    /// semantic errors.
    pub fn parse(text: &str) -> Result<ConfigGraph, ClickError> {
        let stripped = strip_comments(text);
        let mut graph = ConfigGraph::default();
        let mut anon_counter = 0usize;

        for (stmt, line) in split_statements(&stripped) {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if contains_top_level_arrow(stmt) {
                parse_chain(stmt, line, &mut graph, &mut anon_counter)?;
            } else {
                let decl = parse_declaration(stmt, line)?;
                add_declaration(&mut graph, decl)?;
            }
        }
        Ok(graph)
    }

    /// Looks up an element index by name.
    pub fn element_index(&self, name: &str) -> Option<usize> {
        self.elements.iter().position(|e| e.name == name)
    }

    /// Renders the graph back to configuration text (declarations first,
    /// then one connection statement per edge). Parsing the result yields
    /// an equivalent graph — the property the hot-swap tooling and the
    /// round-trip tests rely on.
    pub fn to_config_string(&self) -> String {
        let mut out = String::new();
        for decl in &self.elements {
            let name = if decl.name.is_empty() {
                "anon".to_string()
            } else {
                decl.name.clone()
            };
            out.push_str(&name);
            out.push_str(" :: ");
            out.push_str(&decl.class);
            if !decl.args.is_empty() {
                out.push('(');
                for (i, arg) in decl.args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(arg);
                }
                out.push(')');
            }
            out.push_str(";\n");
        }
        for conn in &self.connections {
            let from = &self.elements[conn.from].name;
            let to = &self.elements[conn.to].name;
            out.push_str(&format!(
                "{from}[{}] -> [{}]{to};\n",
                conn.from_port, conn.to_port
            ));
        }
        out
    }
}

/// Removes `//` and `/* */` comments, preserving newlines (for line
/// numbers) and quoted strings.
fn strip_comments(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    let mut in_string = false;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if in_string {
            out.push(c);
            if c == '\\' && i + 1 < bytes.len() {
                out.push(bytes[i + 1] as char);
                i += 2;
                continue;
            }
            if c == '"' {
                in_string = false;
            }
            i += 1;
        } else if c == '"' {
            in_string = true;
            out.push(c);
            i += 1;
        } else if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
        } else if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                if bytes[i] == b'\n' {
                    out.push('\n');
                }
                i += 1;
            }
            i = (i + 2).min(bytes.len());
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

/// Splits on `;` at top level (outside quotes/parens), tracking line
/// numbers.
fn split_statements(text: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut line = 1usize;
    let mut stmt_line = 1usize;
    let mut depth = 0i32;
    let mut in_string = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\n' => {
                line += 1;
                current.push(c);
            }
            '\\' if in_string => {
                current.push(c);
                if let Some(n) = chars.next() {
                    current.push(n);
                }
            }
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            '(' if !in_string => {
                depth += 1;
                current.push(c);
            }
            ')' if !in_string => {
                depth -= 1;
                current.push(c);
            }
            ';' if !in_string && depth == 0 => {
                out.push((std::mem::take(&mut current), stmt_line));
                stmt_line = line;
            }
            _ => {
                if current.trim().is_empty() && !c.is_whitespace() {
                    stmt_line = line;
                }
                current.push(c);
            }
        }
    }
    if !current.trim().is_empty() {
        out.push((current, stmt_line));
    }
    out
}

/// True if the statement has a `->` outside quotes/parens.
fn contains_top_level_arrow(stmt: &str) -> bool {
    !split_top_level(stmt, "->").1
}

/// Splits `stmt` on `sep` at top level; returns (parts, is_single).
fn split_top_level(stmt: &str, sep: &str) -> (Vec<String>, bool) {
    let bytes = stmt.as_bytes();
    let sep_bytes = sep.as_bytes();
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut depth = 0i32;
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if in_string {
            if c == b'\\' {
                i += 2;
                continue;
            }
            if c == b'"' {
                in_string = false;
            }
            i += 1;
        } else {
            match c {
                b'"' => {
                    in_string = true;
                    i += 1;
                }
                b'(' => {
                    depth += 1;
                    i += 1;
                }
                b')' => {
                    depth -= 1;
                    i += 1;
                }
                _ if depth == 0 && bytes[i..].starts_with(sep_bytes) => {
                    parts.push(stmt[start..i].to_string());
                    i += sep_bytes.len();
                    start = i;
                }
                _ => i += 1,
            }
        }
    }
    let single = parts.is_empty();
    parts.push(stmt[start..].to_string());
    (parts, single)
}

/// Parses `name :: Class(args)` or bare `Class(args)` (anonymous).
fn parse_declaration(stmt: &str, line: usize) -> Result<ElementDecl, ClickError> {
    let (parts, _) = split_top_level(stmt, "::");
    let (name, class_part) = match parts.len() {
        1 => (None, parts[0].trim().to_string()),
        2 => (
            Some(parts[0].trim().to_string()),
            parts[1].trim().to_string(),
        ),
        _ => {
            return Err(ClickError::Parse {
                line,
                message: format!("too many `::` in `{}`", stmt.trim()),
            })
        }
    };
    let (class, args) = parse_class_and_args(&class_part, line)?;
    if let Some(ref n) = name {
        validate_identifier(n, line)?;
    }
    Ok(ElementDecl {
        name: name.unwrap_or_default(),
        class,
        args,
    })
}

fn parse_class_and_args(part: &str, line: usize) -> Result<(String, Vec<String>), ClickError> {
    let part = part.trim();
    if let Some(open) = part.find('(') {
        if !part.ends_with(')') {
            return Err(ClickError::Parse {
                line,
                message: format!("missing `)` in `{part}`"),
            });
        }
        let class = part[..open].trim().to_string();
        validate_class(&class, line)?;
        let args_str = &part[open + 1..part.len() - 1];
        Ok((class, split_args(args_str)))
    } else {
        validate_class(part, line)?;
        Ok((part.to_string(), Vec::new()))
    }
}

/// Splits arguments on top-level commas, trimming and unquoting.
pub(crate) fn split_args(args: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut depth = 0i32;
    let mut in_string = false;
    let mut chars = args.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' if in_string => {
                if let Some(n) = chars.next() {
                    current.push(n);
                }
            }
            '"' => in_string = !in_string,
            '(' if !in_string => {
                depth += 1;
                current.push(c);
            }
            ')' if !in_string => {
                depth -= 1;
                current.push(c);
            }
            ',' if !in_string && depth == 0 => {
                out.push(current.trim().to_string());
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() || !out.is_empty() {
        out.push(current.trim().to_string());
    }
    // Trailing empty args from "a," are kept; fully empty arg list is not.
    if out.len() == 1 && out[0].is_empty() {
        out.clear();
    }
    out
}

fn validate_identifier(name: &str, line: usize) -> Result<(), ClickError> {
    let ok = !name.is_empty()
        && name.chars().next().unwrap().is_ascii_alphabetic()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '@');
    if ok {
        Ok(())
    } else {
        Err(ClickError::Parse {
            line,
            message: format!("invalid element name `{name}`"),
        })
    }
}

fn validate_class(class: &str, line: usize) -> Result<(), ClickError> {
    let ok = !class.is_empty()
        && class.chars().next().unwrap().is_ascii_uppercase()
        && class.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if ok {
        Ok(())
    } else {
        Err(ClickError::Parse {
            line,
            message: format!("invalid class name `{class}`"),
        })
    }
}

fn add_declaration(graph: &mut ConfigGraph, decl: ElementDecl) -> Result<usize, ClickError> {
    if decl.name.is_empty() {
        graph.elements.push(decl);
        return Ok(graph.elements.len() - 1);
    }
    if graph.element_index(&decl.name).is_some() {
        return Err(ClickError::DuplicateName(decl.name));
    }
    graph.elements.push(decl);
    Ok(graph.elements.len() - 1)
}

/// One endpoint of a chain segment: `name`, `name[port]`, `[port]name`,
/// `[in]name[out]`, `Class(args)`, or `name :: Class(args)`.
#[derive(Debug)]
struct ChainNode {
    element: usize,
    in_port: usize,
    out_port: usize,
}

fn parse_chain(
    stmt: &str,
    line: usize,
    graph: &mut ConfigGraph,
    anon_counter: &mut usize,
) -> Result<(), ClickError> {
    let (parts, _) = split_top_level(stmt, "->");
    let mut nodes: Vec<ChainNode> = Vec::with_capacity(parts.len());
    for part in &parts {
        nodes.push(parse_chain_node(part, line, graph, anon_counter)?);
    }
    for pair in nodes.windows(2) {
        graph.connections.push(Connection {
            from: pair[0].element,
            from_port: pair[0].out_port,
            to: pair[1].element,
            to_port: pair[1].in_port,
        });
    }
    Ok(())
}

fn parse_chain_node(
    part: &str,
    line: usize,
    graph: &mut ConfigGraph,
    anon_counter: &mut usize,
) -> Result<ChainNode, ClickError> {
    let mut s = part.trim().to_string();
    let mut in_port = 0usize;
    let mut out_port = 0usize;

    // Leading [n] -> input port.
    if s.starts_with('[') {
        let close = s.find(']').ok_or_else(|| ClickError::Parse {
            line,
            message: format!("missing `]` in `{s}`"),
        })?;
        in_port = s[1..close].trim().parse().map_err(|_| ClickError::Parse {
            line,
            message: format!("bad input port in `{s}`"),
        })?;
        s = s[close + 1..].trim().to_string();
    }
    // Trailing [n] -> output port (only when not part of an arg list).
    if s.ends_with(']') {
        if let Some(open) = s.rfind('[') {
            let inner = &s[open + 1..s.len() - 1];
            if inner.chars().all(|c| c.is_ascii_digit()) && !inner.is_empty() {
                out_port = inner.parse().unwrap();
                s = s[..open].trim().to_string();
            }
        }
    }

    // Reference to an existing element, or an inline/anonymous declaration?
    let element = if let Some(idx) = graph.element_index(&s) {
        idx
    } else if s.contains("::") {
        let decl = parse_declaration(&s, line)?;
        add_declaration(graph, decl)?
    } else if s.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
        // Anonymous element: `Counter` or `Classifier(...)`.
        let (class, args) = parse_class_and_args(&s, line)?;
        *anon_counter += 1;
        let name = format!("{class}@{anon_counter}");
        add_declaration(graph, ElementDecl { name, class, args })?
    } else {
        return Err(ClickError::BadConnection(format!(
            "line {line}: `{s}` is not a declared element"
        )));
    };
    Ok(ChainNode {
        element,
        in_port,
        out_port,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_declarations_and_chain() {
        let g = ConfigGraph::parse(
            "// EndBox NOP config\n\
             in :: FromDevice(tun0);\n\
             out :: ToDevice(tun0);\n\
             in -> out;\n",
        )
        .unwrap();
        assert_eq!(g.elements.len(), 2);
        assert_eq!(g.elements[0].class, "FromDevice");
        assert_eq!(g.elements[0].args, vec!["tun0"]);
        assert_eq!(g.connections.len(), 1);
        assert_eq!(g.connections[0].from, 0);
        assert_eq!(g.connections[0].to, 1);
    }

    #[test]
    fn parses_ports() {
        let g = ConfigGraph::parse(
            "a :: Tee(2); b :: Discard; c :: Discard;\n a[1] -> b; a[0] -> [0]c;",
        )
        .unwrap();
        assert_eq!(g.connections[0].from_port, 1);
        assert_eq!(g.connections[1].from_port, 0);
        assert_eq!(g.connections[1].to_port, 0);
    }

    #[test]
    fn anonymous_elements_in_chain() {
        let g = ConfigGraph::parse("FromDevice(t) -> Counter -> ToDevice(t);").unwrap();
        assert_eq!(g.elements.len(), 3);
        assert!(g.elements[1].name.starts_with("Counter@"));
        assert_eq!(g.connections.len(), 2);
    }

    #[test]
    fn inline_declaration_in_chain() {
        let g = ConfigGraph::parse("FromDevice(t) -> c :: Counter -> ToDevice(t); ").unwrap();
        assert_eq!(g.element_index("c"), Some(1));
    }

    #[test]
    fn quoted_args_with_commas_and_parens() {
        let g = ConfigGraph::parse(
            r#"ids :: IDSMatcher("alert tcp any any -> any any (msg:\"a,b\"; content:\"x\"; sid:1;)");"#,
        )
        .unwrap();
        assert_eq!(g.elements[0].args.len(), 1);
        assert!(g.elements[0].args[0].contains("a,b"));
        assert!(g.elements[0].args[0].contains("sid:1"));
    }

    #[test]
    fn multiple_args_split_at_top_level() {
        let g = ConfigGraph::parse("f :: IPFilter(allow src host 10.0.0.1, drop all);").unwrap();
        assert_eq!(
            g.elements[0].args,
            vec![
                "allow src host 10.0.0.1".to_string(),
                "drop all".to_string()
            ]
        );
    }

    #[test]
    fn block_comments_stripped() {
        let g = ConfigGraph::parse("/* hello \n world */ a :: Discard; ").unwrap();
        assert_eq!(g.elements.len(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let e = ConfigGraph::parse("a :: Discard; a :: Counter;").unwrap_err();
        assert_eq!(e, ClickError::DuplicateName("a".into()));
    }

    #[test]
    fn undeclared_lowercase_reference_rejected() {
        let e = ConfigGraph::parse("a :: Discard; b -> a;").unwrap_err();
        assert!(matches!(e, ClickError::BadConnection(_)));
    }

    #[test]
    fn error_line_numbers() {
        let e = ConfigGraph::parse("a :: Discard;\n\nb ::: Counter;").unwrap_err();
        match e {
            ClickError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn long_chain() {
        let g = ConfigGraph::parse(
            "a :: Discard; b :: Discard; c :: Discard; d :: Tee(2);\n\
                                    d -> Counter -> Counter -> a;",
        )
        .unwrap();
        assert_eq!(g.connections.len(), 3);
    }

    #[test]
    fn empty_config_ok() {
        let g = ConfigGraph::parse("  // nothing\n").unwrap();
        assert!(g.elements.is_empty());
        assert!(g.connections.is_empty());
    }

    #[test]
    fn class_without_parens_declared() {
        let g = ConfigGraph::parse("c :: Counter;").unwrap();
        assert_eq!(g.elements[0].class, "Counter");
        assert!(g.elements[0].args.is_empty());
    }

    #[test]
    fn printer_roundtrips_use_case_configs() {
        for text in [
            "in :: FromDevice(tun0); out :: ToDevice(tun0); in -> out;",
            "a :: Tee(2); b :: Discard; c :: Discard; a[1] -> b; a[0] -> [0]c;",
            "f :: IPFilter(allow src host 10.0.0.1, drop all); FromDevice(t) -> f -> ToDevice(t); f[1] -> Discard;",
        ] {
            let g = ConfigGraph::parse(text).unwrap();
            let printed = g.to_config_string();
            let reparsed = ConfigGraph::parse(&printed).unwrap();
            assert_eq!(reparsed.connections.len(), g.connections.len(), "{printed}");
            assert_eq!(reparsed.elements.len(), g.elements.len());
            for (a, b) in g.elements.iter().zip(reparsed.elements.iter()) {
                assert_eq!(a.class, b.class);
                assert_eq!(a.args, b.args);
            }
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        // Arbitrary text must never panic the parser — it either parses
        // or returns an error.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn parser_never_panics(text in "[ -~\\n]{0,200}") {
                let _ = ConfigGraph::parse(&text);
            }

            #[test]
            fn generated_graphs_roundtrip(
                n_elements in 1usize..6,
                edges in prop::collection::vec((0usize..6, 0usize..6), 0..8),
            ) {
                // Build a random Tee/Discard mesh (Tee has 4 outputs so
                // ports stay in range; Discard takes any input port 0).
                let mut text = String::new();
                for i in 0..n_elements {
                    text.push_str(&format!("t{i} :: Tee(4);\n"));
                }
                let mut used: std::collections::HashSet<(usize, usize)> =
                    std::collections::HashSet::new();
                let mut n_edges = 0;
                for (from, port) in edges {
                    let from = from % n_elements;
                    let port = port % 4;
                    if used.insert((from, port)) {
                        text.push_str(&format!("t{from}[{port}] -> [0]t{}; \n", (from + 1) % n_elements));
                        n_edges += 1;
                    }
                }
                let g = ConfigGraph::parse(&text).unwrap();
                prop_assert_eq!(g.connections.len(), n_edges);
                let reparsed = ConfigGraph::parse(&g.to_config_string()).unwrap();
                prop_assert_eq!(reparsed.elements.len(), g.elements.len());
                prop_assert_eq!(reparsed.connections, g.connections);
            }
        }
    }
}
