//! The element abstraction: Click's unit of packet processing.

use crate::error::ClickError;
use endbox_netsim::cost::{CostModel, CycleMeter};
use endbox_netsim::time::SharedClock;
use endbox_netsim::{Packet, PacketBatch};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Shared store of TLS session keys, fed by the client's patched TLS
/// library via the management interface (§III-D) and consumed by the
/// `TLSDecrypt` element inside the enclave.
#[derive(Debug, Clone, Default)]
pub struct SessionKeyStore {
    keys: Arc<Mutex<HashMap<FlowId, [u8; 16]>>>,
}

/// A bidirectional flow identifier (normalised so both directions map to
/// the same entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId {
    a: (Ipv4Addr, u16),
    b: (Ipv4Addr, u16),
}

impl FlowId {
    /// Creates a normalised flow id.
    pub fn new(src: Ipv4Addr, sport: u16, dst: Ipv4Addr, dport: u16) -> Self {
        let x = (src, sport);
        let y = (dst, dport);
        if x <= y {
            FlowId { a: x, b: y }
        } else {
            FlowId { a: y, b: x }
        }
    }
}

impl SessionKeyStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a session key for a flow (called by the TLS shim).
    pub fn register(&self, flow: FlowId, key: [u8; 16]) {
        self.keys.lock().insert(flow, key);
    }

    /// Looks up the key for a flow.
    pub fn lookup(&self, flow: &FlowId) -> Option<[u8; 16]> {
        self.keys.lock().get(flow).copied()
    }

    /// Number of registered sessions.
    pub fn len(&self) -> usize {
        self.keys.lock().len()
    }

    /// True if no sessions are registered.
    pub fn is_empty(&self) -> bool {
        self.keys.lock().is_empty()
    }
}

/// Environment shared by all elements of a router instance.
#[derive(Debug, Clone)]
pub struct ElementEnv {
    /// Cycle-cost model in force.
    pub cost: CostModel,
    /// Meter elements charge their processing costs to.
    pub meter: CycleMeter,
    /// Simulation clock (rate limiters).
    pub clock: SharedClock,
    /// True when this router runs inside an SGX enclave (EndBox client);
    /// affects which time source splitters use.
    pub in_enclave: bool,
    /// True when the enclave runs in hardware mode: memory-intensive
    /// elements charge the EPC amplification factor.
    pub hardware_mode: bool,
    /// True for vanilla (server-side) Click that owns its own devices:
    /// `FromDevice`/`ToDevice` then pay device setup on (re)configuration,
    /// which is why vanilla hot-swap is slower (Table II).
    pub device_io: bool,
    /// TLS session keys for `TLSDecrypt`.
    pub tls_keys: SessionKeyStore,
}

impl Default for ElementEnv {
    fn default() -> Self {
        ElementEnv {
            cost: CostModel::calibrated(),
            meter: CycleMeter::new(),
            clock: SharedClock::new(),
            in_enclave: false,
            hardware_mode: false,
            device_io: false,
            tls_keys: SessionKeyStore::new(),
        }
    }
}

/// Per-invocation context handed to [`Element::process`] and
/// [`Element::process_batch`].
///
/// Both scratch vectors are *borrowed* from the router so their
/// allocations persist across packets and batches — the hot path performs
/// no per-invocation allocation.
#[derive(Debug)]
pub struct ElementContext<'a> {
    /// Packets pushed to output ports this invocation (router-owned
    /// scratch, drained by the router after each element call).
    pub(crate) outputs: &'a mut Vec<(usize, Packet)>,
    /// Packets emitted by `ToDevice` (left the router, accepted).
    pub(crate) emitted: &'a mut Vec<Packet>,
    /// Shared environment.
    pub env: &'a ElementEnv,
}

impl<'a> ElementContext<'a> {
    /// Builds a context over caller-owned scratch/result vectors.
    pub fn new(
        outputs: &'a mut Vec<(usize, Packet)>,
        emitted: &'a mut Vec<Packet>,
        env: &'a ElementEnv,
    ) -> Self {
        ElementContext {
            outputs,
            emitted,
            env,
        }
    }

    /// Pushes `pkt` to output `port`.
    pub fn output(&mut self, port: usize, pkt: Packet) {
        self.outputs.push((port, pkt));
    }

    /// Emits `pkt` out of the router (ToDevice): marks it accepted. This is
    /// the EndBox `ToDevice` modification — it "signal\[s\] OpenVPN when a
    /// packet was accepted or rejected" (§IV).
    pub fn emit(&mut self, mut pkt: Packet) {
        pkt.meta.verdict = endbox_netsim::packet::Verdict::Accept;
        self.emitted.push(pkt);
    }
}

/// Exported element state for hot-swapping ("Click's configuration
/// hot-swapping mechanism … transfers state for elements that support
/// it").
pub type ElementState = Vec<(String, String)>;

/// A Click element.
///
/// Implementations process packets arriving on input ports and push
/// results to output ports via the [`ElementContext`]. The trait is
/// object-safe; routers hold `Box<dyn Element>`.
pub trait Element: std::fmt::Debug + Send {
    /// The class name as written in configurations.
    fn class_name(&self) -> &'static str;

    /// Number of input ports.
    fn n_inputs(&self) -> usize {
        1
    }

    /// Number of output ports.
    fn n_outputs(&self) -> usize {
        1
    }

    /// Processes a packet arriving on `port`.
    fn process(&mut self, port: usize, pkt: Packet, ctx: &mut ElementContext<'_>);

    /// Processes a whole batch arriving on `port`, draining `batch`.
    ///
    /// The default implementation loops over [`Element::process`] in
    /// order, so overriding is purely an optimisation. Overrides (the hot
    /// elements: `Classifier`, `IPFilter`, `CheckIPHeader`, `IDSMatcher`)
    /// must stay observably equivalent to the sequential loop: same
    /// outputs in the same order, same handler-visible state, and the
    /// same *total* cycle charge (batching may coalesce meter updates,
    /// not change their sum).
    fn process_batch(
        &mut self,
        port: usize,
        batch: &mut PacketBatch,
        ctx: &mut ElementContext<'_>,
    ) {
        for pkt in batch.drain() {
            self.process(port, pkt, ctx);
        }
    }

    /// Reads a named handler (Click's read handlers, e.g. `Counter.count`).
    fn read_handler(&self, _name: &str) -> Option<String> {
        None
    }

    /// Writes a named handler.
    ///
    /// # Errors
    ///
    /// Returns [`ClickError::Handler`] for unknown handlers or bad values.
    fn write_handler(&mut self, name: &str, _value: &str) -> Result<(), ClickError> {
        Err(ClickError::Handler(format!(
            "{} has no write handler `{name}`",
            self.class_name()
        )))
    }

    /// Exports state for hot-swap transfer (`None` = stateless).
    fn export_state(&self) -> Option<ElementState> {
        None
    }

    /// Imports state exported by a same-class element during hot-swap.
    fn import_state(&mut self, _state: ElementState) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_id_is_direction_agnostic() {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        let b = Ipv4Addr::new(10, 0, 0, 2);
        assert_eq!(FlowId::new(a, 1000, b, 443), FlowId::new(b, 443, a, 1000));
        assert_ne!(FlowId::new(a, 1000, b, 443), FlowId::new(a, 1001, b, 443));
    }

    #[test]
    fn key_store_roundtrip() {
        let store = SessionKeyStore::new();
        let flow = FlowId::new(Ipv4Addr::new(1, 1, 1, 1), 5, Ipv4Addr::new(2, 2, 2, 2), 443);
        assert!(store.lookup(&flow).is_none());
        store.register(flow, [7u8; 16]);
        assert_eq!(store.lookup(&flow), Some([7u8; 16]));
        // Clones share state.
        let clone = store.clone();
        assert_eq!(clone.len(), 1);
    }
}
