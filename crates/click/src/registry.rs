//! The element class registry: maps class names in configurations to
//! element factories.

use crate::element::{Element, ElementEnv};
use crate::error::ClickError;
use std::collections::HashMap;

/// Factory signature: build an element from its configuration arguments.
/// Errors are plain strings; the router wraps them with the element name.
pub type ElementFactory = fn(&[String], &ElementEnv) -> Result<Box<dyn Element>, String>;

/// A registry of element classes.
#[derive(Default)]
pub struct ElementRegistry {
    factories: HashMap<String, ElementFactory>,
}

impl std::fmt::Debug for ElementRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut classes: Vec<&str> = self.factories.keys().map(String::as_str).collect();
        classes.sort_unstable();
        f.debug_struct("ElementRegistry")
            .field("classes", &classes)
            .finish()
    }
}

impl ElementRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a class.
    pub fn register(&mut self, class: &str, factory: ElementFactory) {
        self.factories.insert(class.to_string(), factory);
    }

    /// Instantiates `class` with `args`.
    ///
    /// # Errors
    ///
    /// [`ClickError::UnknownClass`] for unregistered classes;
    /// [`ClickError::Configure`] when the factory rejects the arguments.
    pub fn create(
        &self,
        name: &str,
        class: &str,
        args: &[String],
        env: &ElementEnv,
    ) -> Result<Box<dyn Element>, ClickError> {
        let factory = self
            .factories
            .get(class)
            .ok_or_else(|| ClickError::UnknownClass(class.to_string()))?;
        factory(args, env).map_err(|message| ClickError::Configure {
            element: name.to_string(),
            message,
        })
    }

    /// True if `class` is registered.
    pub fn contains(&self, class: &str) -> bool {
        self.factories.contains_key(class)
    }

    /// Sorted class names.
    pub fn classes(&self) -> Vec<String> {
        let mut v: Vec<String> = self.factories.keys().cloned().collect();
        v.sort_unstable();
        v
    }

    /// The standard registry with all built-in and EndBox elements.
    pub fn standard() -> Self {
        let mut r = Self::new();
        crate::elements::register_all(&mut r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_paper_elements() {
        let r = ElementRegistry::standard();
        for class in [
            "FromDevice",
            "ToDevice",
            "Discard",
            "Counter",
            "Tee",
            "Queue",
            "Paint",
            "CheckPaint",
            "SetTOS",
            "Classifier",
            "IPClassifier",
            "CheckIPHeader",
            "IPFilter",
            "IPAddrRewriter",
            "IPRewriter",
            "TokenBucket",
            "ConnTracker",
            "Meter",
            "RoundRobinSwitch",
            "AverageCounter",
            "IDSMatcher",
            "TrustedSplitter",
            "UntrustedSplitter",
            "TLSDecrypt",
        ] {
            assert!(r.contains(class), "missing element class {class}");
        }
    }

    #[test]
    fn unknown_class_rejected() {
        let r = ElementRegistry::standard();
        let err = r
            .create("x", "NoSuchElement", &[], &ElementEnv::default())
            .unwrap_err();
        assert_eq!(err, ClickError::UnknownClass("NoSuchElement".into()));
    }

    #[test]
    fn debug_lists_classes() {
        let r = ElementRegistry::standard();
        assert!(format!("{r:?}").contains("Counter"));
    }
}
