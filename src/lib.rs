//! Umbrella crate for the EndBox reproduction: hosts the runnable examples
//! in `examples/` and the cross-crate integration tests in `tests/`.
//!
//! See the individual crates (`endbox`, `endbox-vpn`, `endbox-click`, …)
//! for the actual library code.
