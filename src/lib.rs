//! Umbrella crate for the EndBox reproduction: hosts the runnable examples
//! in `examples/` and the cross-crate integration tests in `tests/`.
//!
//! Start with the repository's `README.md` (crate map, datapath diagram,
//! experiment catalogue) and `docs/architecture.md` (per-subsystem
//! invariants, knobs, and the tests that pin them). The library code
//! lives in the individual crates (`endbox`, `endbox-vpn`,
//! `endbox-click`, `endbox-netsim`, …) — see their crate-level rustdoc.
