//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the `rand 0.8` API the workspace
//! uses: `RngCore`, `SeedableRng`, `Rng::{gen, gen_range, gen_bool}`,
//! `rngs::StdRng`, and `seq::SliceRandom::shuffle`. The generator is
//! xoshiro256** seeded via SplitMix64 — deterministic for a given seed,
//! which is all the simulation needs (it is NOT cryptographically secure;
//! the workspace's own `endbox-crypto` primitives never rely on it for
//! security, only for reproducible test vectors and simulated identities).

/// A source of random 32/64-bit words and bytes.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can describe a sampling range for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample(self, rng: &mut impl RngCore) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn draw(rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut impl RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Convenience sampling methods layered on [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's StdRng).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle(&mut self, rng: &mut impl RngCore);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut impl RngCore) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u16..20);
            assert!((10..20).contains(&v));
            let c = rng.gen_range(b'a'..=b'z');
            assert!(c.is_ascii_lowercase());
            let f = rng.gen_range(1e-9..1.0);
            assert!((1e-9..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should permute 64 elements");
    }
}
