//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! Crossbeam's channels are MPMC; the tests in this workspace only ever
//! use one consumer, which mpsc covers. `Sender`/`Receiver` keep
//! crossbeam's names and `Result`-returning API.

/// MPSC channels with crossbeam's module layout.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Sending half of an unbounded channel.
    pub struct UnboundedSender<T>(mpsc::Sender<T>);

    /// Receiving half of a channel.
    pub struct Receiver<T>(Inner<T>);

    enum Inner<T> {
        Bounded(mpsc::Receiver<T>),
        Unbounded(mpsc::Receiver<T>),
    }

    /// Error returned when the channel has disconnected.
    pub use std::sync::mpsc::{RecvError, SendError};

    /// A channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(Inner::Bounded(rx)))
    }

    /// A channel with unlimited capacity.
    pub fn unbounded<T>() -> (UnboundedSender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (UnboundedSender(tx), Receiver(Inner::Unbounded(rx)))
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> UnboundedSender<T> {
        /// Sends a message without blocking.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    impl<T> Clone for UnboundedSender<T> {
        fn clone(&self) -> Self {
            UnboundedSender(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            match &self.0 {
                Inner::Bounded(rx) | Inner::Unbounded(rx) => rx.recv(),
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            match &self.0 {
                Inner::Bounded(rx) | Inner::Unbounded(rx) => rx.try_recv(),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_roundtrip_across_threads() {
            let (tx, rx) = bounded::<u32>(4);
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || {
                for i in 0..8 {
                    tx2.send(i).unwrap();
                }
            });
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            h.join().unwrap();
            assert_eq!(got, (0..8).collect::<Vec<_>>());
        }

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded::<&'static str>();
            tx.send("hi").unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), "hi");
            assert!(rx.recv().is_err());
        }
    }
}
