//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`
//! primitives. Matches parking_lot's poison-free locking API (a poisoned
//! std lock is recovered rather than propagated — the same observable
//! behaviour as parking_lot, which has no poisoning at all).

use std::fmt;
use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (poison-free `lock()`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<StdMutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock (poison-free API).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
