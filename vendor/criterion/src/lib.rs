//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of criterion's API used by this workspace's
//! benchmarks: `Criterion`, `benchmark_group`, `bench_function`,
//! `Bencher::{iter, iter_batched}`, `Throughput`, `BatchSize`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros. Timing is a simple
//! calibrated loop around `std::time::Instant` — good enough to compare
//! code paths (e.g. batched vs single-packet), with none of criterion's
//! statistics machinery.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How a benchmark's workload scales, for derived rates in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for `iter_batched` (ignored: every batch is one
/// setup+routine pair here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One routine call per setup.
    PerIteration,
}

/// The timing context passed to benchmark closures.
pub struct Bencher {
    /// Iterations the harness asks for in the current measurement pass.
    iters: u64,
    /// Measured wall-clock time for those iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the requested number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup()` input per call; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Number of measurement passes per benchmark (kept for API parity;
    /// this harness runs a fixed warm-up + measurement pass).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target time for one benchmark's measurement phase.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let t = self.measurement_time;
        run_one(&name.into(), None, t, f);
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration workload, enabling derived rates.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.throughput, self.criterion.measurement_time, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    throughput: Option<Throughput>,
    target: Duration,
    mut f: F,
) {
    // Calibration pass: find an iteration count that fills ~target time.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64;

    // Measurement pass.
    bencher.iters = iters;
    f(&mut bencher);
    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / iters as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(b) => {
            format!(
                "  ({:.1} MiB/s)",
                b as f64 / (ns_per_iter / 1e9) / (1024.0 * 1024.0)
            )
        }
        Throughput::Elements(e) => {
            format!("  ({:.0} elem/s)", e as f64 / (ns_per_iter / 1e9))
        }
    });
    println!(
        "{name:<48} {:>12.1} ns/iter  [{} iters]{}",
        ns_per_iter,
        iters,
        rate.unwrap_or_default()
    );
}

/// Declares a group of benchmark functions, with or without a custom
/// `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits the `main` function running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Bytes(64));
        g.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut criterion = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(5));
        sample_bench(&mut criterion);
        criterion.bench_function("ungrouped", |b| b.iter(|| black_box(1 + 1)));
    }
}
