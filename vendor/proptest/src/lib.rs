//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! re-implements the subset of proptest this workspace uses: the
//! `proptest!` macro, `ProptestConfig::with_cases`, `any::<T>()`,
//! range/tuple strategies, `prop::collection::vec`, `prop::array::uniform4`,
//! `prop::sample::Index`, `Strategy::prop_map`, and the `prop_assert*`
//! macros. Inputs are drawn from a deterministic seeded RNG; there is no
//! shrinking — a failing case panics with the assertion message directly,
//! which is enough signal for this repository's property tests.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration (`cases` = inputs generated per property).
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` inputs.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// The RNG handed to strategies by the generated test runner.
pub type TestRng = StdRng;

/// Creates the deterministic per-test RNG. Seeded from the test name so
/// different properties explore different input streams, but every run of
/// the same test is reproducible.
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator. Unlike real proptest there is no shrinking: a
/// strategy is just a function from an RNG to a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive values");
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Ranges are strategies, e.g. `0usize..3` or `1u64..2000`.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// String literals are regex strategies (a small subset: literal chars,
/// escapes, `[..]` classes with ranges, and `{m,n}` / `{m}` / `*` / `+` /
/// `?` quantifiers — enough for the patterns in this workspace).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

mod regex_gen {
    use super::TestRng;
    use rand::Rng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }

    /// Generates one string matching the regex subset described on the
    /// `Strategy` impl for `&str`.
    ///
    /// # Panics
    ///
    /// Panics on constructs outside the subset (alternation, groups, ...),
    /// which is a test-authoring error, not an input-dependent failure.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let mut ranges = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = if chars[i + 2] == '\\' {
                                i += 1;
                                unescape(chars[i + 2])
                            } else {
                                chars[i + 2]
                            };
                            ranges.push((lo, hi));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(
                        i < chars.len(),
                        "unterminated character class in `{pattern}`"
                    );
                    i += 1; // consume ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    let c = unescape(chars[i]);
                    i += 1;
                    Atom::Literal(c)
                }
                '(' | ')' | '|' => panic!("unsupported regex construct in `{pattern}`"),
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (lo, hi): (usize, usize) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .expect("unterminated quantifier")
                            + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                            None => {
                                let m: usize = body.trim().parse().unwrap();
                                (m, m)
                            }
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            let n = if lo >= hi { lo } else { rng.gen_range(lo..=hi) };
            for _ in 0..n {
                match &atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let (a, b) = ranges[rng.gen_range(0..ranges.len())];
                        out.push(rng.gen_range(a as u32..=b as u32).try_into().unwrap_or(a));
                    }
                }
            }
        }
        out
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy combinators grouped like the real crate's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Strategy for `Vec<T>` with a length drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        /// `vec(element, len_range)`: vectors whose length is in the range.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.len.start >= self.len.end {
                    self.len.start
                } else {
                    rng.gen_range(self.len.clone())
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use super::super::{Strategy, TestRng};

        macro_rules! uniform_n {
            ($($name:ident => $n:literal),*) => {$(
                /// Strategy for `[T; N]` drawing each slot from `element`.
                pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                    UniformArray { element }
                }
            )*};
        }

        /// Strategy for fixed-size arrays.
        #[derive(Debug, Clone)]
        pub struct UniformArray<S, const N: usize> {
            element: S,
        }

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];

            fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
                core::array::from_fn(|_| self.element.generate(rng))
            }
        }

        uniform_n!(uniform2 => 2, uniform4 => 4, uniform8 => 8, uniform16 => 16, uniform32 => 32);
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::{Arbitrary, TestRng};
        use rand::RngCore;

        /// An index into a not-yet-known-length collection (proptest's
        /// `prop::sample::Index`).
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Resolves the index against a collection of `len` elements.
            ///
            /// # Panics
            ///
            /// Panics if `len` is zero.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Index {
                Index(rng.next_u64())
            }
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{any, prop, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assertion that aborts the current case (no shrinking here, so it is a
/// plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Binds `name in strategy` parameters inside the generated test loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// The `proptest! { .. }` block: expands each contained
/// `#[test] fn name(arg in strategy, ..) { body }` into a normal test that
/// runs the body for `config.cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $crate::__proptest_bind!(rng; $($params)*);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0usize..3, y in 1u64..2000) {
            prop_assert!(x < 3);
            prop_assert!((1..2000).contains(&y));
        }

        /// Doc comments on properties are accepted.
        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_and_arrays(
            pair in (0usize..6, 0usize..6),
            arr in prop::array::uniform4(any::<u64>()),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(pair.0 < 6 && pair.1 < 6);
            prop_assert_eq!(arr.len(), 4);
            prop_assert!(idx.index(10) < 10);
        }
    }

    #[test]
    fn regex_strategy_respects_class_and_counts() {
        let mut rng = super::rng_for("regex");
        for _ in 0..200 {
            let s = "[ -~\\n]{0,200}".generate(&mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
            let t = "[a-c]{2}x?y+".generate(&mut rng);
            assert!(t.starts_with(|c| ('a'..='c').contains(&c)));
            assert!(t.ends_with('y'));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = prop::array::uniform2(any::<u8>()).prop_map(|[a, b]| a as u16 + b as u16);
        let mut rng = super::rng_for("prop_map_transforms");
        for _ in 0..64 {
            assert!(strat.generate(&mut rng) <= 510);
        }
    }

    #[test]
    fn deterministic_between_runs() {
        let strat = prop::collection::vec(any::<u8>(), 0..16);
        let a: Vec<_> = {
            let mut rng = super::rng_for("same-name");
            (0..8).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = super::rng_for("same-name");
            (0..8).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
